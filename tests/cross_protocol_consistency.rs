//! Property-based consistency tests across protocol layers: the plain set
//! protocols, the set-of-sets protocols and the difference estimators must agree
//! with each other and with ground truth on random inputs.

use proptest::prelude::*;
use recon_base::rng::Xoshiro256;
use recon_estimator::{L0Config, L0Estimator, Side, StrataConfig, StrataEstimator};
use recon_set::{reconcile_known, reconcile_known_charpoly, reconcile_unknown};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{cascading, iblt_of_iblts, matching_difference, SosParams};
use std::collections::HashSet;

fn random_set_pair(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
    let mut rng = Xoshiro256::new(seed);
    let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 48)).collect();
    let mut bob = alice.clone();
    for _ in 0..d / 2 {
        alice.insert(rng.next_below(1 << 48));
    }
    for _ in 0..(d - d / 2) {
        bob.insert(rng.next_below(1 << 48));
    }
    (alice, bob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// IBLT-based and characteristic-polynomial set reconciliation recover the same
    /// (correct) set, and the charpoly message is never larger.
    #[test]
    fn set_protocols_agree(n in 50usize..400, d in 0usize..24, seed in any::<u64>()) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let bound = d.max(1) + 2;
        let iblt = reconcile_known(&alice, &bob, bound, seed ^ 1).expect("iblt");
        let poly = reconcile_known_charpoly(&alice, &bob, bound, seed ^ 2).expect("charpoly");
        prop_assert_eq!(&iblt.recovered, &alice);
        prop_assert_eq!(&poly.recovered, &alice);
        prop_assert!(poly.stats.total_bytes() <= iblt.stats.total_bytes());
    }

    /// The two-round unknown-d driver also recovers Alice's set, with no bound given.
    #[test]
    fn unknown_d_set_reconciliation_roundtrips(
        n in 100usize..600, d in 0usize..64, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let outcome = reconcile_unknown(&alice, &bob, seed ^ 3).expect("unknown");
        prop_assert_eq!(outcome.recovered, alice);
    }

    /// Both difference estimators report values within a constant factor of the true
    /// difference (factor 8 gives comfortable slack over the paper's constants).
    #[test]
    fn estimators_are_constant_factor_accurate(
        n in 200usize..2_000, d in 8usize..512, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let true_diff = alice.symmetric_difference(&bob).count();
        prop_assume!(true_diff >= 4);

        let l0_cfg = L0Config::default().with_seed(seed ^ 4);
        let mut a_l0 = L0Estimator::new(&l0_cfg);
        let mut b_l0 = L0Estimator::new(&l0_cfg);
        let strata_cfg = StrataConfig::default().with_seed(seed ^ 5);
        let mut a_st = StrataEstimator::new(&strata_cfg);
        let mut b_st = StrataEstimator::new(&strata_cfg);
        for &x in &alice {
            a_l0.update(x, Side::A);
            a_st.update(x, Side::A);
        }
        for &x in &bob {
            b_l0.update(x, Side::B);
            b_st.update(x, Side::B);
        }
        let l0_est = a_l0.merge(&b_l0).unwrap().estimate();
        let strata_est = a_st.merge(&b_st).unwrap().estimate();
        prop_assert!(l0_est >= true_diff / 8 && l0_est <= true_diff * 8,
            "l0 estimate {} vs true {}", l0_est, true_diff);
        prop_assert!(strata_est >= true_diff / 8 && strata_est <= true_diff * 8,
            "strata estimate {} vs true {}", strata_est, true_diff);
    }

    /// The two one-round set-of-sets protocols recover identical parent sets.
    #[test]
    fn sos_protocols_agree(seed in any::<u64>(), d in 1usize..10) {
        let workload = WorkloadParams::new(48, 12, 1 << 28);
        let (alice, bob) = generate_pair(&workload, d, seed);
        prop_assume!(matching_difference(&alice, &bob) <= d);
        let params = SosParams::new(seed ^ 7, workload.max_child_size);
        let flat = iblt_of_iblts::run_known(&alice, &bob, d, d, &params).expect("flat");
        let cascade = cascading::run_known(&alice, &bob, d, &params).expect("cascade");
        prop_assert_eq!(&flat.recovered, &alice);
        prop_assert_eq!(&cascade.recovered, &alice);
        prop_assert_eq!(flat.recovered, cascade.recovered);
    }
}
