//! Cross-crate integration tests: every set-of-sets protocol, on workloads spanning
//! the parameter ranges the paper discusses, verified against ground truth.

use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{
    cascading, iblt_of_iblts, matching_difference, multiround, naive, SetOfSets, SosParams,
};

fn check_all_protocols(workload: &WorkloadParams, d: usize, seed: u64) {
    let (alice, bob) = generate_pair(workload, d, seed);
    assert!(matching_difference(&alice, &bob) <= d);
    let params = SosParams::new(seed ^ 0xE2E, workload.max_child_size);
    let d_hat = d.max(1);

    let naive_outcome = naive::run_known(&alice, &bob, d_hat, &params).expect("naive");
    assert_eq!(naive_outcome.recovered, alice, "naive, d = {d}");

    let flat = iblt_of_iblts::run_known(&alice, &bob, d.max(1), d_hat, &params).expect("flat");
    assert_eq!(flat.recovered, alice, "iblt-of-iblts, d = {d}");

    let cascade = cascading::run_known(&alice, &bob, d.max(1), &params).expect("cascading");
    assert_eq!(cascade.recovered, alice, "cascading, d = {d}");

    let rounds = multiround::run_known(&alice, &bob, d.max(1), d_hat, &params).expect("multiround");
    assert_eq!(rounds.recovered, alice, "multi-round, d = {d}");
}

#[test]
fn small_children_small_difference() {
    check_all_protocols(&WorkloadParams::new(64, 8, 1 << 20), 3, 1);
}

#[test]
fn large_children_small_difference() {
    check_all_protocols(&WorkloadParams::new(48, 64, 1 << 40), 5, 2);
}

#[test]
fn many_children_moderate_difference() {
    check_all_protocols(&WorkloadParams::new(512, 12, 1 << 30), 20, 3);
}

#[test]
fn difference_concentrated_in_one_child() {
    // All d changes hit the same child set: the regime where the cascading protocol's
    // highest level (and Algorithm 1's O(d)-cell child IBLTs) do the heavy lifting.
    let workload = WorkloadParams::new(64, 40, 1 << 30);
    let (alice, _) = generate_pair(&workload, 0, 9);
    let params = SosParams::new(77, workload.max_child_size);
    let mut bob = alice.clone();
    let victim = alice.children()[7].clone();
    bob.remove(&victim);
    let mut changed = victim.clone();
    for x in 0..10u64 {
        changed.insert(1_000_000_000 + x);
    }
    bob.insert(changed);
    let d = 10;
    let outcome = cascading::run_known(&alice, &bob, d, &params).expect("cascading");
    assert_eq!(outcome.recovered, alice);
    let outcome = iblt_of_iblts::run_known(&alice, &bob, d, 2, &params).expect("flat");
    assert_eq!(outcome.recovered, alice);
}

#[test]
fn unknown_difference_protocols_need_no_bound() {
    let workload = WorkloadParams::new(96, 16, 1 << 30);
    let (alice, bob) = generate_pair(&workload, 9, 11);
    let params = SosParams::new(5, workload.max_child_size);

    let naive_u = naive::run_unknown(&alice, &bob, &params).expect("naive unknown");
    assert_eq!(naive_u.recovered, alice);
    assert!(naive_u.stats.rounds >= 2);

    let flat_u = iblt_of_iblts::run_unknown(&alice, &bob, &params).expect("flat unknown");
    assert_eq!(flat_u.recovered, alice);

    let cascade_u = cascading::run_unknown(&alice, &bob, &params).expect("cascading unknown");
    assert_eq!(cascade_u.recovered, alice);

    let rounds_u = multiround::run_unknown(&alice, &bob, &params).expect("multiround unknown");
    assert_eq!(rounds_u.recovered, alice);
    assert!(rounds_u.stats.rounds >= 4);
}

#[test]
fn zero_difference_is_cheap_for_every_protocol() {
    let workload = WorkloadParams::new(128, 16, 1 << 30);
    let (alice, _) = generate_pair(&workload, 0, 13);
    let params = SosParams::new(3, workload.max_child_size);
    for outcome in [
        naive::run_known(&alice, &alice, 1, &params).expect("naive"),
        iblt_of_iblts::run_known(&alice, &alice, 1, 1, &params).expect("flat"),
        cascading::run_known(&alice, &alice, 1, &params).expect("cascading"),
        multiround::run_known(&alice, &alice, 1, 1, &params).expect("multiround"),
    ] {
        assert_eq!(outcome.recovered, alice);
        // Communication must not scale with n when d is tiny: the whole workload is
        // 128 × ~12 elements ≈ 12 KiB, and every digest stays well under it.
        assert!(outcome.stats.total_bytes() < 12_000, "{}", outcome.stats.total_bytes());
    }
}

#[test]
fn communication_ordering_matches_table_1_for_large_u() {
    // Table 1 (large u, d ≤ s, h): naive > iblt-of-iblts > cascading in transmitted
    // bytes, with the multi-round protocol cheapest of all in the d log u term. The
    // ordering is asymptotic in h/d, so a workload with large children (h = 128)
    // and moderate d is used; EXPERIMENTS.md discusses where the crossovers fall
    // with this implementation's IBLT constants.
    let workload = WorkloadParams::new(256, 128, 1 << 40);
    let d = 16;
    let (alice, bob) = generate_pair(&workload, d, 17);
    let params = SosParams::new(23, workload.max_child_size);
    let naive_bytes =
        naive::run_known(&alice, &bob, d, &params).expect("naive").stats.total_bytes();
    let flat_bytes =
        iblt_of_iblts::run_known(&alice, &bob, d, d, &params).expect("flat").stats.total_bytes();
    let cascade_bytes =
        cascading::run_known(&alice, &bob, d, &params).expect("cascade").stats.total_bytes();
    assert!(flat_bytes < naive_bytes, "{flat_bytes} !< {naive_bytes}");
    assert!(cascade_bytes < flat_bytes, "{cascade_bytes} !< {flat_bytes}");
}

#[test]
fn recovered_set_of_sets_is_bitwise_identical_not_just_isomorphic() {
    let workload = WorkloadParams::new(100, 10, 1 << 25);
    let (alice, bob) = generate_pair(&workload, 7, 19);
    let params = SosParams::new(29, workload.max_child_size);
    let outcome = cascading::run_known(&alice, &bob, 7, &params).expect("cascading");
    let recovered: &SetOfSets = &outcome.recovered;
    assert_eq!(recovered.children(), alice.children());
}
