//! The nine-family equivalence suite under seeded hostile-network fault
//! profiles.
//!
//! Every test drives all nine protocol families (three plain-set, four
//! set-of-sets, graph, forest) concurrently over one framed in-memory byte
//! stream wrapped in a [`FaultyTransport`], with a **fixed seed** so each run
//! meets exactly the same mishaps. A failed attempt must surface as a
//! *structured retryable* error ([`ReconError::is_retryable`]) — the retry
//! loop below never inspects message strings — after which the finished
//! sessions are harvested and only the unfinished families are re-registered
//! on a fresh connection under a fresh per-attempt fault seed (the same seed
//! would meet the same faults and fail identically forever).
//!
//! The clean profile doubles as a regression anchor: a wrapped run with no
//! faults must complete in one attempt with per-session `CommStats`
//! byte-identical to the solo `SessionBuilder` runs.

use recon_base::comm::CommStats;
use recon_base::rng::{split_seed, Xoshiro256};

use recon_graph::degree_order::DegreeOrderParams;
use recon_graph::{forest, session as graph_session, Forest, Graph};
use recon_protocol::{
    drive_pair, Amplification, Endpoint, FaultProfile, FaultyTransport, MemoryTransport, Role,
    SessionBuilder, Transport,
};
use recon_set::session as set_session;
use recon_sos::multiset_of_multisets::{self, PairPacking};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{session as sos_session, SetOfSets, SosParams};
use std::collections::HashSet;

const SEED: u64 = 0x00FA_0175;
const INTEGRITY_KEY: u64 = 0x1D10_0C1E;
const MAX_ATTEMPTS: u32 = 15;
const FAMILIES: usize = 9;

/// Shared inputs and per-family session parameters, fixed for the whole test
/// so every attempt registers byte-identical parties.
struct Workload {
    set_a: HashSet<u64>,
    set_b: HashSet<u64>,
    iblt: SessionBuilder,
    charpoly: SessionBuilder,
    unknown: SessionBuilder,
    sos_a: SetOfSets,
    sos_b: SetOfSets,
    sos_params: SosParams,
    sos_d: usize,
    sos_amp: Amplification,
    graph: Graph,
    graph_params: DegreeOrderParams,
    forest_alice: Forest,
    forest_base: Forest,
    forest_seed: u64,
    forest_resolved: SosParams,
}

impl Workload {
    fn new(seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let mut set_a: HashSet<u64> = (0..300).map(|_| rng.next_below(1 << 48)).collect();
        let mut set_b = set_a.clone();
        for _ in 0..8 {
            set_a.insert(rng.next_below(1 << 48));
            set_b.insert(rng.next_below(1 << 48));
        }

        let workload = WorkloadParams::new(30, 8, 1 << 28);
        let sos_d = 4;
        let (sos_a, sos_b) = generate_pair(&workload, sos_d, seed ^ 4);
        let sos_params = SosParams::new(seed ^ 5, workload.max_child_size);

        let mut graph_rng = Xoshiro256::new(seed ^ 6);
        let graph = Graph::gnp(120, 0.25, &mut graph_rng);

        let mut forest_rng = Xoshiro256::new(seed ^ 8);
        let forest_base = Forest::random(150, 0.1, 5, &mut forest_rng);
        let forest_alice = forest_base.perturb(2, &mut forest_rng);
        let forest_seed = 761u64;
        let packing = PairPacking::default();
        let alice_collection = forest_alice.vertex_multisets(forest_seed);
        let bob_collection = forest_base.vertex_multisets(forest_seed);
        let max_child =
            alice_collection.max_child_distinct().max(bob_collection.max_child_distinct()).max(2)
                + 1;
        let base_params = SosParams::new(forest_seed ^ 0xF07E57, max_child);
        let forest_resolved = multiset_of_multisets::resolved_params(
            &alice_collection,
            &bob_collection,
            &base_params,
            &packing,
        )
        .unwrap();

        Self {
            set_a,
            set_b,
            iblt: SessionBuilder::new(seed ^ 1).amplification(Amplification::replicate(3)),
            charpoly: SessionBuilder::new(seed ^ 2).amplification(Amplification::single()),
            unknown: SessionBuilder::new(seed ^ 3).amplification(Amplification::replicate(6)),
            sos_a,
            sos_b,
            sos_params,
            sos_d,
            sos_amp: Amplification::replicate(4),
            graph,
            graph_params: DegreeOrderParams { h: 48, seed: seed ^ 7 },
            forest_alice,
            forest_base,
            forest_seed,
            forest_resolved,
        }
    }

    /// Expected per-family stats from the solo blocking path (one
    /// `MemoryLink` each) — the equivalence baseline.
    fn expected(&self) -> Vec<CommStats> {
        let mut expected = Vec::with_capacity(FAMILIES);
        expected.push(
            self.iblt
                .run(
                    set_session::iblt_known_alice(&self.set_a, 20, self.iblt.config()).unwrap(),
                    set_session::iblt_known_bob(&self.set_b, self.iblt.config()),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            self.charpoly
                .run(
                    set_session::charpoly_known_alice(&self.set_a, 20, self.charpoly.config())
                        .unwrap(),
                    set_session::charpoly_known_bob(&self.set_b, self.charpoly.config()),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            self.unknown
                .run(
                    set_session::unknown_alice(&self.set_a, self.unknown.config()),
                    set_session::unknown_bob(&self.set_b, self.unknown.config()),
                )
                .unwrap()
                .stats,
        );
        let p = &self.sos_params;
        let (d, amp) = (self.sos_d, self.sos_amp);
        expected.push(
            SessionBuilder::new(p.seed)
                .run(
                    sos_session::naive_known_alice(&self.sos_a, d, p, amp).unwrap(),
                    sos_session::naive_known_bob(&self.sos_b, p, amp),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            SessionBuilder::new(p.seed)
                .run(
                    sos_session::ioi_known_alice(&self.sos_a, d, d, p, amp).unwrap(),
                    sos_session::ioi_known_bob(&self.sos_b, p, amp),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            SessionBuilder::new(p.seed)
                .run(
                    sos_session::cascading_known_alice(&self.sos_a, d, p, amp).unwrap(),
                    sos_session::cascading_known_bob(&self.sos_b, p, amp),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            SessionBuilder::new(p.seed)
                .run(
                    sos_session::multiround_known_alice(&self.sos_a, d, d, p),
                    sos_session::multiround_known_bob(&self.sos_b, p),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            SessionBuilder::new(self.graph_params.seed)
                .run(
                    graph_session::degree_order_alice(&self.graph, 4, &self.graph_params).unwrap(),
                    graph_session::degree_order_bob(&self.graph, 4, &self.graph_params).unwrap(),
                )
                .unwrap()
                .stats,
        );
        expected.push(
            forest::reconcile(&self.forest_alice, &self.forest_base, 4, 6, self.forest_seed)
                .unwrap()
                .stats,
        );
        expected
    }
}

/// Register family `family` (fresh parties) under session id `family` on both
/// endpoints.
fn register_family<T: Transport>(
    w: &Workload,
    family: usize,
    alice_end: &mut Endpoint<T>,
    bob_end: &mut Endpoint<T>,
) {
    let id = family as u64;
    let p = &w.sos_params;
    let (d, amp) = (w.sos_d, w.sos_amp);
    match family {
        0 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    set_session::iblt_known_alice(&w.set_a, 20, w.iblt.config()).unwrap(),
                )
                .unwrap();
            bob_end
                .register(id, Role::Bob, set_session::iblt_known_bob(&w.set_b, w.iblt.config()))
                .unwrap();
        }
        1 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    set_session::charpoly_known_alice(&w.set_a, 20, w.charpoly.config()).unwrap(),
                )
                .unwrap();
            bob_end
                .register(
                    id,
                    Role::Bob,
                    set_session::charpoly_known_bob(&w.set_b, w.charpoly.config()),
                )
                .unwrap();
        }
        2 => {
            alice_end
                .register(id, Role::Alice, set_session::unknown_alice(&w.set_a, w.unknown.config()))
                .unwrap();
            bob_end
                .register(id, Role::Bob, set_session::unknown_bob(&w.set_b, w.unknown.config()))
                .unwrap();
        }
        3 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    sos_session::naive_known_alice(&w.sos_a, d, p, amp).unwrap(),
                )
                .unwrap();
            bob_end
                .register(id, Role::Bob, sos_session::naive_known_bob(&w.sos_b, p, amp))
                .unwrap();
        }
        4 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    sos_session::ioi_known_alice(&w.sos_a, d, d, p, amp).unwrap(),
                )
                .unwrap();
            bob_end.register(id, Role::Bob, sos_session::ioi_known_bob(&w.sos_b, p, amp)).unwrap();
        }
        5 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    sos_session::cascading_known_alice(&w.sos_a, d, p, amp).unwrap(),
                )
                .unwrap();
            bob_end
                .register(id, Role::Bob, sos_session::cascading_known_bob(&w.sos_b, p, amp))
                .unwrap();
        }
        6 => {
            alice_end
                .register(id, Role::Alice, sos_session::multiround_known_alice(&w.sos_a, d, d, p))
                .unwrap();
            bob_end
                .register(id, Role::Bob, sos_session::multiround_known_bob(&w.sos_b, p))
                .unwrap();
        }
        7 => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    graph_session::degree_order_alice(&w.graph, 4, &w.graph_params).unwrap(),
                )
                .unwrap();
            bob_end
                .register(
                    id,
                    Role::Bob,
                    graph_session::degree_order_bob(&w.graph, 4, &w.graph_params).unwrap(),
                )
                .unwrap();
        }
        _ => {
            alice_end
                .register(
                    id,
                    Role::Alice,
                    graph_session::forest_alice(
                        &w.forest_alice,
                        4,
                        6,
                        w.forest_seed,
                        &w.forest_resolved,
                    )
                    .unwrap(),
                )
                .unwrap();
            bob_end
                .register(
                    id,
                    Role::Bob,
                    graph_session::forest_bob(&w.forest_base, w.forest_seed, &w.forest_resolved)
                        .unwrap(),
                )
                .unwrap();
        }
    }
}

/// Harvest family `family` from Bob's endpoint if it finished: verify the
/// recovered data and return its stats. An `Err` outcome (a session the
/// faults killed) retires the slot and reports the family as still pending.
fn harvest_family<T: Transport>(
    w: &Workload,
    family: usize,
    bob_end: &mut Endpoint<T>,
) -> Option<CommStats> {
    let id = family as u64;
    match family {
        0..=2 => match bob_end.take_outcome::<HashSet<u64>>(id)? {
            Ok(outcome) => {
                assert_eq!(outcome.recovered, w.set_a, "family {family} recovered wrong data");
                Some(outcome.stats)
            }
            Err(_) => None,
        },
        3..=6 => match bob_end.take_outcome::<SetOfSets>(id)? {
            Ok(outcome) => {
                assert_eq!(outcome.recovered, w.sos_a, "family {family} recovered wrong data");
                Some(outcome.stats)
            }
            Err(_) => None,
        },
        7 => match bob_end.take_outcome::<Graph>(id)? {
            Ok(outcome) => Some(outcome.stats),
            Err(_) => None,
        },
        _ => match bob_end.take_outcome::<Forest>(id)? {
            Ok(outcome) => Some(outcome.stats),
            Err(_) => None,
        },
    }
}

/// What one suite run under a profile produced.
struct SuiteReport {
    attempts: u32,
    /// Framed bytes both sides actually put on the wire, summed over attempts
    /// (faulted frames included) — the retry-overhead measure.
    wire_bytes: u64,
    /// Per-family stats of the successful attempt.
    per_family: Vec<CommStats>,
    /// Total fault-injector drops/flips/dups across all attempts.
    faults_fired: u64,
}

/// Run the nine-family suite to completion under `profile`, retrying failed
/// attempts with a fresh per-attempt fault seed. Retries are driven *only* by
/// [`ReconError::is_retryable`] — any non-retryable failure panics.
fn run_suite_under(profile: FaultProfile, checksums: bool) -> SuiteReport {
    let w = Workload::new(SEED);
    let mut done: Vec<Option<CommStats>> = vec![None; FAMILIES];
    let mut wire_bytes = 0u64;
    let mut faults_fired = 0u64;
    let mut attempts = 0u32;

    while done.iter().any(Option::is_none) {
        assert!(
            attempts < MAX_ATTEMPTS,
            "suite did not converge in {MAX_ATTEMPTS} attempts under {profile:?}; \
             pending: {:?}",
            done.iter()
                .enumerate()
                .filter(|(_, d)| d.is_none())
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        );
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(FaultyTransport::new(
            ta,
            profile.with_seed(split_seed(profile.seed, 2 * attempts as u64)),
        ));
        let mut bob_end = Endpoint::new(FaultyTransport::new(
            tb,
            profile.with_seed(split_seed(profile.seed, 2 * attempts as u64 + 1)),
        ));
        if checksums {
            alice_end.offer_integrity(INTEGRITY_KEY);
            bob_end.offer_integrity(INTEGRITY_KEY);
        }
        for (family, slot) in done.iter().enumerate() {
            if slot.is_none() {
                register_family(&w, family, &mut alice_end, &mut bob_end);
            }
        }
        let result = drive_pair(&mut alice_end, &mut bob_end);
        attempts += 1;
        wire_bytes += alice_end.transport().bytes_framed_out();
        wire_bytes += bob_end.transport().bytes_framed_out();
        for stats in [alice_end.transport().fault_stats(), bob_end.transport().fault_stats()] {
            faults_fired += stats.dropped + stats.bit_flipped + stats.duplicated;
        }
        if let Err(error) = result {
            assert!(error.is_retryable(), "a fault surfaced as a NON-retryable error: {error:?}");
        }
        // Harvest whatever finished before the failure (resume semantics:
        // completed families are never re-run).
        for (family, slot) in done.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = harvest_family(&w, family, &mut bob_end);
            }
        }
    }

    SuiteReport {
        attempts,
        wire_bytes,
        per_family: done.into_iter().map(Option::unwrap).collect(),
        faults_fired,
    }
}

/// A clean (fault-free) wrapped run is the identity: one attempt, and every
/// family's `CommStats` byte-identical to its solo `SessionBuilder` twin —
/// the `FaultyTransport` wrapper itself costs nothing.
#[test]
fn clean_profile_run_is_byte_identical_to_the_bare_suite() {
    let expected = Workload::new(SEED).expected();
    let report = run_suite_under(FaultProfile::clean(SEED), false);
    assert_eq!(report.attempts, 1, "clean run must not retry");
    assert_eq!(report.faults_fired, 0);
    assert_eq!(report.per_family, expected, "clean wrapped run must match the solo runs");
}

/// Checksum negotiation without faults is also invisible to the accounting:
/// the trailer bytes ride outside the envelope metering.
#[test]
fn clean_profile_with_checksums_preserves_all_stats() {
    let expected = Workload::new(SEED).expected();
    let report = run_suite_under(FaultProfile::clean(SEED), true);
    assert_eq!(report.attempts, 1);
    assert_eq!(report.per_family, expected);
    eprintln!("clean+checksums: {} wire bytes", report.wire_bytes);
}

/// Dropped frames stall sessions into [`ReconError::SessionStuck`]; the retry
/// loop re-runs only the unfinished families and everything eventually
/// completes with correct outcomes. The wire-byte total quantifies what the
/// hostile network cost.
#[test]
fn drop_profile_completes_with_retries() {
    // The whole suite is only a few dozen frames, so the per-frame drop
    // probability is sized up to make mishaps certain, not merely possible.
    let clean = run_suite_under(FaultProfile::clean(SEED), false);
    let report = run_suite_under(FaultProfile::drop_only(SEED, 0.15), false);
    assert!(report.attempts > 1, "drop profile was expected to force at least one retry");
    assert!(report.faults_fired > 0, "no frame was ever dropped");
    assert!(
        report.wire_bytes > clean.wire_bytes,
        "retries must cost wire bytes: {} vs clean {}",
        report.wire_bytes,
        clean.wire_bytes
    );
    eprintln!(
        "drop profile: {} attempts, {} wire bytes ({} clean), {} faults",
        report.attempts, report.wire_bytes, clean.wire_bytes, report.faults_fired
    );
}

/// Cross-session reordering alone never breaks a session (per-session FIFO is
/// preserved by construction), so the suite completes in one attempt with
/// byte-identical stats.
#[test]
fn reorder_profile_completes_first_try_with_identical_stats() {
    let expected = Workload::new(SEED).expected();
    let report = run_suite_under(FaultProfile::reorder_only(SEED, 0.25), false);
    assert_eq!(report.attempts, 1, "reordering alone must not fail a session");
    assert_eq!(report.per_family, expected);
}

/// With integrity negotiated, bit flips surface as structured
/// [`ReconError::ChecksumMismatch`] (retryable) instead of silent corruption,
/// and the suite recovers by re-running the damaged attempt.
#[test]
fn bit_flip_profile_with_checksums_completes_with_retries() {
    let report = run_suite_under(FaultProfile::bit_flip_only(SEED, 0.08), true);
    assert!(report.faults_fired > 0, "no bit was ever flipped");
    assert!(report.attempts >= 1);
    eprintln!(
        "bit-flip profile: {} attempts, {} wire bytes, {} faults",
        report.attempts, report.wire_bytes, report.faults_fired
    );
}

/// Everything at once: drops, duplicates, bit flips (checksummed), reordering
/// and latency. Outcomes must still be correct for all nine families.
#[test]
fn combined_profile_completes_under_checksums() {
    // `combined()` scaled up for this suite's small frame count.
    let profile = FaultProfile {
        drop: 0.08,
        duplicate: 0.08,
        bit_flip: 0.08,
        reorder: 0.2,
        ..FaultProfile::combined(SEED)
    };
    let report = run_suite_under(profile, true);
    assert!(report.faults_fired > 0);
    eprintln!(
        "combined profile: {} attempts, {} wire bytes, {} faults",
        report.attempts, report.wire_bytes, report.faults_fired
    );
}
