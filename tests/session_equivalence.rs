//! Transport-equivalence tests for the sans-I/O session layer.
//!
//! Every protocol family is driven two ways: through the one-shot drivers (which
//! delegate to `recon_protocol::Session` over an in-memory link) and *manually*,
//! message by message, with each [`Envelope`] serialized to bytes and decoded on
//! the far side — the way two separate processes would exchange them. The
//! recovered data and the measured [`CommStats`] must agree byte for byte: the
//! accounting is a property of the protocol, not of the transport.

use proptest::prelude::*;
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::rng::Xoshiro256;
use recon_base::wire::{Decode, Encode};
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_protocol::{Amplification, Envelope, Meter, Party, SessionBuilder, Step};
use recon_set::{
    reconcile_known, reconcile_known_charpoly, reconcile_unknown, session as set_session,
};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{cascading, iblt_of_iblts, multiround, naive, session as sos_session, SosParams};
use std::collections::HashSet;

/// Drive a party pair by hand, pushing every envelope through a serialize →
/// deserialize round trip, and account for it exactly like `MemoryLink` does.
fn drive_over_bytes<A: Party, B: Party>(
    mut alice: A,
    mut bob: B,
) -> Result<(B::Output, CommStats), ReconError> {
    // Deliberately an *independent* reimplementation of MemoryLink's metering
    // rather than a call into it: the one-shot drivers under test already run
    // through MemoryLink, so reusing it here would make the accounting
    // comparison tautological. If the Meter rules change in one place and not
    // the other, these tests fail loudly instead of agreeing by construction.
    fn record(transcript: &mut Transcript, direction: Direction, envelope: &Envelope) {
        match envelope.meter {
            Meter::Round => {
                transcript.record_bytes(direction, &envelope.label, envelope.payload.len());
            }
            Meter::Parallel => {
                transcript.record_parallel_bytes(
                    direction,
                    &envelope.label,
                    envelope.payload.len(),
                );
            }
            Meter::Explicit { bytes, parallel } => {
                if parallel {
                    transcript.record_parallel_bytes(direction, &envelope.label, bytes as usize);
                } else {
                    transcript.record_bytes(direction, &envelope.label, bytes as usize);
                }
            }
            Meter::Control => {}
        }
    }

    let mut transcript = Transcript::new();
    loop {
        let mut progressed = false;
        while let Some(envelope) = alice.poll_send() {
            progressed = true;
            let wire_bytes = envelope.to_bytes();
            let envelope = Envelope::from_bytes(&wire_bytes).expect("envelope wire roundtrip");
            record(&mut transcript, Direction::AliceToBob, &envelope);
            if let Step::Done(output) = bob.handle(envelope)? {
                return Ok((output, transcript.stats()));
            }
        }
        while let Some(envelope) = bob.poll_send() {
            progressed = true;
            let wire_bytes = envelope.to_bytes();
            let envelope = Envelope::from_bytes(&wire_bytes).expect("envelope wire roundtrip");
            record(&mut transcript, Direction::BobToAlice, &envelope);
            alice.handle(envelope)?;
        }
        assert!(progressed, "party pair stalled");
    }
}

fn random_set_pair(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
    let mut rng = Xoshiro256::new(seed);
    let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 48)).collect();
    let mut bob = alice.clone();
    for _ in 0..d / 2 {
        alice.insert(rng.next_below(1 << 48));
    }
    for _ in 0..(d - d / 2) {
        bob.insert(rng.next_below(1 << 48));
    }
    (alice, bob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IBLT set reconciliation (Cor 2.2): manual byte-level driving reproduces the
    /// one-shot driver's output and CommStats exactly.
    #[test]
    fn set_iblt_known_matches_driver(
        n in 50usize..400, d in 0usize..24, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let bound = d.max(1) + 2;
        let driver = reconcile_known(&alice, &bob, bound, seed ^ 1).expect("driver");

        let builder = SessionBuilder::new(seed ^ 1).amplification(Amplification::replicate(3));
        let (recovered, stats) = drive_over_bytes(
            set_session::iblt_known_alice(&alice, bound, builder.config()).expect("alice"),
            set_session::iblt_known_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// Characteristic-polynomial set reconciliation (Thm 2.3).
    #[test]
    fn set_charpoly_matches_driver(
        n in 50usize..300, d in 0usize..16, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let bound = d.max(1) + 2;
        let driver = reconcile_known_charpoly(&alice, &bob, bound, seed ^ 2).expect("driver");

        let builder = SessionBuilder::new(seed ^ 2).amplification(Amplification::single());
        let (recovered, stats) = drive_over_bytes(
            set_session::charpoly_known_alice(&alice, bound, builder.config()).expect("alice"),
            set_session::charpoly_known_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// Unknown-d set reconciliation (Cor 3.2), including the estimator round.
    #[test]
    fn set_unknown_matches_driver(
        n in 100usize..500, d in 0usize..48, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let driver = reconcile_unknown(&alice, &bob, seed ^ 3).expect("driver");

        let builder = SessionBuilder::new(seed ^ 3).amplification(Amplification::replicate(6));
        let (recovered, stats) = drive_over_bytes(
            set_session::unknown_alice(&alice, builder.config()),
            set_session::unknown_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// All four set-of-sets families, known-d variants.
    #[test]
    fn sos_known_families_match_drivers(seed in any::<u64>(), d in 1usize..8) {
        let workload = WorkloadParams::new(48, 12, 1 << 28);
        let (alice, bob) = generate_pair(&workload, d, seed);
        let params = SosParams::new(seed ^ 0x50, workload.max_child_size);

        let driver = naive::run_known(&alice, &bob, d, &params).expect("naive driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::naive_known_alice(&alice, d, &params, Amplification::replicate(3))
                .expect("alice"),
            sos_session::naive_known_bob(&bob, &params, Amplification::replicate(3)),
        )
        .expect("naive session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let driver = iblt_of_iblts::run_known(&alice, &bob, d, d, &params).expect("ioi driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::ioi_known_alice(&alice, d, d, &params, Amplification::replicate(3))
                .expect("alice"),
            sos_session::ioi_known_bob(&bob, &params, Amplification::replicate(3)),
        )
        .expect("ioi session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let driver = cascading::run_known(&alice, &bob, d, &params).expect("cascading driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::cascading_known_alice(&alice, d, &params, Amplification::replicate(4))
                .expect("alice"),
            sos_session::cascading_known_bob(&bob, &params, Amplification::replicate(4)),
        )
        .expect("cascading session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        // Theorem 3.9 has no amplification, so some random instances legitimately
        // fail with constant probability; the session must agree either way.
        let session_result = drive_over_bytes(
            sos_session::multiround_known_alice(&alice, d, d, &params),
            sos_session::multiround_known_bob(&bob, &params),
        );
        match multiround::run_known(&alice, &bob, d, d, &params) {
            Ok(driver) => {
                let (recovered, stats) = session_result.expect("multiround session");
                prop_assert_eq!(&recovered, &driver.recovered);
                prop_assert_eq!(stats, driver.stats);
            }
            Err(driver_error) => {
                let session_error = session_result.expect_err("session must fail too");
                prop_assert_eq!(
                    format!("{session_error}"), format!("{driver_error}"),
                    "both runs must fail identically"
                );
            }
        }
    }

    /// All four set-of-sets families, unknown-d variants (estimator rounds and
    /// metered NACK doubling included).
    #[test]
    fn sos_unknown_families_match_drivers(seed in any::<u64>(), d in 1usize..6) {
        let workload = WorkloadParams::new(40, 10, 1 << 28);
        let (alice, bob) = generate_pair(&workload, d, seed);
        let params = SosParams::new(seed ^ 0x51, workload.max_child_size);
        let estimator = L0Config::default();

        let driver = naive::run_unknown(&alice, &bob, &params).expect("naive driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::naive_unknown_alice(
                &alice,
                &params,
                Amplification::replicate(5),
                estimator,
            ),
            sos_session::naive_unknown_bob(&bob, &params, Amplification::replicate(5), estimator),
        )
        .expect("naive session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let max_possible = alice.total_elements() + bob.total_elements() + 2;
        let children_cap = alice.num_children().max(bob.num_children()).max(1);
        let doubling = Amplification::doubling(1, 2 * max_possible);
        let driver = iblt_of_iblts::run_unknown(&alice, &bob, &params).expect("ioi driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::ioi_unknown_alice(&alice, &params, children_cap, doubling)
                .expect("alice"),
            sos_session::ioi_unknown_bob(&bob, &params, doubling),
        )
        .expect("ioi session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let doubling = Amplification::doubling(2, 2 * max_possible);
        let driver = cascading::run_unknown(&alice, &bob, &params).expect("cascading driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::cascading_unknown_alice(&alice, &params, doubling).expect("alice"),
            sos_session::cascading_unknown_bob(&bob, &params, doubling),
        )
        .expect("cascading session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let session_result = drive_over_bytes(
            sos_session::multiround_unknown_alice(&alice, &params, estimator),
            sos_session::multiround_unknown_bob(&bob, &params, estimator),
        );
        match multiround::run_unknown(&alice, &bob, &params) {
            Ok(driver) => {
                let (recovered, stats) = session_result.expect("multiround session");
                prop_assert_eq!(&recovered, &driver.recovered);
                prop_assert_eq!(stats, driver.stats);
            }
            Err(driver_error) => {
                let session_error = session_result.expect_err("session must fail too");
                prop_assert_eq!(
                    format!("{session_error}"), format!("{driver_error}"),
                    "both runs must fail identically"
                );
            }
        }
    }
}

#[test]
fn degree_order_session_matches_driver() {
    use recon_graph::degree_order::{self, DegreeOrderParams};
    use recon_graph::{session as graph_session, Graph};

    let mut rng = Xoshiro256::new(17);
    let base = Graph::gnp(200, 0.35, &mut rng);
    let params = DegreeOrderParams { h: 48, seed: 91 };
    let driver = degree_order::reconcile(&base, &base, 4, &params).expect("driver");

    let (recovered, stats) = drive_over_bytes(
        graph_session::degree_order_alice(&base, 4, &params).expect("alice"),
        graph_session::degree_order_bob(&base, 4, &params).expect("bob"),
    )
    .expect("session");
    assert_eq!(recovered.num_edges(), driver.recovered.num_edges());
    assert_eq!(stats, driver.stats);
    assert_eq!(stats.rounds, 1, "charge + parallel edge digest share one round");
    assert_eq!(stats.messages, 2);
}

#[test]
fn forest_session_matches_driver() {
    use recon_graph::forest::{self, Forest};
    use recon_graph::session as graph_session;
    use recon_sos::multiset_of_multisets::{self, PairPacking};

    let mut rng = Xoshiro256::new(23);
    let base = Forest::random(300, 0.1, 5, &mut rng);
    let alice = base.perturb(2, &mut rng);
    let seed = 501u64;
    let driver = forest::reconcile(&alice, &base, 4, 6, seed).expect("driver");

    let packing = PairPacking::default();
    let alice_collection = alice.vertex_multisets(seed);
    let bob_collection = base.vertex_multisets(seed);
    let max_child =
        alice_collection.max_child_distinct().max(bob_collection.max_child_distinct()).max(2) + 1;
    let base_params = SosParams::new(seed ^ 0xF07E57, max_child);
    let resolved = multiset_of_multisets::resolved_params(
        &alice_collection,
        &bob_collection,
        &base_params,
        &packing,
    )
    .expect("resolved params");

    let (recovered, stats) = drive_over_bytes(
        graph_session::forest_alice(&alice, 4, 6, seed, &resolved).expect("alice"),
        graph_session::forest_bob(&base, seed, &resolved).expect("bob"),
    )
    .expect("session");
    assert!(recovered.is_isomorphic(&driver.recovered, seed));
    assert_eq!(stats, driver.stats);
    assert_eq!(stats.rounds, 1);
}
