//! Transport-equivalence tests for the sans-I/O session layer.
//!
//! Every protocol family is driven two ways: through the one-shot drivers (which
//! delegate to `recon_protocol::Session` over an in-memory link) and *manually*,
//! message by message, with each [`Envelope`] serialized to bytes and decoded on
//! the far side — the way two separate processes would exchange them. The
//! recovered data and the measured [`CommStats`] must agree byte for byte: the
//! accounting is a property of the protocol, not of the transport.

use proptest::prelude::*;
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::rng::Xoshiro256;
use recon_base::wire::{Decode, Encode};
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_protocol::{
    drive_pair, Amplification, Endpoint, Envelope, MemoryTransport, Meter, Party, Role,
    SessionBuilder, SessionConfig, ShardedRunner, Step,
};
use recon_set::{
    reconcile_known, reconcile_known_charpoly, reconcile_unknown, session as set_session,
};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{
    cascading, iblt_of_iblts, multiround, naive, session as sos_session, SetOfSets,
    ShardedSosFamily, SosParams,
};
use std::collections::HashSet;

/// Drive a party pair by hand, pushing every envelope through a serialize →
/// deserialize round trip, and account for it exactly like `MemoryLink` does.
fn drive_over_bytes<A: Party, B: Party>(
    mut alice: A,
    mut bob: B,
) -> Result<(B::Output, CommStats), ReconError> {
    // Deliberately an *independent* reimplementation of MemoryLink's metering
    // rather than a call into it: the one-shot drivers under test already run
    // through MemoryLink, so reusing it here would make the accounting
    // comparison tautological. If the Meter rules change in one place and not
    // the other, these tests fail loudly instead of agreeing by construction.
    fn record(transcript: &mut Transcript, direction: Direction, envelope: &Envelope) {
        match envelope.meter {
            Meter::Round => {
                transcript.record_bytes(direction, &envelope.label, envelope.payload.len());
            }
            Meter::Parallel => {
                transcript.record_parallel_bytes(
                    direction,
                    &envelope.label,
                    envelope.payload.len(),
                );
            }
            Meter::Explicit { bytes, parallel } => {
                if parallel {
                    transcript.record_parallel_bytes(direction, &envelope.label, bytes as usize);
                } else {
                    transcript.record_bytes(direction, &envelope.label, bytes as usize);
                }
            }
            Meter::Control => {}
        }
    }

    let mut transcript = Transcript::new();
    loop {
        let mut progressed = false;
        while let Some(envelope) = alice.poll_send() {
            progressed = true;
            let wire_bytes = envelope.to_bytes();
            let envelope = Envelope::from_bytes(&wire_bytes).expect("envelope wire roundtrip");
            record(&mut transcript, Direction::AliceToBob, &envelope);
            if let Step::Done(output) = bob.handle(envelope)? {
                return Ok((output, transcript.stats()));
            }
        }
        while let Some(envelope) = bob.poll_send() {
            progressed = true;
            let wire_bytes = envelope.to_bytes();
            let envelope = Envelope::from_bytes(&wire_bytes).expect("envelope wire roundtrip");
            record(&mut transcript, Direction::BobToAlice, &envelope);
            alice.handle(envelope)?;
        }
        assert!(progressed, "party pair stalled");
    }
}

/// Drive a single party pair through a *framed* in-memory transport: one
/// `Endpoint` per side, session-tagged frames on a shared byte stream — the
/// multiplexed path, degenerate case of one session. Returns Bob's output plus
/// the per-session stats both endpoints recorded.
fn drive_over_endpoint_pair<A, B>(
    alice: A,
    bob: B,
) -> Result<(B::Output, CommStats, CommStats), ReconError>
where
    A: Party + 'static,
    B: Party + 'static,
    B::Output: 'static,
{
    let (transport_a, transport_b) = MemoryTransport::pair();
    let mut alice_end = Endpoint::new(transport_a);
    let mut bob_end = Endpoint::new(transport_b);
    alice_end.register(0, Role::Alice, alice)?;
    bob_end.register(0, Role::Bob, bob)?;
    drive_pair(&mut alice_end, &mut bob_end)?;
    let outcome = bob_end.take_outcome::<B::Output>(0).expect("session finished")?;
    let alice_stats = alice_end.close(0).expect("session registered");
    Ok((outcome.recovered, outcome.stats, alice_stats))
}

fn random_set_pair(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
    let mut rng = Xoshiro256::new(seed);
    let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 48)).collect();
    let mut bob = alice.clone();
    for _ in 0..d / 2 {
        alice.insert(rng.next_below(1 << 48));
    }
    for _ in 0..(d - d / 2) {
        bob.insert(rng.next_below(1 << 48));
    }
    (alice, bob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IBLT set reconciliation (Cor 2.2): manual byte-level driving reproduces the
    /// one-shot driver's output and CommStats exactly.
    #[test]
    fn set_iblt_known_matches_driver(
        n in 50usize..400, d in 0usize..24, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let bound = d.max(1) + 2;
        let driver = reconcile_known(&alice, &bob, bound, seed ^ 1).expect("driver");

        let builder = SessionBuilder::new(seed ^ 1).amplification(Amplification::replicate(3));
        let (recovered, stats) = drive_over_bytes(
            set_session::iblt_known_alice(&alice, bound, builder.config()).expect("alice"),
            set_session::iblt_known_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// Characteristic-polynomial set reconciliation (Thm 2.3).
    #[test]
    fn set_charpoly_matches_driver(
        n in 50usize..300, d in 0usize..16, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let bound = d.max(1) + 2;
        let driver = reconcile_known_charpoly(&alice, &bob, bound, seed ^ 2).expect("driver");

        let builder = SessionBuilder::new(seed ^ 2).amplification(Amplification::single());
        let (recovered, stats) = drive_over_bytes(
            set_session::charpoly_known_alice(&alice, bound, builder.config()).expect("alice"),
            set_session::charpoly_known_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// Unknown-d set reconciliation (Cor 3.2), including the estimator round.
    #[test]
    fn set_unknown_matches_driver(
        n in 100usize..500, d in 0usize..48, seed in any::<u64>()
    ) {
        let (alice, bob) = random_set_pair(n, d, seed);
        let driver = reconcile_unknown(&alice, &bob, seed ^ 3).expect("driver");

        let builder = SessionBuilder::new(seed ^ 3).amplification(Amplification::replicate(6));
        let (recovered, stats) = drive_over_bytes(
            set_session::unknown_alice(&alice, builder.config()),
            set_session::unknown_bob(&bob, builder.config()),
        )
        .expect("session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);
    }

    /// All four set-of-sets families, known-d variants.
    #[test]
    fn sos_known_families_match_drivers(seed in any::<u64>(), d in 1usize..8) {
        let workload = WorkloadParams::new(48, 12, 1 << 28);
        let (alice, bob) = generate_pair(&workload, d, seed);
        let params = SosParams::new(seed ^ 0x50, workload.max_child_size);

        let driver = naive::run_known(&alice, &bob, d, &params).expect("naive driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::naive_known_alice(&alice, d, &params, Amplification::replicate(3))
                .expect("alice"),
            sos_session::naive_known_bob(&bob, &params, Amplification::replicate(3)),
        )
        .expect("naive session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let driver = iblt_of_iblts::run_known(&alice, &bob, d, d, &params).expect("ioi driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::ioi_known_alice(&alice, d, d, &params, Amplification::replicate(3))
                .expect("alice"),
            sos_session::ioi_known_bob(&bob, &params, Amplification::replicate(3)),
        )
        .expect("ioi session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let driver = cascading::run_known(&alice, &bob, d, &params).expect("cascading driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::cascading_known_alice(&alice, d, &params, Amplification::replicate(4))
                .expect("alice"),
            sos_session::cascading_known_bob(&bob, &params, Amplification::replicate(4)),
        )
        .expect("cascading session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        // Theorem 3.9 has no amplification, so some random instances legitimately
        // fail with constant probability; the session must agree either way.
        let session_result = drive_over_bytes(
            sos_session::multiround_known_alice(&alice, d, d, &params),
            sos_session::multiround_known_bob(&bob, &params),
        );
        match multiround::run_known(&alice, &bob, d, d, &params) {
            Ok(driver) => {
                let (recovered, stats) = session_result.expect("multiround session");
                prop_assert_eq!(&recovered, &driver.recovered);
                prop_assert_eq!(stats, driver.stats);
            }
            Err(driver_error) => {
                let session_error = session_result.expect_err("session must fail too");
                prop_assert_eq!(
                    format!("{session_error}"), format!("{driver_error}"),
                    "both runs must fail identically"
                );
            }
        }
    }

    /// All four set-of-sets families, unknown-d variants (estimator rounds and
    /// metered NACK doubling included).
    #[test]
    fn sos_unknown_families_match_drivers(seed in any::<u64>(), d in 1usize..6) {
        let workload = WorkloadParams::new(40, 10, 1 << 28);
        let (alice, bob) = generate_pair(&workload, d, seed);
        let params = SosParams::new(seed ^ 0x51, workload.max_child_size);
        let estimator = L0Config::default();

        let driver = naive::run_unknown(&alice, &bob, &params).expect("naive driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::naive_unknown_alice(
                &alice,
                &params,
                Amplification::replicate(5),
                estimator,
            ),
            sos_session::naive_unknown_bob(&bob, &params, Amplification::replicate(5), estimator),
        )
        .expect("naive session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let max_possible = alice.total_elements() + bob.total_elements() + 2;
        let children_cap = alice.num_children().max(bob.num_children()).max(1);
        let doubling = Amplification::doubling(1, 2 * max_possible);
        let driver = iblt_of_iblts::run_unknown(&alice, &bob, &params).expect("ioi driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::ioi_unknown_alice(&alice, &params, children_cap, doubling)
                .expect("alice"),
            sos_session::ioi_unknown_bob(&bob, &params, doubling),
        )
        .expect("ioi session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let doubling = Amplification::doubling(2, 2 * max_possible);
        let driver = cascading::run_unknown(&alice, &bob, &params).expect("cascading driver");
        let (recovered, stats) = drive_over_bytes(
            sos_session::cascading_unknown_alice(&alice, &params, doubling).expect("alice"),
            sos_session::cascading_unknown_bob(&bob, &params, doubling),
        )
        .expect("cascading session");
        prop_assert_eq!(&recovered, &driver.recovered);
        prop_assert_eq!(stats, driver.stats);

        let session_result = drive_over_bytes(
            sos_session::multiround_unknown_alice(&alice, &params, estimator),
            sos_session::multiround_unknown_bob(&bob, &params, estimator),
        );
        match multiround::run_unknown(&alice, &bob, &params) {
            Ok(driver) => {
                let (recovered, stats) = session_result.expect("multiround session");
                prop_assert_eq!(&recovered, &driver.recovered);
                prop_assert_eq!(stats, driver.stats);
            }
            Err(driver_error) => {
                let session_error = session_result.expect_err("session must fail too");
                prop_assert_eq!(
                    format!("{session_error}"), format!("{driver_error}"),
                    "both runs must fail identically"
                );
            }
        }
    }
}

#[test]
fn degree_order_session_matches_driver() {
    use recon_graph::degree_order::{self, DegreeOrderParams};
    use recon_graph::{session as graph_session, Graph};

    let mut rng = Xoshiro256::new(17);
    let base = Graph::gnp(200, 0.35, &mut rng);
    let params = DegreeOrderParams { h: 48, seed: 91 };
    let driver = degree_order::reconcile(&base, &base, 4, &params).expect("driver");

    let (recovered, stats) = drive_over_bytes(
        graph_session::degree_order_alice(&base, 4, &params).expect("alice"),
        graph_session::degree_order_bob(&base, 4, &params).expect("bob"),
    )
    .expect("session");
    assert_eq!(recovered.num_edges(), driver.recovered.num_edges());
    assert_eq!(stats, driver.stats);
    assert_eq!(stats.rounds, 1, "charge + parallel edge digest share one round");
    assert_eq!(stats.messages, 2);
}

#[test]
fn forest_session_matches_driver() {
    use recon_graph::forest::{self, Forest};
    use recon_graph::session as graph_session;
    use recon_sos::multiset_of_multisets::{self, PairPacking};

    let mut rng = Xoshiro256::new(23);
    let base = Forest::random(300, 0.1, 5, &mut rng);
    let alice = base.perturb(2, &mut rng);
    let seed = 501u64;
    let driver = forest::reconcile(&alice, &base, 4, 6, seed).expect("driver");

    let packing = PairPacking::default();
    let alice_collection = alice.vertex_multisets(seed);
    let bob_collection = base.vertex_multisets(seed);
    let max_child =
        alice_collection.max_child_distinct().max(bob_collection.max_child_distinct()).max(2) + 1;
    let base_params = SosParams::new(seed ^ 0xF07E57, max_child);
    let resolved = multiset_of_multisets::resolved_params(
        &alice_collection,
        &bob_collection,
        &base_params,
        &packing,
    )
    .expect("resolved params");

    let (recovered, stats) = drive_over_bytes(
        graph_session::forest_alice(&alice, 4, 6, seed, &resolved).expect("alice"),
        graph_session::forest_bob(&base, seed, &resolved).expect("bob"),
    )
    .expect("session");
    assert!(recovered.is_isomorphic(&driver.recovered, seed));
    assert_eq!(stats, driver.stats);
    assert_eq!(stats.rounds, 1);
}

// ---------------------------------------------------------------------------
// Framed transport (Endpoint over MemoryTransport) vs MemoryLink
// ---------------------------------------------------------------------------

/// Per family: the framed multiplexed path reports byte-identical `CommStats`
/// to the blocking `MemoryLink` path, on both endpoints.
#[test]
fn framed_transport_matches_memory_link_per_family() {
    let seed = 0xF4A3;

    // Set, known d (Cor 2.2).
    let (alice, bob) = random_set_pair(300, 14, seed);
    let builder = SessionBuilder::new(seed ^ 1).amplification(Amplification::replicate(3));
    let link = builder
        .run(
            set_session::iblt_known_alice(&alice, 16, builder.config()).expect("alice"),
            set_session::iblt_known_bob(&bob, builder.config()),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        set_session::iblt_known_alice(&alice, 16, builder.config()).expect("alice"),
        set_session::iblt_known_bob(&bob, builder.config()),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "set/iblt-known");
    assert_eq!(alice_stats, link.stats, "set/iblt-known alice side");

    // Set, characteristic polynomial (Thm 2.3).
    let builder = SessionBuilder::new(seed ^ 2).amplification(Amplification::single());
    let link = builder
        .run(
            set_session::charpoly_known_alice(&alice, 16, builder.config()).expect("alice"),
            set_session::charpoly_known_bob(&bob, builder.config()),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        set_session::charpoly_known_alice(&alice, 16, builder.config()).expect("alice"),
        set_session::charpoly_known_bob(&bob, builder.config()),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "set/charpoly");
    assert_eq!(alice_stats, link.stats);

    // Set, unknown d (Cor 3.2) — estimator round included.
    let builder = SessionBuilder::new(seed ^ 3).amplification(Amplification::replicate(6));
    let link = builder
        .run(
            set_session::unknown_alice(&alice, builder.config()),
            set_session::unknown_bob(&bob, builder.config()),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        set_session::unknown_alice(&alice, builder.config()),
        set_session::unknown_bob(&bob, builder.config()),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "set/unknown");
    assert_eq!(alice_stats, link.stats);

    // Sets of sets: all four families, known d.
    let workload = WorkloadParams::new(48, 12, 1 << 28);
    let d = 5;
    let (sos_alice, sos_bob) = generate_pair(&workload, d, seed ^ 4);
    let params = SosParams::new(seed ^ 5, workload.max_child_size);
    let amplification = Amplification::replicate(4);

    let link = SessionBuilder::new(params.seed)
        .run(
            sos_session::naive_known_alice(&sos_alice, d, &params, amplification).expect("alice"),
            sos_session::naive_known_bob(&sos_bob, &params, amplification),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        sos_session::naive_known_alice(&sos_alice, d, &params, amplification).expect("alice"),
        sos_session::naive_known_bob(&sos_bob, &params, amplification),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "sos/naive");
    assert_eq!(alice_stats, link.stats);

    let link = SessionBuilder::new(params.seed)
        .run(
            sos_session::ioi_known_alice(&sos_alice, d, d, &params, amplification).expect("alice"),
            sos_session::ioi_known_bob(&sos_bob, &params, amplification),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        sos_session::ioi_known_alice(&sos_alice, d, d, &params, amplification).expect("alice"),
        sos_session::ioi_known_bob(&sos_bob, &params, amplification),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "sos/ioi");
    assert_eq!(alice_stats, link.stats);

    let link = SessionBuilder::new(params.seed)
        .run(
            sos_session::cascading_known_alice(&sos_alice, d, &params, amplification)
                .expect("alice"),
            sos_session::cascading_known_bob(&sos_bob, &params, amplification),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        sos_session::cascading_known_alice(&sos_alice, d, &params, amplification).expect("alice"),
        sos_session::cascading_known_bob(&sos_bob, &params, amplification),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "sos/cascading");
    assert_eq!(alice_stats, link.stats);

    let link = SessionBuilder::new(params.seed)
        .run(
            sos_session::multiround_known_alice(&sos_alice, d, d, &params),
            sos_session::multiround_known_bob(&sos_bob, &params),
        )
        .expect("link run (seed chosen to succeed)");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        sos_session::multiround_known_alice(&sos_alice, d, d, &params),
        sos_session::multiround_known_bob(&sos_bob, &params),
    )
    .expect("framed run");
    assert_eq!(recovered, link.recovered);
    assert_eq!(bob_stats, link.stats, "sos/multiround");
    assert_eq!(alice_stats, link.stats);

    // Graph, degree-ordering scheme (Thm 5.2) — nested + parallel charges.
    use recon_graph::degree_order::DegreeOrderParams;
    use recon_graph::{session as graph_session, Graph};
    let mut rng = Xoshiro256::new(seed ^ 6);
    let graph = Graph::gnp(150, 0.3, &mut rng);
    let graph_params = DegreeOrderParams { h: 48, seed: seed ^ 7 };
    let link = SessionBuilder::new(graph_params.seed)
        .run(
            graph_session::degree_order_alice(&graph, 4, &graph_params).expect("alice"),
            graph_session::degree_order_bob(&graph, 4, &graph_params).expect("bob"),
        )
        .expect("link run");
    let (recovered, bob_stats, alice_stats) = drive_over_endpoint_pair(
        graph_session::degree_order_alice(&graph, 4, &graph_params).expect("alice"),
        graph_session::degree_order_bob(&graph, 4, &graph_params).expect("bob"),
    )
    .expect("framed run");
    assert_eq!(recovered.num_edges(), link.recovered.num_edges());
    assert_eq!(bob_stats, link.stats, "graph/degree-order");
    assert_eq!(alice_stats, link.stats);
}

// ---------------------------------------------------------------------------
// Acceptance: >= 8 concurrent mixed-family sessions over ONE framed transport
// ---------------------------------------------------------------------------

/// Body of the nine-session acceptance test, shared with the kernel-dispatch
/// equivalence test below: runs the full mixed-family suite (nine concurrent
/// sessions over one framed transport, each checked against its solo
/// `MemoryLink` twin), asserts every recovery, and returns the per-session
/// stats so callers can compare whole runs against each other.
fn run_nine_session_suite() -> Vec<CommStats> {
    use recon_graph::degree_order::DegreeOrderParams;
    use recon_graph::{forest, session as graph_session, Forest, Graph};
    use recon_sos::multiset_of_multisets::{self, PairPacking};

    let seed = 0x008E_5510;
    let (transport_a, transport_b) = MemoryTransport::pair();
    let mut alice_end = Endpoint::new(transport_a);
    let mut bob_end = Endpoint::new(transport_b);

    // Expected outcomes from the legacy blocking path, one `MemoryLink` each.
    let mut expected: Vec<CommStats> = Vec::new();

    // Sessions 0-2: three plain-set protocols on distinct data.
    let (set_a, set_b) = random_set_pair(400, 18, seed);
    let builder = SessionBuilder::new(seed ^ 1).amplification(Amplification::replicate(3));
    expected.push(
        builder
            .run(
                set_session::iblt_known_alice(&set_a, 20, builder.config()).unwrap(),
                set_session::iblt_known_bob(&set_b, builder.config()),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            0,
            Role::Alice,
            set_session::iblt_known_alice(&set_a, 20, builder.config()).unwrap(),
        )
        .unwrap();
    bob_end.register(0, Role::Bob, set_session::iblt_known_bob(&set_b, builder.config())).unwrap();

    let charpoly_builder = SessionBuilder::new(seed ^ 2).amplification(Amplification::single());
    expected.push(
        charpoly_builder
            .run(
                set_session::charpoly_known_alice(&set_a, 20, charpoly_builder.config()).unwrap(),
                set_session::charpoly_known_bob(&set_b, charpoly_builder.config()),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            1,
            Role::Alice,
            set_session::charpoly_known_alice(&set_a, 20, charpoly_builder.config()).unwrap(),
        )
        .unwrap();
    bob_end
        .register(1, Role::Bob, set_session::charpoly_known_bob(&set_b, charpoly_builder.config()))
        .unwrap();

    let unknown_builder = SessionBuilder::new(seed ^ 3).amplification(Amplification::replicate(6));
    expected.push(
        unknown_builder
            .run(
                set_session::unknown_alice(&set_a, unknown_builder.config()),
                set_session::unknown_bob(&set_b, unknown_builder.config()),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(2, Role::Alice, set_session::unknown_alice(&set_a, unknown_builder.config()))
        .unwrap();
    bob_end
        .register(2, Role::Bob, set_session::unknown_bob(&set_b, unknown_builder.config()))
        .unwrap();

    // Sessions 3-5: three set-of-sets families.
    let workload = WorkloadParams::new(40, 10, 1 << 28);
    let d = 4;
    let (sos_a, sos_b) = generate_pair(&workload, d, seed ^ 4);
    let params = SosParams::new(seed ^ 5, workload.max_child_size);
    let amplification = Amplification::replicate(4);
    expected.push(
        SessionBuilder::new(params.seed)
            .run(
                sos_session::naive_known_alice(&sos_a, d, &params, amplification).unwrap(),
                sos_session::naive_known_bob(&sos_b, &params, amplification),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            3,
            Role::Alice,
            sos_session::naive_known_alice(&sos_a, d, &params, amplification).unwrap(),
        )
        .unwrap();
    bob_end
        .register(3, Role::Bob, sos_session::naive_known_bob(&sos_b, &params, amplification))
        .unwrap();

    expected.push(
        SessionBuilder::new(params.seed)
            .run(
                sos_session::ioi_known_alice(&sos_a, d, d, &params, amplification).unwrap(),
                sos_session::ioi_known_bob(&sos_b, &params, amplification),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            4,
            Role::Alice,
            sos_session::ioi_known_alice(&sos_a, d, d, &params, amplification).unwrap(),
        )
        .unwrap();
    bob_end
        .register(4, Role::Bob, sos_session::ioi_known_bob(&sos_b, &params, amplification))
        .unwrap();

    expected.push(
        SessionBuilder::new(params.seed)
            .run(
                sos_session::cascading_known_alice(&sos_a, d, &params, amplification).unwrap(),
                sos_session::cascading_known_bob(&sos_b, &params, amplification),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            5,
            Role::Alice,
            sos_session::cascading_known_alice(&sos_a, d, &params, amplification).unwrap(),
        )
        .unwrap();
    bob_end
        .register(5, Role::Bob, sos_session::cascading_known_bob(&sos_b, &params, amplification))
        .unwrap();

    // Session 6: multi-round set of sets (Thm 3.9; three genuine rounds).
    expected.push(
        SessionBuilder::new(params.seed)
            .run(
                sos_session::multiround_known_alice(&sos_a, d, d, &params),
                sos_session::multiround_known_bob(&sos_b, &params),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(6, Role::Alice, sos_session::multiround_known_alice(&sos_a, d, d, &params))
        .unwrap();
    bob_end.register(6, Role::Bob, sos_session::multiround_known_bob(&sos_b, &params)).unwrap();

    // Session 7: graph degree-ordering scheme (nested SoS + parallel edges).
    let mut rng = Xoshiro256::new(seed ^ 6);
    let graph = Graph::gnp(150, 0.3, &mut rng);
    let graph_params = DegreeOrderParams { h: 48, seed: seed ^ 7 };
    expected.push(
        SessionBuilder::new(graph_params.seed)
            .run(
                graph_session::degree_order_alice(&graph, 4, &graph_params).unwrap(),
                graph_session::degree_order_bob(&graph, 4, &graph_params).unwrap(),
            )
            .unwrap()
            .stats,
    );
    alice_end
        .register(
            7,
            Role::Alice,
            graph_session::degree_order_alice(&graph, 4, &graph_params).unwrap(),
        )
        .unwrap();
    bob_end
        .register(7, Role::Bob, graph_session::degree_order_bob(&graph, 4, &graph_params).unwrap())
        .unwrap();

    // Session 8: forest reconciliation (nested multiset-of-multisets).
    let mut rng = Xoshiro256::new(seed ^ 8);
    let base = Forest::random(200, 0.1, 5, &mut rng);
    let forest_alice = base.perturb(2, &mut rng);
    let forest_seed = 761u64;
    let packing = PairPacking::default();
    let alice_collection = forest_alice.vertex_multisets(forest_seed);
    let bob_collection = base.vertex_multisets(forest_seed);
    let max_child =
        alice_collection.max_child_distinct().max(bob_collection.max_child_distinct()).max(2) + 1;
    let base_params = SosParams::new(forest_seed ^ 0xF07E57, max_child);
    let resolved = multiset_of_multisets::resolved_params(
        &alice_collection,
        &bob_collection,
        &base_params,
        &packing,
    )
    .unwrap();
    expected.push(forest::reconcile(&forest_alice, &base, 4, 6, forest_seed).unwrap().stats);
    alice_end
        .register(
            8,
            Role::Alice,
            graph_session::forest_alice(&forest_alice, 4, 6, forest_seed, &resolved).unwrap(),
        )
        .unwrap();
    bob_end
        .register(8, Role::Bob, graph_session::forest_bob(&base, forest_seed, &resolved).unwrap())
        .unwrap();

    // All nine sessions share one framed byte stream.
    assert_eq!(bob_end.registered_sessions(), 9);
    drive_pair(&mut alice_end, &mut bob_end).unwrap();

    let take = |end: &mut Endpoint<MemoryTransport>, id: u64| -> CommStats {
        match id {
            0..=2 => {
                let outcome = end.take_outcome::<HashSet<u64>>(id).unwrap().unwrap();
                assert_eq!(outcome.recovered, set_a, "session {id} recovery");
                outcome.stats
            }
            3..=6 => {
                let outcome = end.take_outcome::<SetOfSets>(id).unwrap().unwrap();
                assert_eq!(outcome.recovered, sos_a, "session {id} recovery");
                outcome.stats
            }
            7 => end.take_outcome::<Graph>(id).unwrap().unwrap().stats,
            _ => end.take_outcome::<Forest>(id).unwrap().unwrap().stats,
        }
    };
    let mut per_session = Vec::with_capacity(9);
    for id in 0..9u64 {
        let alice_stats = alice_end.close(id).expect("alice side registered");
        let stats = take(&mut bob_end, id);
        assert_eq!(stats, expected[id as usize], "session {id} vs MemoryLink");
        assert_eq!(alice_stats, expected[id as usize], "session {id} alice side");
        per_session.push(stats);
    }
    per_session
}

/// One endpoint pair multiplexes nine concurrent sessions spanning all three
/// protocol layers (plain sets, sets of sets, graphs) over a single framed
/// byte stream, and every session's `CommStats` is byte-identical to the same
/// protocol run alone through the legacy `MemoryLink` path.
#[test]
fn one_endpoint_drives_nine_concurrent_mixed_family_sessions() {
    let per_session = run_nine_session_suite();
    assert_eq!(per_session.len(), 9);
}

/// Forcing the IBLT bulk kernels onto the scalar fallback path (the code every
/// non-AVX2 machine runs) must be invisible end to end: the full mixed-family
/// suite recovers the same data with byte-identical `CommStats` under both the
/// runtime-dispatched kernels and the forced fallback. `RECON_IBLT_FORCE_SCALAR=1`
/// gives the same coverage for an entire test-suite run without recompiling.
#[test]
fn forced_scalar_kernels_match_dispatched_nine_session_suite() {
    /// Restores auto dispatch even if the suite panics mid-run.
    struct ScalarModeGuard;
    impl Drop for ScalarModeGuard {
        fn drop(&mut self) {
            recon_iblt::force_scalar_kernels(false);
        }
    }

    let dispatched = run_nine_session_suite();
    let scalar = {
        recon_iblt::force_scalar_kernels(true);
        let _guard = ScalarModeGuard;
        run_nine_session_suite()
    };
    assert_eq!(dispatched, scalar, "kernel dispatch must not change any session's stats");
}

// ---------------------------------------------------------------------------
// Sharded runner: merged stats are a deterministic sum of solo sessions
// ---------------------------------------------------------------------------

/// Sharded set reconciliation: every shard's stats equal the same shard run
/// alone over a `MemoryLink`, the merged stats are their exact sum, and the
/// whole thing is deterministic across runs.
#[test]
fn sharded_set_stats_match_solo_memory_link_shards() {
    let (alice, bob) = random_set_pair(700, 28, 0x5A4D);
    let runner = ShardedRunner::new(5, 0xD15C);
    let amplification = Amplification::replicate(3);
    let per_shard_d = 30;

    let outcome =
        recon_set::reconcile_known_sharded(&alice, &bob, per_shard_d, amplification, &runner)
            .expect("sharded run");
    assert_eq!(outcome.recovered, alice);
    assert_eq!(outcome.per_shard.len(), 5);

    // Each shard individually, through the legacy blocking path.
    let alice_shards = recon_set::shard_set(&alice, &runner);
    let bob_shards = recon_set::shard_set(&bob, &runner);
    for (shard, stats) in outcome.per_shard.iter().enumerate() {
        let config = SessionConfig {
            seed: runner.shard_seed(shard),
            amplification,
            estimator: L0Config::default(),
        };
        let solo = SessionBuilder::new(config.seed)
            .amplification(amplification)
            .run(
                set_session::iblt_known_alice(&alice_shards[shard], per_shard_d, &config)
                    .expect("alice"),
                set_session::iblt_known_bob(&bob_shards[shard], &config),
            )
            .expect("solo shard run");
        assert_eq!(*stats, solo.stats, "shard {shard} vs MemoryLink");
        assert_eq!(solo.recovered, alice_shards[shard]);
    }

    // Merged = componentwise sum (rounds overlap, so they take the max).
    assert_eq!(
        outcome.stats.bytes_alice_to_bob,
        outcome.per_shard.iter().map(|s| s.bytes_alice_to_bob).sum::<usize>()
    );
    assert_eq!(
        outcome.stats.bytes_bob_to_alice,
        outcome.per_shard.iter().map(|s| s.bytes_bob_to_alice).sum::<usize>()
    );
    assert_eq!(outcome.stats.messages, outcome.per_shard.iter().map(|s| s.messages).sum::<usize>());
    assert_eq!(outcome.stats.rounds, outcome.per_shard.iter().map(|s| s.rounds).max().unwrap());

    // Determinism: an identical second run produces identical stats.
    let again =
        recon_set::reconcile_known_sharded(&alice, &bob, per_shard_d, amplification, &runner)
            .expect("second sharded run");
    assert_eq!(outcome, again);
}

/// Sharded set-of-sets reconciliation: per-shard stats equal solo MemoryLink
/// runs of the same shard parties and the merged stats sum deterministically.
#[test]
fn sharded_sos_stats_match_solo_memory_link_shards() {
    let workload = WorkloadParams::new(60, 10, 1 << 28);
    let d = 4;
    let (alice, bob) = generate_pair(&workload, d, 0xBEE);
    let params = SosParams::new(0xABBA, workload.max_child_size);
    let runner = ShardedRunner::new(4, 0xCAFE);
    let amplification = Amplification::replicate(4);
    let per_shard_d = 2 * d + 2; // differing children (naive family units)

    let outcome = recon_sos::sharded::reconcile_known_sharded(
        &alice,
        &bob,
        per_shard_d,
        ShardedSosFamily::Naive,
        &params,
        amplification,
        &runner,
    )
    .expect("sharded run");
    assert_eq!(outcome.recovered, alice);

    let alice_shards = recon_sos::shard_set_of_sets(&alice, &runner);
    let bob_shards = recon_sos::shard_set_of_sets(&bob, &runner);
    for (shard, stats) in outcome.per_shard.iter().enumerate() {
        let shard_params = SosParams::new(runner.shard_seed(shard), params.max_child_size);
        let solo = SessionBuilder::new(shard_params.seed)
            .run(
                sos_session::naive_known_alice(
                    &alice_shards[shard],
                    per_shard_d,
                    &shard_params,
                    amplification,
                )
                .expect("alice"),
                sos_session::naive_known_bob(&bob_shards[shard], &shard_params, amplification),
            )
            .expect("solo shard run");
        assert_eq!(*stats, solo.stats, "shard {shard} vs MemoryLink");
    }
    assert_eq!(
        outcome.stats.total_bytes(),
        outcome.per_shard.iter().map(|s| s.total_bytes()).sum::<usize>()
    );

    let again = recon_sos::sharded::reconcile_known_sharded(
        &alice,
        &bob,
        per_shard_d,
        ShardedSosFamily::Naive,
        &params,
        amplification,
        &runner,
    )
    .expect("second sharded run");
    assert_eq!(outcome, again);
}

// ---------------------------------------------------------------------------
// Thread-parallel sharded execution: identical outcomes at every thread count
// ---------------------------------------------------------------------------

/// Running the sharded set protocols on worker threads must change nothing but
/// wall-clock: per-shard `CommStats`, merged stats, and recovered sets are
/// byte-identical to the single-threaded multiplexed run, for both known-`d`
/// and unknown-`d` (per-shard estimator) variants.
#[test]
fn threaded_sharded_set_matches_single_thread() {
    let (alice, bob) = random_set_pair(900, 36, 0x7157);
    let amplification = Amplification::replicate(3);
    let base = ShardedRunner::new(6, 0xEED5);
    assert_eq!(base.threads(), 1);

    let single = recon_set::reconcile_known_sharded(&alice, &bob, 40, amplification, &base)
        .expect("single-threaded run");
    for threads in [2usize, 3, 16] {
        let runner = base.with_threads(threads);
        assert_eq!(runner.threads(), threads);
        let threaded = recon_set::reconcile_known_sharded(&alice, &bob, 40, amplification, &runner)
            .expect("threaded run");
        assert_eq!(threaded, single, "known-d, {threads} threads");
    }

    let single = recon_set::reconcile_unknown_sharded(
        &alice,
        &bob,
        Amplification::replicate(6),
        L0Config::default(),
        &base,
    )
    .expect("single-threaded unknown run");
    let threaded = recon_set::reconcile_unknown_sharded(
        &alice,
        &bob,
        Amplification::replicate(6),
        L0Config::default(),
        &base.with_threads(4),
    )
    .expect("threaded unknown run");
    assert_eq!(threaded, single, "unknown-d");
}

/// Same property for the set-of-sets families, including the new per-shard
/// unknown-`d` path, and errors abort deterministically regardless of threads.
#[test]
fn threaded_sharded_sos_matches_single_thread() {
    let workload = WorkloadParams::new(54, 10, 1 << 28);
    let (alice, bob) = generate_pair(&workload, 5, 0xF00D);
    let params = SosParams::new(0x5EED, workload.max_child_size);
    let base = ShardedRunner::new(5, 0xD00F);
    let amplification = Amplification::replicate(4);

    for family in
        [ShardedSosFamily::Naive, ShardedSosFamily::IbltOfIblts, ShardedSosFamily::Cascading]
    {
        let per_shard_d = match family {
            ShardedSosFamily::Naive => 12,
            _ => 12 * (workload.max_child_size + 1),
        };
        let single = recon_sos::sharded::reconcile_known_sharded(
            &alice,
            &bob,
            per_shard_d,
            family,
            &params,
            amplification,
            &base,
        )
        .expect("single-threaded run");
        let threaded = recon_sos::sharded::reconcile_known_sharded(
            &alice,
            &bob,
            per_shard_d,
            family,
            &params,
            amplification,
            &base.with_threads(3),
        )
        .expect("threaded run");
        assert_eq!(threaded, single, "{family:?}");
    }

    // Per-shard unknown-d (naive family estimates per shard; the doubling
    // families cap per shard) is thread-count-invariant too.
    let single = recon_sos::sharded::reconcile_unknown_sharded(
        &alice,
        &bob,
        ShardedSosFamily::IbltOfIblts,
        &params,
        L0Config::default(),
        &base,
    )
    .expect("single-threaded unknown run");
    let threaded = recon_sos::sharded::reconcile_unknown_sharded(
        &alice,
        &bob,
        ShardedSosFamily::IbltOfIblts,
        &params,
        L0Config::default(),
        &base.with_available_threads(),
    )
    .expect("threaded unknown run");
    assert_eq!(threaded, single, "unknown-d ioi");

    // A guaranteed-failing workload reports the same error at every thread
    // count (the lowest failing shard id wins, as in sequential collection).
    let undersized = |threads: usize| {
        recon_sos::sharded::reconcile_known_sharded(
            &alice,
            &bob,
            1, // far too small for the bit-level family
            ShardedSosFamily::IbltOfIblts,
            &params,
            Amplification::single(),
            &base.with_threads(threads),
        )
        .expect_err("undersized bound must fail")
    };
    assert_eq!(format!("{}", undersized(1)), format!("{}", undersized(4)));
}
