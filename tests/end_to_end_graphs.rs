//! Cross-crate integration tests for the graph and forest reconciliation pipelines.

use recon_base::rng::Xoshiro256;
use recon_base::ReconError;
use recon_graph::degree_neighborhood::{self, DegreeNeighborhoodParams};
use recon_graph::degree_order::{self, DegreeOrderParams};
use recon_graph::forest::{self, Forest};
use recon_graph::general;
use recon_graph::Graph;
use recon_protocol::Outcome;

#[test]
fn degree_ordering_end_to_end_on_identical_graphs() {
    let mut rng = Xoshiro256::new(1);
    let g = Graph::gnp(256, 0.4, &mut rng);
    let params = DegreeOrderParams { h: 48, seed: 3 };
    let Outcome { recovered, stats } =
        degree_order::reconcile(&g, &g, 2, &params).expect("reconcile");
    assert_eq!(recovered.num_edges(), g.num_edges());
    assert_eq!(stats.rounds, 1);
    // O(d log n)-ish communication: far below retransmitting ~13k edges (>100 KiB).
    assert!(stats.total_bytes() < 60_000, "{}", stats.total_bytes());
}

#[test]
fn degree_ordering_never_returns_a_wrong_graph() {
    let mut rng = Xoshiro256::new(2);
    let base = Graph::gnp(160, 0.3, &mut rng);
    for d in [2usize, 4, 8] {
        let alice = base.perturb(d / 2, &mut rng);
        let bob = base.perturb(d - d / 2, &mut rng);
        let params = DegreeOrderParams { h: 40, seed: 100 + d as u64 };
        match degree_order::reconcile(&alice, &bob, d, &params) {
            Ok(Outcome { recovered, .. }) => {
                let mut a: Vec<usize> = (0..160u32).map(|v| alice.degree(v)).collect();
                let mut r: Vec<usize> = (0..160u32).map(|v| recovered.degree(v)).collect();
                a.sort_unstable();
                r.sort_unstable();
                assert_eq!(a, r, "degree sequence must match at d = {d}");
                assert_eq!(recovered.num_edges(), alice.num_edges());
            }
            Err(ReconError::SeparationFailure(_)) => {} // detected, acceptable
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn degree_neighborhood_end_to_end_on_sparse_graphs() {
    let mut rng = Xoshiro256::new(3);
    let base = Graph::gnp(160, 0.1, &mut rng);
    let alice = base.perturb(1, &mut rng);
    let bob = base.perturb(1, &mut rng);
    let params = DegreeNeighborhoodParams::for_gnp(160, 0.1, 7);
    match degree_neighborhood::reconcile(&alice, &bob, 2, &params) {
        Ok(Outcome { recovered, stats }) => {
            assert_eq!(recovered.num_edges(), alice.num_edges());
            let mut a: Vec<usize> = (0..160u32).map(|v| alice.degree(v)).collect();
            let mut r: Vec<usize> = (0..160u32).map(|v| recovered.degree(v)).collect();
            a.sort_unstable();
            r.sort_unstable();
            assert_eq!(a, r);
            assert!(stats.total_bytes() > 0);
        }
        Err(ReconError::SeparationFailure(_)) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn forest_reconciliation_end_to_end() {
    let mut rng = Xoshiro256::new(4);
    let base = Forest::random(1_000, 0.1, 6, &mut rng);
    for d in [1usize, 4, 10] {
        let alice = base.perturb(d / 2, &mut rng);
        let bob = base.perturb(d - d / 2, &mut rng);
        let sigma = alice.max_depth().max(bob.max_depth()).max(1);
        let Outcome { recovered, stats } =
            forest::reconcile(&alice, &bob, d, sigma, 40 + d as u64).expect("forest");
        assert!(recovered.is_isomorphic(&alice, 40 + d as u64), "d = {d}");
        // Communication grows with d·σ, not with the vertex count; the absolute
        // constant is dominated by IBLT cell overhead (see DESIGN.md §5), so only a
        // loose sanity cap is asserted here — the n-independence itself is checked in
        // `recon_graph::forest::tests::communication_scales_with_d_sigma_not_n`.
        assert!(stats.total_bytes() < 2_000_000, "{}", stats.total_bytes());
    }
}

#[test]
fn general_protocols_agree_with_brute_force_on_tiny_graphs() {
    let mut rng = Xoshiro256::new(5);
    for trial in 0..10u64 {
        let a = Graph::gnp(6, 0.5, &mut rng);
        let b = Graph::gnp(6, 0.5, &mut rng);
        let expected = a.is_isomorphic_bruteforce(&b);
        let (verdict, stats) = general::isomorphism_protocol(&a, &b, trial);
        // One-sided error only: isomorphic graphs are never rejected.
        if expected {
            assert!(verdict);
        }
        assert!(stats.total_bytes() <= 16);
    }
}

#[test]
fn figure1_ambiguity_holds() {
    let (merge1, merge2) = general::figure1_merges();
    assert!(!merge1.is_isomorphic_bruteforce(&merge2));
}

#[test]
fn lower_bound_payload_survives_reconciliation_semantics() {
    // The Theorem 4.4 argument: whoever can produce a graph isomorphic to Alice's can
    // read the payload back out. Simulate Bob holding G_B and "receiving" G_A.
    let payload = vec![1u64, 4, 2, 7, 0];
    let (g_a, g_b) = general::lower_bound_instance(8, &payload);
    assert_eq!(g_a.edge_difference(&g_b), payload.len());
    assert_eq!(general::lower_bound_decode(&g_a, 8, payload.len()), Some(payload));
}
