//! Fleet-scale convergence: hundreds of replicas driven to a provably common
//! set — equal incremental set hashes everywhere — by the star and gossip
//! topologies, with wire accounting aggregated from ordinary per-session
//! `CommStats`.

use recon_fleet::{
    FleetRunner, GossipConfig, GossipRunner, GossipTransport, StarConfig, StarFleet,
};
use recon_set::full_digest_builds;
use recon_set::session::{iblt_known_alice, iblt_known_bob};
use recon_store::{MemoryBackend, SketchStore, StoreConfig};
use std::collections::HashSet;

/// Spread keys deterministically so strata estimators see uniform bits.
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A star hub with 250 spokes converges in two rounds, with the hub's entire
/// service paid from ONE maintained sketch: `full_digest_builds()` stays
/// O(1) in the spoke count across 500+ reconciliation sessions.
#[test]
fn star_converges_250_spokes_from_one_cached_hub_sketch() {
    let base: Vec<u64> = (0..2000).map(key).collect();
    // Spoke k: the base minus a few keys, plus two keys only it holds.
    let spoke_sets: Vec<HashSet<u64>> = (0..250u64)
        .map(|k| {
            let mut set: HashSet<u64> = base.iter().copied().skip((k % 7) as usize + 1).collect();
            set.insert(key(1_000_000 + 2 * k));
            set.insert(key(1_000_001 + 2 * k));
            set
        })
        .collect();
    let mut expected: HashSet<u64> = base.iter().copied().collect();
    for set in &spoke_sets {
        expected.extend(set);
    }

    let store = SketchStore::open(
        MemoryBackend::new(),
        StoreConfig::default().with_seed(0x57A0).with_ladder(vec![64, 256, 1024]),
    )
    .unwrap();
    let config = StarConfig {
        d_bound: Some(600), // every round-1 diff fits the 1024 rung
        spoke_threads: 4,   // concurrent spokes against the multi-worker hub
        ..StarConfig::default()
    };
    let mut fleet = StarFleet::launch(store, config, base.iter().copied(), spoke_sets).unwrap();

    let builds_before = full_digest_builds();
    let stats = fleet.run_to_convergence(4).unwrap();
    // O(1) in spoke count: 500 sessions served without per-session rebuilds
    // (the slack tolerates unrelated tests in this binary touching the
    // process-global counter, never a per-spoke cost).
    assert!(
        full_digest_builds() - builds_before <= 4,
        "hub must serve every spoke from the cached bank"
    );

    assert_eq!(stats.rounds, 2, "a static star fleet converges in exactly two rounds");
    assert_eq!(stats.sessions, 500);
    assert_eq!(stats.per_round.len(), 2);
    assert_eq!(
        stats.per_round.iter().map(|r| r.bytes).sum::<u64>(),
        stats.total_bytes,
        "round breakdown must tile the total"
    );
    // The hub touches every byte; each spoke only its own sessions.
    let hub = fleet.hub_index();
    assert_eq!(stats.per_replica_bytes[hub], stats.total_bytes);
    assert_eq!(stats.max_replica_bytes(), stats.total_bytes);
    assert!(stats.per_replica_bytes[..hub].iter().all(|&b| b > 0 && b < stats.total_bytes / 100));

    // Converged means converged: every spoke equals the hub, equals the union.
    let (hub_hash, hub_cardinality) = fleet.hub_state().unwrap();
    assert_eq!(hub_cardinality as usize, expected.len());
    for spoke in 0..250 {
        assert_eq!(fleet.spoke_hash(spoke), hub_hash, "spoke {spoke}");
    }
    assert_eq!(fleet.spoke_keys(17), &expected);

    // Churn after convergence: inserts and deletes on spokes reconverge.
    // Union semantics resurrect a key deleted from one replica while others
    // still hold it — the fleet converges to a common set, not to the delete.
    fleet.spoke_insert(3, key(9_000_000));
    fleet.spoke_insert(42, key(9_000_001));
    let doomed = *expected.iter().next().unwrap();
    assert!(fleet.spoke_remove(7, doomed));
    let stats = fleet.run_to_convergence(4).unwrap();
    assert_eq!(stats.rounds, 4, "two more rounds for the churned fleet");
    let (_, hub_cardinality) = fleet.hub_state().unwrap();
    assert_eq!(hub_cardinality as usize, expected.len() + 2);
    assert!(fleet.spoke_keys(7).contains(&doomed), "unions resurrect lone deletes");

    let (_, server, store) = fleet.shutdown();
    assert_eq!(server.failed, 0, "{server:?}");
    let store = store.expect("all daemon handles released");
    assert_eq!(store.keys("master").unwrap().len(), expected.len() + 2);
}

/// 256 gossip replicas over in-process transports converge to the global
/// union in O(log n) rounds, strata-sized per pair, with no digest rebuilds.
#[test]
fn gossip_converges_256_replicas_in_log_rounds() {
    let shared: Vec<u64> = (0..200).map(key).collect();
    let sets: Vec<HashSet<u64>> = (0..256u64)
        .map(|m| {
            let mut set: HashSet<u64> = shared.iter().copied().collect();
            set.insert(key(2_000_000 + 2 * m));
            set.insert(key(2_000_001 + 2 * m));
            set
        })
        .collect();
    let mut expected: HashSet<u64> = shared.iter().copied().collect();
    for set in &sets {
        expected.extend(set);
    }

    let config =
        GossipConfig { seed: 0x6055, ladder: vec![16, 64, 256, 1024], ..GossipConfig::default() };
    let mut fleet = GossipRunner::new(config, sets).unwrap();
    assert_eq!(fleet.replicas(), 256);
    assert!(!fleet.converged().unwrap());

    let builds_before = full_digest_builds();
    let stats = fleet.run_to_convergence(16).unwrap();
    // Attempt-0 digests are served from the cached banks; only retry attempts
    // rebuild. The retightened (rescue-backed) sizing trades a ~0.2% attempt-0
    // failure rate for smaller digests, so allow a handful of retries across
    // the ~2500 sessions — anything per-session would be in the thousands.
    let rebuilds = full_digest_builds() - builds_before;
    assert!(
        rebuilds <= 12,
        "gossip attempt-0 digests come from the cached banks ({rebuilds} rebuilds)"
    );

    // log2(256) = 8 rounds is the floor; the seeded schedule lands near it.
    assert!((8..=14).contains(&stats.rounds), "rounds {}", stats.rounds);
    assert_eq!(stats.sessions, stats.rounds as u64 * 256, "128 pairs × 2 sessions per round");
    assert_eq!(stats.per_round.iter().map(|r| r.bytes).sum::<u64>(), stats.total_bytes);
    // No hub: the heaviest replica carries a small multiple of the mean,
    // never the whole fleet's bytes.
    let mean = stats.total_bytes * 2 / 256; // each session charges both ends
    assert!(
        stats.max_replica_bytes() < mean * 4,
        "max {} vs mean {mean}",
        stats.max_replica_bytes()
    );

    for m in 0..256 {
        assert_eq!(fleet.set_hash(m), fleet.set_hash(0), "member {m}");
    }
    assert_eq!(fleet.keys(131), expected);
}

/// Churn injected *between* gossip rounds — inserts and deletes landing on
/// members mid-convergence — still converges, to the union of what the
/// members held when the churn stopped.
#[test]
fn gossip_converges_under_churn_between_rounds() {
    let sets: Vec<HashSet<u64>> = (0..64u64)
        .map(|m| {
            let mut set: HashSet<u64> = (0..300).map(key).collect();
            set.insert(key(3_000_000 + m));
            set
        })
        .collect();
    let config =
        GossipConfig { seed: 0xC4A2, ladder: vec![16, 64, 256, 1024], ..GossipConfig::default() };
    let mut fleet = GossipRunner::new(config, sets).unwrap();

    // Two rounds of normal gossip, then churn lands between rounds.
    for round in 0..4 {
        fleet.run_round().unwrap();
        let fresh = key(4_000_000 + round);
        assert!(fleet.insert((round as usize * 13) % 64, fresh));
        // Delete a key from a member that holds it while other holders keep
        // gossiping it around: unions resow it, so the fleet must converge
        // *through* the delete.
        let holder = (0..64).find(|&m| fleet.keys(m).contains(&key(3_000_000))).unwrap();
        assert!(fleet.remove(holder, key(3_000_000)));
        assert!(!fleet.converged().unwrap(), "churn keeps the fleet apart");
    }

    // Churn stops; from here gossip only unions, so the fixed point is the
    // union of every member's current set.
    let mut expected = HashSet::new();
    for m in 0..64 {
        expected.extend(fleet.keys(m));
    }
    let stats = fleet.run_to_convergence(16).unwrap();
    assert!(stats.rounds >= 5);
    for m in 0..64 {
        assert_eq!(fleet.keys(m), expected, "member {m}");
    }
}

/// The same small fleet over real TCP sockets and over in-process memory
/// transports: identical schedules, identical sessions, identical bytes —
/// the transport is invisible to the protocol layer.
#[test]
fn gossip_tcp_is_byte_identical_to_memory() {
    let build_sets = || -> Vec<HashSet<u64>> {
        (0..8u64)
            .map(|m| {
                let mut set: HashSet<u64> = (0..400).map(key).collect();
                for u in 0..6 {
                    set.insert(key(5_000_000 + 6 * m + u));
                }
                set
            })
            .collect()
    };
    let config = |transport| GossipConfig {
        seed: 0x7C9,
        ladder: vec![16, 64, 256],
        transport,
        ..GossipConfig::default()
    };

    let mut memory = GossipRunner::new(config(GossipTransport::Memory), build_sets()).unwrap();
    let memory_stats = memory.run_to_convergence(12).unwrap();

    let mut tcp = GossipRunner::new(config(GossipTransport::Tcp), build_sets()).unwrap();
    let tcp_stats = tcp.run_to_convergence(12).unwrap();

    assert_eq!(tcp_stats, memory_stats, "transport must not change a single charged byte");
    for m in 0..8 {
        assert_eq!(tcp.set_hash(m), memory.set_hash(m));
        assert_eq!(tcp.keys(m), memory.keys(m));
    }
}

/// `FleetStats.total_bytes` is exactly the sum of per-session `CommStats`:
/// one fleet round of a two-member fleet must cost precisely two cold
/// two-party sessions' bytes, measured independently by `SessionBuilder`.
#[test]
fn fleet_bytes_equal_cold_session_comm_stats() {
    let set_a: HashSet<u64> = (0..500).map(key).collect();
    let set_b: HashSet<u64> = (10..505).map(key).collect();

    let config = GossipConfig {
        seed: 0xB17E5,
        ladder: vec![32, 128],
        d_bound: Some(32),
        ..GossipConfig::default()
    };
    let mut fleet = GossipRunner::new(config, [set_a.clone(), set_b.clone()]).unwrap();
    let params = fleet.params().clone();
    let round = fleet.run_round().unwrap();
    assert_eq!(round.sessions, 2);
    assert!(fleet.converged().unwrap());

    // The independent meter: cold sessions over the same sets, same seed,
    // same effective bound (the 32 rung), one per direction.
    let session_config = params.session_config();
    let cold = |alice_set: &HashSet<u64>, bob_set: &HashSet<u64>| {
        recon_protocol::SessionBuilder::new(params.seed)
            .amplification(session_config.amplification)
            .run(
                iblt_known_alice(alice_set, 32, &session_config).unwrap(),
                iblt_known_bob(bob_set, &session_config),
            )
            .unwrap()
    };
    let push = cold(&set_a, &set_b);
    let pull = cold(&set_b, &set_a);
    assert_eq!(
        round.bytes,
        (push.stats.total_bytes() + pull.stats.total_bytes()) as u64,
        "fleet accounting must be the plain sum of session CommStats"
    );
    assert_eq!(fleet.stats().total_bytes, round.bytes);

    let union: HashSet<u64> = set_a.union(&set_b).copied().collect();
    assert_eq!(fleet.keys(0), union);
    assert_eq!(fleet.keys(1), union);
}
