//! End-to-end test of the reactor runtime: one [`Server`] (2 worker reactors)
//! serving ≥8 concurrent TCP client connections, each multiplexing *mixed
//! protocol families* (unknown-`d` set reconciliation, known-`d` IBLT set
//! reconciliation, cascading set-of-sets), with every recovery and every
//! per-session [`CommStats`] asserted byte-identical to the blocking
//! `SessionBuilder` driver running the very same party pairs.
//!
//! The suite runs three ways: on the default backend in its default
//! edge-triggered mode (epoll-ET on Linux), on epoll pinned back to
//! level-triggered delivery, and on the portable `poll(2)` fallback — every
//! recovery and every counter must be identical across all three, because
//! readiness delivery is an implementation detail the protocol cannot see. CI
//! additionally repeats the whole test binary under
//! `RECON_RUNTIME_FORCE_POLL=1` (and under `RECON_PROTOCOL_FORCE_SEQ_IO=1`),
//! which exercises the environment-variable selection paths end to end.

use recon_base::ReconError;
use recon_protocol::{Amplification, Outcome, Party, Role, SessionBuilder, SessionId};
use recon_runtime::{
    drive_endpoint, Backend, ReactorConfig, Server, ServerConfig, TcpEndpoint, TcpService, Trigger,
};
use recon_set::session as set_session;
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{session as sos_session, SetOfSets, SosParams};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

const SHARED_SEED: u64 = 0x0EAC_7012;
const UNKNOWN_SET: SessionId = 0;
const KNOWN_SET: SessionId = 1;
const CASCADING_SOS: SessionId = 2;
const CLIENTS: usize = 8;
const WORKERS: usize = 2;

// The server's (Alice's) datasets are fixed — a server cannot know which
// replica will dial in — while every client's (Bob's) datasets drift from them
// under the client's own index, so the 8 concurrent connections all reconcile
// different differences.

fn unknown_alice_set() -> HashSet<u64> {
    (0..800u64).map(|x| x * 7 + 1).collect()
}

fn unknown_bob_set(client: u64) -> HashSet<u64> {
    let mut bob: HashSet<u64> = unknown_alice_set().into_iter().filter(|x| x % 100 != 3).collect();
    bob.extend((0..5u64).map(|x| 1_000_000 + client * 16 + x));
    bob
}

fn known_alice_set() -> HashSet<u64> {
    (0..500u64).map(|x| x * 13 + 5).collect()
}

fn known_bob_set(client: u64) -> HashSet<u64> {
    let mut bob = known_alice_set();
    for x in 0..4u64 {
        bob.insert(2_000_000 + client * 8 + x);
        bob.remove(&((x * 29) * 13 + 5));
    }
    bob
}

fn sos_pair() -> (SetOfSets, SetOfSets) {
    generate_pair(&WorkloadParams::new(32, 12, 1 << 28), 4, SHARED_SEED)
}

fn sos_params() -> SosParams {
    SosParams::new(SHARED_SEED ^ 0x505, 12)
}

fn builder() -> SessionBuilder {
    SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(6))
}

fn alice_unknown() -> impl Party<Output = ()> + 'static {
    set_session::unknown_alice(&unknown_alice_set(), builder().config())
}

fn alice_known() -> impl Party<Output = ()> + 'static {
    set_session::iblt_known_alice(&known_alice_set(), 16, builder().config()).expect("alice")
}

fn alice_sos() -> impl Party<Output = ()> + 'static {
    sos_session::cascading_known_alice(&sos_pair().0, 4, &sos_params(), Amplification::replicate(4))
        .expect("alice")
}

fn bob_unknown(client: u64) -> impl Party<Output = HashSet<u64>> + 'static {
    set_session::unknown_bob(&unknown_bob_set(client), builder().config())
}

fn bob_known(client: u64) -> impl Party<Output = HashSet<u64>> + 'static {
    set_session::iblt_known_bob(&known_bob_set(client), builder().config())
}

fn bob_sos() -> impl Party<Output = SetOfSets> + 'static {
    sos_session::cascading_known_bob(&sos_pair().1, &sos_params(), Amplification::replicate(4))
}

/// The server side: three Alice sessions per connection.
struct MixedFamilies;

impl TcpService for MixedFamilies {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut TcpEndpoint,
    ) -> Result<(), ReconError> {
        endpoint.register(UNKNOWN_SET, Role::Alice, alice_unknown())?;
        endpoint.register(KNOWN_SET, Role::Alice, alice_known())?;
        endpoint.register(CASCADING_SOS, Role::Alice, alice_sos())?;
        Ok(())
    }
    // on_progress: default close-all-finished harvest.
}

struct ClientRecoveries {
    unknown: Outcome<HashSet<u64>>,
    known: Outcome<HashSet<u64>>,
    sos: Outcome<SetOfSets>,
}

/// One reactor client: dial, run all three sessions readiness-driven, return
/// the outcomes.
fn run_client(
    addr: SocketAddr,
    client: u64,
    backend: Option<Backend>,
    trigger: Trigger,
) -> ClientRecoveries {
    let mut endpoint = recon_runtime::connect_endpoint(addr).expect("connect");
    endpoint.register(UNKNOWN_SET, Role::Bob, bob_unknown(client)).expect("register");
    endpoint.register(KNOWN_SET, Role::Bob, bob_known(client)).expect("register");
    endpoint.register(CASCADING_SOS, Role::Bob, bob_sos()).expect("register");

    let config = ReactorConfig {
        session_deadline: Some(Duration::from_secs(60)),
        backend,
        trigger,
        ..ReactorConfig::default()
    };
    let (mut unknown, mut known, mut sos) = (None, None, None);
    drive_endpoint(&mut endpoint, &config, |endpoint| {
        if unknown.is_none() {
            unknown = endpoint.take_outcome::<HashSet<u64>>(UNKNOWN_SET).map(|o| o.expect("ok"));
        }
        if known.is_none() {
            known = endpoint.take_outcome::<HashSet<u64>>(KNOWN_SET).map(|o| o.expect("ok"));
        }
        if sos.is_none() {
            sos = endpoint.take_outcome::<SetOfSets>(CASCADING_SOS).map(|o| o.expect("ok"));
        }
        Ok(unknown.is_some() && known.is_some() && sos.is_some())
    })
    .expect("client drive");
    ClientRecoveries { unknown: unknown.unwrap(), known: known.unwrap(), sos: sos.unwrap() }
}

/// Serve `CLIENTS` concurrent mixed-family connections on `WORKERS` worker
/// reactors and check every outcome against the blocking driver.
fn serve_and_verify(backend: Option<Backend>, trigger: Trigger) {
    let mut config = ServerConfig::new()
        .workers(WORKERS)
        .session_deadline(Some(Duration::from_secs(60)))
        .trigger(trigger);
    config.backend = backend;
    let server = Server::bind("127.0.0.1:0", config, |_| MixedFamilies).expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS as u64)
        .map(|client| {
            std::thread::spawn(move || (client, run_client(addr, client, backend, trigger)))
        })
        .collect();
    for handle in handles {
        let (client, got) = handle.join().expect("client thread");

        // The blocking path: identical party pairs through SessionBuilder.
        let expected_unknown =
            builder().run(alice_unknown(), bob_unknown(client)).expect("blocking unknown");
        let expected_known =
            builder().run(alice_known(), bob_known(client)).expect("blocking known");
        let expected_sos = builder().run(alice_sos(), bob_sos()).expect("blocking sos");

        assert_eq!(got.unknown.recovered, expected_unknown.recovered, "client {client} unknown");
        assert_eq!(got.unknown.stats, expected_unknown.stats, "client {client} unknown stats");
        assert_eq!(got.known.recovered, expected_known.recovered, "client {client} known");
        assert_eq!(got.known.stats, expected_known.stats, "client {client} known stats");
        assert_eq!(got.sos.recovered, expected_sos.recovered, "client {client} sos");
        assert_eq!(got.sos.stats, expected_sos.stats, "client {client} sos stats");
    }

    let stats = server.shutdown();
    assert_eq!(stats.served(), CLIENTS as u64, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert_eq!(stats.served_per_worker.len(), WORKERS);
}

#[test]
fn reactor_serves_eight_mixed_family_connections() {
    // Default backend and trigger: edge-triggered epoll on Linux (unless
    // RECON_RUNTIME_FORCE_POLL is set, as in CI's forced-poll leg, where this
    // whole test runs on poll(2)).
    serve_and_verify(None, Trigger::Edge);
}

#[test]
fn reactor_serves_eight_mixed_family_connections_level_triggered() {
    // Same default backend pinned to level-triggered delivery: on Linux this
    // is classic epoll-LT; under the poll fallback it is a no-op distinction
    // (poll(2) is always level-triggered).
    serve_and_verify(None, Trigger::Level);
}

#[test]
fn reactor_serves_eight_mixed_family_connections_on_poll_fallback() {
    serve_and_verify(Some(Backend::Poll), Trigger::Level);
}
