//! Malicious peers against a capped [`Server`]: the per-connection resource
//! caps ([`ServerConfig::max_frame_bytes`], [`ServerConfig::max_sessions_per_conn`])
//! must fail hostile connections with structured errors while the server
//! keeps serving well-behaved clients — a bad peer can cost its own
//! connection, never the worker's memory.

use recon_base::wire::write_uvarint;
use recon_base::ReconError;
use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
use recon_protocol::{ControlFrame, Envelope, Party, Role, Step, CONTROL_SESSION};
use recon_runtime::{
    connect_endpoint, drive_endpoint, ReactorConfig, Server, ServerConfig, TcpEndpoint, TcpService,
};
use recon_set::session::iblt_known_bob;
use recon_store::control::{ReconcileReq, OP_CLOSE, OP_ERROR, OP_RECONCILE};
use recon_store::{MemoryBackend, SketchStore, StoreClient, StoreConfig, StoreDaemon};
use std::collections::{HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One Alice session per connection, fixed payload — enough protocol to prove
/// a clean client is still served.
struct OneSender;

impl TcpService for OneSender {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut TcpEndpoint,
    ) -> Result<(), ReconError> {
        let alice =
            AmplifiedSender::new(4, |attempt| Ok(Envelope::round(1, "digest", &(1000 + attempt))))
                .expect("sender");
        endpoint.register(0, Role::Alice, alice)
    }
}

fn run_clean_client(addr: SocketAddr) -> u64 {
    let mut endpoint = connect_endpoint(addr).expect("connect");
    let bob = AmplifiedReceiver::new(
        4,
        |_, env: Envelope| env.decode_payload::<u64>(),
        |_| true,
        |_| Envelope::control(2, "retry", &()),
        Exhaust::LastError,
    );
    endpoint.register(0, Role::Bob, bob).expect("register");
    let mut recovered = None;
    drive_endpoint(&mut endpoint, &ReactorConfig::default(), |endpoint| {
        match endpoint.take_outcome::<u64>(0) {
            Some(outcome) => {
                recovered = Some(outcome?.recovered);
                Ok(true)
            }
            None => Ok(false),
        }
    })
    .expect("clean client drive");
    recovered.expect("recovered")
}

/// A peer claiming a gigabyte-sized frame is cut off on the *length prefix*
/// alone — the worker never buffers (or even waits for) the claimed body, so
/// the claim costs the attacker their connection and the server nothing.
#[test]
fn oversized_frame_claim_is_rejected_on_its_prefix_alone() {
    let config = ServerConfig::new()
        .workers(1)
        .session_deadline(Some(Duration::from_secs(10)))
        .max_frame_bytes(4096);
    let server = Server::bind("127.0.0.1:0", config, |_| OneSender).expect("bind");
    let addr = server.local_addr();

    let claimed: u64 = 1 << 30;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut prefix = Vec::new();
    write_uvarint(&mut prefix, claimed);
    stream.write_all(&prefix).expect("send length prefix");

    // The server must kill the connection now, without seeing a single body
    // byte. Keep feeding garbage until the kernel reports the reset; the
    // accepted volume is bounded by the in-flight socket buffers, nowhere
    // near the claimed gigabyte.
    let mut accepted = prefix.len() as u64;
    let garbage = [0u8; 64 * 1024];
    loop {
        match stream.write(&garbage) {
            Ok(0) | Err(_) => break,
            Ok(n) => accepted += n as u64,
        }
        assert!(
            accepted < (64 << 20),
            "server kept reading a frame {accepted} bytes into a {claimed}-byte claim"
        );
    }
    drop(stream);

    // The worker that refused the attacker still serves a clean client.
    assert_eq!(run_clean_client(addr), 1000);
    let stats = server.shutdown();
    assert_eq!(stats.served(), 1, "{stats:?}");
    assert!(stats.failed >= 1, "hostile connection must be counted as failed: {stats:?}");
}

/// Control-session client used to flood the daemon with reconcile requests:
/// all requests are pre-queued, responses are collected for inspection. The
/// session finishes once `expected` responses are in — the daemon acks
/// `OP_CLOSE` inline but defers reconcile grants/refusals to its progress
/// hook, so the close ack can legitimately arrive *first*.
struct FloodControl {
    outbox: VecDeque<Envelope>,
    responses: Arc<Mutex<Vec<ControlFrame>>>,
    expected: usize,
}

impl Party for FloodControl {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        let frame = ControlFrame::from_envelope(&envelope)?;
        let mut responses = self.responses.lock().expect("responses lock");
        responses.push(frame);
        if responses.len() >= self.expected {
            Ok(Step::Done(()))
        } else {
            Ok(Step::Continue)
        }
    }
}

/// A client that asks one connection for more concurrent sessions than
/// [`ServerConfig::max_sessions_per_conn`] allows gets a structured per-request
/// error for the excess — the daemon registers nothing beyond the cap, keeps
/// the connection alive, and still serves the request that fit.
#[test]
fn session_flood_is_refused_per_request_and_the_connection_survives() {
    let keys: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    let replica: HashSet<u64> = keys.iter().copied().collect();

    let store = SketchStore::open(MemoryBackend::new(), StoreConfig::default().with_seed(0xCAFE))
        .expect("open store");
    // Room for the control session plus exactly one data session.
    let config = ServerConfig::new().workers(1).session_deadline(None).max_sessions_per_conn(2);
    let daemon = StoreDaemon::bind_with("127.0.0.1:0", store, config).expect("bind daemon");
    let addr = daemon.local_addr();

    // Set the replica up over a well-behaved client connection.
    let mut setup = StoreClient::connect(addr).expect("connect setup");
    let params = setup.open("stock").expect("open");
    setup.insert("stock", &keys).expect("insert");
    setup.close().expect("close setup");

    // The flood: three reconcile requests (sessions 1-3) plus the close, all
    // queued before the first byte moves, so they land in one batch ahead of
    // any session completing.
    let responses = Arc::new(Mutex::new(Vec::new()));
    let mut outbox = VecDeque::new();
    for session in 1..=3u64 {
        let req =
            ReconcileReq { name: "stock".to_string(), session, d_bound: Some(8), estimator: None };
        outbox.push_back(
            ControlFrame::new(session, OP_RECONCILE, &req).request_envelope("control request"),
        );
    }
    outbox.push_back(ControlFrame::new(9, OP_CLOSE, &()).request_envelope("control request"));

    let mut endpoint = connect_endpoint(addr).expect("connect flood");
    endpoint
        .register(
            CONTROL_SESSION,
            Role::Bob,
            FloodControl { outbox, responses: Arc::clone(&responses), expected: 4 },
        )
        .expect("register control");
    let session_config = params.session_config();
    for session in 1..=3u64 {
        endpoint
            .register(session, Role::Bob, iblt_known_bob(&replica, &session_config))
            .expect("register bob");
    }

    // Phase 1: drive until every control response (including the close) is in.
    let watch = Arc::clone(&responses);
    drive_endpoint(&mut endpoint, &ReactorConfig::default(), |endpoint| {
        let _ = endpoint.take_outcome::<()>(CONTROL_SESSION);
        Ok(watch.lock().expect("responses lock").len() >= 4)
    })
    .expect("drive flood");

    let responses = responses.lock().expect("responses lock");
    let granted: Vec<u64> =
        responses.iter().filter(|f| f.op == OP_RECONCILE).map(|f| f.request_id).collect();
    let refused: Vec<u64> =
        responses.iter().filter(|f| f.op == OP_ERROR).map(|f| f.request_id).collect();
    assert_eq!(granted, vec![1], "exactly the request that fit under the cap is served");
    assert_eq!(refused, vec![2, 3], "the excess requests fail individually");
    drop(responses);

    // Phase 2: retire the refused sessions locally, then finish the granted
    // one — the connection survived the flood.
    for &session in &refused {
        let _ = endpoint.close(session);
    }
    let mut recovered = None;
    drive_endpoint(&mut endpoint, &ReactorConfig::default(), |endpoint| {
        if recovered.is_none() {
            if let Some(outcome) = endpoint.take_outcome::<HashSet<u64>>(granted[0]) {
                recovered = Some(outcome?.recovered);
            }
        }
        Ok(recovered.is_some() && !endpoint.is_write_blocked())
    })
    .expect("drive granted session");
    assert_eq!(recovered.expect("granted session outcome"), replica);
    drop(endpoint);

    let (stats, _) = daemon.shutdown();
    assert_eq!(stats.failed, 0, "cap refusals must not fail connections: {stats:?}");
}
