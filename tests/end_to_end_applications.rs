//! Cross-crate integration tests for the application substrates (database and
//! document collections), including property-based tests over random workloads.

use proptest::prelude::*;
use recon_apps::database::{BinaryTable, SosProtocolKind};
use recon_apps::documents::{reconcile_collections, shingles, Collection};
use recon_base::rng::Xoshiro256;
use recon_protocol::Outcome;

#[test]
fn database_sync_end_to_end_for_every_protocol() {
    let mut rng = Xoshiro256::new(1);
    let alice = BinaryTable::random(256, 96, 0.5, &mut rng);
    let bob = alice.flip_bits(10, &mut rng);
    for kind in [
        SosProtocolKind::Naive,
        SosProtocolKind::IbltOfIblts,
        SosProtocolKind::Cascading,
        SosProtocolKind::MultiRound,
    ] {
        let Outcome { recovered, stats } =
            bob.reconcile_from(&alice, 10, kind, 9).expect("reconcile");
        assert_eq!(recovered, alice, "{kind:?}");
        assert!(stats.total_bytes() > 0);
    }
}

#[test]
fn database_sync_with_row_insertions_and_deletions() {
    // Whole-row changes are just "all bits of that row flipped".
    let mut rng = Xoshiro256::new(2);
    let alice = BinaryTable::random(128, 64, 0.4, &mut rng);
    let mut bob_rows = alice.as_set_of_sets().clone();
    let removed = bob_rows.children()[3].clone();
    bob_rows.remove(&removed);
    let bob = BinaryTable::from_set_of_sets(64, bob_rows).unwrap();
    let d = removed.len() + 2;
    let recovered =
        bob.reconcile_from(&alice, d, SosProtocolKind::Cascading, 11).expect("reconcile").recovered;
    assert_eq!(recovered, alice);
}

#[test]
fn document_collections_classify_remote_documents() {
    let mut local = Collection::new(2, 5);
    local.add_document("alpha beta gamma delta epsilon zeta");
    local.add_document("one two three four five six seven");
    let mut remote = Collection::new(2, 5);
    remote.add_document("alpha beta gamma delta epsilon zeta");
    remote.add_document("one two three four five six eight");
    remote.add_document("completely unrelated text about databases and graphs");
    let report = reconcile_collections(&remote, &local, 40, 6, 3).expect("collections").recovered;
    assert_eq!(report.exact_duplicates, 1);
    assert_eq!(report.near_duplicates.len(), 1);
    assert_eq!(report.fresh_documents.len(), 1);
}

#[test]
fn shingles_similarity_tracks_edit_size() {
    let original = "the quick brown fox jumps over the lazy dog and runs far away";
    let one_edit = "the quick brown fox jumps over the sleepy dog and runs far away";
    let rewrite = "completely different sentence with no shared phrases whatsoever here";
    let s0 = shingles(original, 3, 1);
    let s1 = shingles(one_edit, 3, 1);
    let s2 = shingles(rewrite, 3, 1);
    let d01 = s0.symmetric_difference(&s1).count();
    let d02 = s0.symmetric_difference(&s2).count();
    assert!(d01 <= 6, "one word edit changes at most k=3 shingles per side, got {d01}");
    assert!(d02 > d01);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized end-to-end property: for any random table and any small number of
    /// bit flips, the cascading protocol recovers Alice's table exactly.
    #[test]
    fn database_reconciliation_roundtrips(
        rows in 16usize..64,
        cols in 16u32..64,
        d in 0usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::new(seed);
        let alice = BinaryTable::random(rows, cols, 0.5, &mut rng);
        let bob = alice.flip_bits(d, &mut rng);
        let Outcome { recovered, stats } = bob
            .reconcile_from(&alice, d.max(1), SosProtocolKind::Cascading, seed ^ 1)
            .expect("reconcile");
        prop_assert_eq!(recovered, alice);
        prop_assert!(stats.rounds >= 1);
    }

    /// The measured bit difference never exceeds the number of applied flips.
    #[test]
    fn flip_bits_respects_the_budget(
        rows in 8usize..40,
        cols in 8u32..48,
        d in 0usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::new(seed);
        let alice = BinaryTable::random(rows, cols, 0.5, &mut rng);
        let bob = alice.flip_bits(d, &mut rng);
        prop_assert!(alice.bit_difference(&bob) <= d);
    }
}
