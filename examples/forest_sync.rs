//! Reconcile two rooted forests that differ by a few edge updates (Theorem 6.1).
//!
//! Run with: `cargo run -p recon-examples --release --example forest_sync`

use recon_base::rng::Xoshiro256;
use recon_graph::forest::{self, Forest};
use recon_protocol::Outcome;

fn main() {
    let mut rng = Xoshiro256::new(3);
    let n = 5_000;
    let sigma = 8;
    let base = Forest::random(n, 0.08, sigma, &mut rng);
    let alice = base.perturb(3, &mut rng);
    let bob = base.perturb(3, &mut rng);
    let d = 6;

    println!(
        "forests on {n} vertices: Alice has {} trees (max depth {}), Bob has {} trees (max depth {})",
        alice.roots().len(),
        alice.max_depth(),
        bob.roots().len(),
        bob.max_depth()
    );

    let sigma_bound = alice.max_depth().max(bob.max_depth()).max(1);
    let Outcome { recovered, stats } =
        forest::reconcile(&alice, &bob, d, sigma_bound, 17).expect("forest reconciliation");

    println!("communication: {stats}");
    println!("recovered forest is isomorphic to Alice's: {}", recovered.is_isomorphic(&alice, 17));
    println!(
        "note: the transmitted bytes depend on d·σ but not on n — the same reconciliation of a \
         forest 100× larger costs the same, whereas re-sending all parent pointers (~{} bytes \
         here) grows linearly with n.",
        n * 4
    );
}
