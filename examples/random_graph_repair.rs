//! Repair Bob's copy of an unlabeled random graph so it matches Alice's, using both
//! signature schemes of Section 5.
//!
//! Run with: `cargo run -p recon-examples --release --example random_graph_repair`

use recon_base::rng::Xoshiro256;
use recon_graph::degree_neighborhood::{self, DegreeNeighborhoodParams};
use recon_graph::degree_order::{self, DegreeOrderParams};
use recon_graph::Graph;
use recon_protocol::Outcome;

fn main() {
    // --- Degree-ordering scheme on a dense-ish graph (Theorem 5.2). ---------------
    let mut rng = Xoshiro256::new(7);
    let n = 256;
    let base = Graph::gnp(n, 0.35, &mut rng);
    let alice = base.perturb(2, &mut rng);
    let bob = base.perturb(2, &mut rng);
    let d = 4;
    println!(
        "G(n={n}, p=0.35): Alice has {} edges, Bob has {}, ≤ {d} edge changes apart",
        alice.num_edges(),
        bob.num_edges()
    );
    let params = DegreeOrderParams { h: 48, seed: 11 };
    match degree_order::reconcile(&alice, &bob, d, &params) {
        Ok(Outcome { recovered, stats }) => {
            println!(
                "degree-ordering scheme: recovered a graph with {} edges using {stats}",
                recovered.num_edges()
            );
        }
        Err(e) => println!(
            "degree-ordering scheme: detected failure ({e}); at this small n the graph is often \
             not (h, d+1, 2d+1)-separated — Theorem 5.3 needs larger n"
        ),
    }

    // --- Degree-neighborhood scheme on a sparser graph (Theorem 5.6). --------------
    let n = 192;
    let p = 0.12;
    let base = Graph::gnp(n, p, &mut rng);
    let alice = base.perturb(1, &mut rng);
    let bob = base.perturb(1, &mut rng);
    println!(
        "\nG(n={n}, p={p}): Alice has {} edges, Bob has {}, ≤ 2 edge changes apart",
        alice.num_edges(),
        bob.num_edges()
    );
    let params = DegreeNeighborhoodParams::for_gnp(n, p, 13);
    match degree_neighborhood::reconcile(&alice, &bob, 2, &params) {
        Ok(Outcome { recovered, stats }) => {
            println!(
                "degree-neighborhood scheme: recovered a graph with {} edges using {stats}",
                recovered.num_edges()
            );
        }
        Err(e) => println!("degree-neighborhood scheme: detected failure ({e})"),
    }
}
