//! Synchronize two binary relational databases whose rows are unlabeled.
//!
//! Run with: `cargo run -p recon-examples --release --example database_sync`
//!
//! This is the Table 1 workload of the paper: `s` rows over `u` columns with the
//! data dense in 1s (`h = Θ(u)`, `n = Θ(su)`), and a total of `d` flipped bits.
//! The example compares all four set-of-sets protocols against the cost of simply
//! re-sending the whole table.

use recon_apps::database::{BinaryTable, SosProtocolKind};
use recon_base::rng::Xoshiro256;
use recon_protocol::Outcome;

fn main() {
    let (s, u, d) = (512usize, 128u32, 8usize);
    let mut rng = Xoshiro256::new(99);
    let alice = BinaryTable::random(s, u, 0.5, &mut rng);
    let bob = alice.flip_bits(d, &mut rng);
    println!(
        "database: {} rows × {} columns, {} one-bits, {} flipped bits, full transfer = {} bytes",
        alice.num_rows(),
        alice.num_columns(),
        alice.num_ones(),
        alice.bit_difference(&bob),
        alice.full_transfer_bytes()
    );

    println!(
        "\n{:<28} {:>12} {:>8} {:>10} {:>18}",
        "protocol", "bytes", "rounds", "correct", "vs full transfer"
    );
    for (name, kind) in [
        ("naive (Thm 3.3)", SosProtocolKind::Naive),
        ("IBLT of IBLTs (Thm 3.5)", SosProtocolKind::IbltOfIblts),
        ("cascading (Thm 3.7)", SosProtocolKind::Cascading),
        ("multi-round (Thm 3.9)", SosProtocolKind::MultiRound),
    ] {
        let Outcome { recovered, stats } = bob.reconcile_from(&alice, d, kind, 7).expect(name);
        println!(
            "{:<28} {:>12} {:>8} {:>10} {:>17.2}x",
            name,
            stats.total_bytes(),
            stats.rounds,
            recovered == alice,
            alice.full_transfer_bytes() as f64 / stats.total_bytes() as f64
        );
    }
}
