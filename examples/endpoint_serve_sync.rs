//! A reconciliation *server*: sharded database sync over non-blocking TCP,
//! served by the readiness-driven reactor runtime (`recon-runtime`).
//!
//! Run self-driving (a 2-worker reactor server plus 8 concurrent clients over
//! loopback sockets — every one verified against the blocking driver):
//!
//! ```text
//! cargo run -p recon-examples --release --example endpoint_serve_sync
//! ```
//!
//! Or as real processes:
//!
//! ```text
//! cargo run -p recon-examples --release --example endpoint_serve_sync -- --serve 127.0.0.1:7171 8
//! cargo run -p recon-examples --release --example endpoint_serve_sync -- --sync  127.0.0.1:7171 3
//! ```
//!
//! The server holds the authoritative [`BinaryTable`] (the paper's Section 3.5
//! binary-row database); each client holds a replica with `D` bits flipped
//! under its own seed. A shared [`ShardedRunner`] splits the rows into
//! `SHARDS` deterministic shards, each shard becomes one naive set-of-sets
//! session, and one `Endpoint` per connection multiplexes all of them.
//!
//! Where the PR-2 version hand-pumped a single connection with
//! `std::thread::sleep` backoff, the server is now a [`Server`]: a
//! non-blocking listener balancing accepted connections across two worker
//! [`Reactor`]s (least-loaded-of-two-choices), each driving its endpoints
//! purely off epoll/`poll(2)` readiness — idle connections cost nothing, and
//! the process serves any number of concurrent clients. Clients run the same
//! machinery single-connection via [`drive_endpoint`]. Set
//! `RECON_RUNTIME_FORCE_POLL=1` to exercise the portable `poll(2)` backend.
//!
//! The pre-reactor blocking path is kept for comparison as `--serve-blocking`
//! / `--sync-blocking` (single connection, sleep-backoff polling).
//!
//! [`Server`]: recon_runtime::Server
//! [`Reactor`]: recon_runtime::Reactor
//! [`drive_endpoint`]: recon_runtime::drive_endpoint

use recon_apps::BinaryTable;
use recon_base::rng::Xoshiro256;
use recon_base::{CommStats, ReconError};
use recon_protocol::{
    Amplification, Endpoint, Outcome, Role, SessionBuilder, SessionId, ShardedRunner,
    StreamTransport, Transport,
};
use recon_runtime::{drive_endpoint, ConnId, ReactorConfig, Server, ServerConfig, TcpService};
use recon_sos::{session as sos_session, sharded, SetOfSets, SosParams};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

const SHARED_SEED: u64 = 0x005E_EDDB;
const SHARDS: usize = 6;
const ROWS: usize = 96;
const COLUMNS: u32 = 32;
const D: usize = 6;
const CLIENTS: usize = 8;
const WORKERS: usize = 2;

/// Every shard reconciles under the always-safe bound of `2D` differing rows.
const PER_SHARD_ROWS: usize = 2 * D;

/// The authoritative table every replica drifted from.
fn server_table() -> BinaryTable {
    let mut rng = Xoshiro256::new(SHARED_SEED);
    BinaryTable::random(ROWS, COLUMNS, 0.5, &mut rng)
}

/// Client `client`'s replica: the server table with `D` bits flipped under a
/// per-client seed, so the 8 concurrent connections all reconcile different
/// differences against the same authority.
fn client_table(client: u64) -> BinaryTable {
    let mut rng = Xoshiro256::new(SHARED_SEED ^ (0xC11E_4700 + client));
    server_table().flip_bits(D, &mut rng)
}

fn runner() -> ShardedRunner {
    ShardedRunner::new(SHARDS, SHARED_SEED ^ 0x5A)
}

/// Per-shard session ingredients shared by both roles.
fn shard_setup(table: &BinaryTable) -> (Vec<SetOfSets>, Vec<SosParams>) {
    let runner = runner();
    let shards = sharded::shard_set_of_sets(table.as_set_of_sets(), &runner);
    let params = (0..runner.num_shards())
        .map(|s| SosParams::new(runner.shard_seed(s), COLUMNS as usize))
        .collect();
    (shards, params)
}

fn alice_party(
    shards: &[SetOfSets],
    params: &[SosParams],
    shard: usize,
) -> impl recon_protocol::Party<Output = ()> + 'static {
    sos_session::naive_known_alice(
        &shards[shard],
        PER_SHARD_ROWS,
        &params[shard],
        Amplification::replicate(4),
    )
    .expect("alice party")
}

fn bob_party(
    shards: &[SetOfSets],
    params: &[SosParams],
    shard: usize,
) -> impl recon_protocol::Party<Output = SetOfSets> + 'static {
    sos_session::naive_known_bob(&shards[shard], &params[shard], Amplification::replicate(4))
}

fn nonblocking_transport(stream: TcpStream) -> StreamTransport<TcpStream, TcpStream> {
    stream.set_nonblocking(true).expect("set_nonblocking");
    let reader = stream.try_clone().expect("clone stream");
    StreamTransport::new(reader, stream)
}

fn reactor_config() -> ReactorConfig {
    ReactorConfig { session_deadline: Some(Duration::from_secs(60)), ..ReactorConfig::default() }
}

// ---------------------------------------------------------------------------
// Reactor path
// ---------------------------------------------------------------------------

/// The server side of every connection: `SHARDS` Alice sessions built from the
/// authoritative table. One instance per worker reactor.
struct ShardSyncService {
    shards: Vec<SetOfSets>,
    params: Vec<SosParams>,
    worker: usize,
    done: mpsc::Sender<bool>,
}

impl TcpService for ShardSyncService {
    fn register(
        &mut self,
        _peer: std::net::SocketAddr,
        endpoint: &mut recon_runtime::TcpEndpoint,
    ) -> Result<(), ReconError> {
        for shard in 0..SHARDS {
            endpoint.register(
                shard as SessionId,
                Role::Alice,
                alice_party(&self.shards, &self.params, shard),
            )?;
        }
        Ok(())
    }

    // on_progress: the default close-all-finished harvest is exactly right
    // for an Alice side whose parties produce no output.

    fn on_closed(
        &mut self,
        conn: ConnId,
        endpoint: &recon_runtime::TcpEndpoint,
        result: &Result<(), ReconError>,
    ) {
        match result {
            Ok(()) => eprintln!(
                "[serve] worker {} closed conn {:#x} cleanly ({} framed bytes out)",
                self.worker,
                conn,
                endpoint.transport().bytes_framed_out()
            ),
            Err(e) => eprintln!("[serve] worker {} conn {conn:#x} failed: {e}", self.worker),
        }
        let _ = self.done.send(result.is_ok());
    }
}

/// Start the 2-worker reactor server; returns it plus a channel that yields
/// one message per retired connection.
fn start_server(address: &str) -> (Server, mpsc::Receiver<bool>) {
    let (done_tx, done_rx) = mpsc::channel();
    let (shards, params) = shard_setup(&server_table());
    let config =
        ServerConfig::new().workers(WORKERS).session_deadline(Some(Duration::from_secs(60)));
    let server = Server::bind(address, config, |worker| ShardSyncService {
        shards: shards.clone(),
        params: params.clone(),
        worker,
        done: done_tx.clone(),
    })
    .expect("bind reactor server");
    (server, done_rx)
}

/// Serve `conns` connections on the reactor, then shut down.
fn serve_reactor(address: &str, conns: usize) {
    let (server, done) = start_server(address);
    eprintln!(
        "[serve] reactor server on {} ({WORKERS} workers, waiting for {conns} connections)",
        server.local_addr()
    );
    let mut clean = 0;
    for _ in 0..conns {
        if done.recv().expect("server alive") {
            clean += 1;
        }
    }
    let stats = server.shutdown();
    eprintln!(
        "[serve] done: {clean}/{conns} clean; per-worker {:?}, {} failed",
        stats.served_per_worker, stats.failed
    );
    assert_eq!(clean, conns, "every connection must close cleanly");
}

/// One reactor client: reconcile every shard concurrently over one connection
/// driven by readiness events, then verify outcome and stats against the
/// blocking driver.
fn sync_reactor(address: &str, client: u64) -> Vec<CommStats> {
    let mut endpoint =
        recon_runtime::connect_endpoint(address).expect("connect (is --serve running?)");
    let table = client_table(client);
    let (shards, params) = shard_setup(&table);
    for shard in 0..SHARDS {
        endpoint
            .register(shard as SessionId, Role::Bob, bob_party(&shards, &params, shard))
            .expect("register");
    }

    let mut recovered_shards: Vec<Option<Outcome<SetOfSets>>> = (0..SHARDS).map(|_| None).collect();
    drive_endpoint(&mut endpoint, &reactor_config(), |endpoint| {
        for (shard, slot) in recovered_shards.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(outcome) = endpoint.take_outcome::<SetOfSets>(shard as SessionId) {
                    *slot = Some(outcome?);
                }
            }
        }
        Ok(recovered_shards.iter().all(Option::is_some))
    })
    .expect("reactor client");

    let outcomes: Vec<_> = recovered_shards.into_iter().map(Option::unwrap).collect();

    // The reassembled table must be the authority...
    let children =
        outcomes.iter().flat_map(|o| o.recovered.children().to_vec()).collect::<Vec<_>>();
    let recovered =
        BinaryTable::from_set_of_sets(COLUMNS, SetOfSets::from_children(children)).expect("table");
    assert_eq!(recovered, server_table(), "client {client} must recover the server's table");

    // ...and every shard's outcome and CommStats must be byte-identical to the
    // blocking driver running the very same party pair.
    let (server_shards, server_params) = shard_setup(&server_table());
    for (shard, outcome) in outcomes.iter().enumerate() {
        let blocking = SessionBuilder::new(0)
            .run(
                alice_party(&server_shards, &server_params, shard),
                bob_party(&shards, &params, shard),
            )
            .expect("blocking path");
        assert_eq!(outcome.recovered, blocking.recovered, "client {client} shard {shard}");
        assert_eq!(outcome.stats, blocking.stats, "client {client} shard {shard} stats");
    }
    outcomes.into_iter().map(|o| o.stats).collect()
}

/// Self-driving reactor mode: one server, `CLIENTS` concurrent clients.
fn self_drive() {
    let (server, done) = start_server("127.0.0.1:0");
    let address = server.local_addr().to_string();
    eprintln!("[self] reactor server on {address} ({WORKERS} workers)");

    let clients: Vec<_> = (0..CLIENTS as u64)
        .map(|client| {
            let address = address.clone();
            std::thread::spawn(move || sync_reactor(&address, client))
        })
        .collect();
    let mut merged = Vec::new();
    for (client, handle) in clients.into_iter().enumerate() {
        let per_shard = handle.join().expect("client thread");
        let stats = ShardedRunner::merge_stats(&per_shard);
        println!("client {client}: {stats}");
        merged.push(stats);
    }
    for _ in 0..CLIENTS {
        assert!(done.recv().expect("server alive"), "a connection closed uncleanly");
    }
    let stats = server.shutdown();
    assert_eq!(stats.served(), CLIENTS as u64, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    println!(
        "synced {CLIENTS} concurrent clients x {SHARDS} shard sessions ({ROWS}x{COLUMNS} table, \
         {D} flipped bits each) on {WORKERS} worker reactors; per-worker connections {:?}; \
         every outcome and CommStats byte-identical to the blocking driver",
        stats.served_per_worker
    );
}

// ---------------------------------------------------------------------------
// Blocking comparison path (the pre-reactor PR-2 implementation)
// ---------------------------------------------------------------------------

/// Both sides of the blocking path derive the demo tables from the shared
/// seed, exactly as before the reactor port.
fn blocking_tables() -> (BinaryTable, BinaryTable) {
    let mut rng = Xoshiro256::new(SHARED_SEED);
    let server = BinaryTable::random(ROWS, COLUMNS, 0.5, &mut rng);
    let client = server.flip_bits(D, &mut rng);
    (server, client)
}

/// The blocking server: accept one client and hand-pump every shard session
/// with sleep backoff until the client has retired them all.
fn serve_blocking(listener: TcpListener) {
    let (server_table, _) = blocking_tables();
    let (stream, peer) = listener.accept().expect("accept client");
    eprintln!("[serve-blocking] client connected from {peer}");
    let mut endpoint = Endpoint::new(nonblocking_transport(stream));

    let (shards, params) = shard_setup(&server_table);
    for shard in 0..SHARDS {
        endpoint
            .register(shard as SessionId, Role::Alice, alice_party(&shards, &params, shard))
            .expect("register");
    }

    while endpoint.registered_sessions() > 0 {
        let progressed = match endpoint.poll() {
            Ok(progressed) => progressed,
            // The client disconnects as soon as its recoveries are complete;
            // anything after that is expected shutdown skew.
            Err(e) => {
                let all_finished =
                    (0..SHARDS as SessionId).all(|id| endpoint.is_finished(id) != Some(false));
                assert!(all_finished, "client failed mid-sync: {e}");
                true
            }
        };
        for id in 0..SHARDS as SessionId {
            if endpoint.is_finished(id) == Some(true) {
                let stats = endpoint.close(id).expect("registered");
                eprintln!("[serve-blocking] shard {id} served: {stats}");
            }
        }
        if endpoint.registered_sessions() > 0 && !progressed {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    eprintln!("[serve-blocking] all {SHARDS} shard sessions served over one connection");
}

/// The blocking client: sleep-backoff polling, single connection.
fn sync_blocking(address: &str) {
    let stream = TcpStream::connect(address).expect("connect (is --serve-blocking running?)");
    let (server_table, client_table) = blocking_tables();
    let mut endpoint = Endpoint::new(nonblocking_transport(stream));

    let (shards, params) = shard_setup(&client_table);
    for shard in 0..SHARDS {
        endpoint
            .register(shard as SessionId, Role::Bob, bob_party(&shards, &params, shard))
            .expect("register");
    }

    let mut recovered_shards: Vec<Option<Outcome<SetOfSets>>> = (0..SHARDS).map(|_| None).collect();
    while recovered_shards.iter().any(Option::is_none) {
        let progressed = endpoint.poll().expect("sync poll");
        for (shard, slot) in recovered_shards.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(outcome) = endpoint.take_outcome::<SetOfSets>(shard as SessionId) {
                    *slot = Some(outcome.expect("shard session"));
                }
            }
        }
        if recovered_shards.iter().any(Option::is_none) && !progressed {
            assert!(!endpoint.transport().is_closed(), "server closed mid-sync");
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let _ = endpoint.transport_mut().flush();

    let outcomes: Vec<_> = recovered_shards.into_iter().map(Option::unwrap).collect();
    let per_shard: Vec<_> = outcomes.iter().map(|o| o.stats).collect();
    let merged = ShardedRunner::merge_stats(&per_shard);
    let children =
        outcomes.into_iter().flat_map(|o| o.recovered.children().to_vec()).collect::<Vec<_>>();
    let recovered =
        BinaryTable::from_set_of_sets(COLUMNS, SetOfSets::from_children(children)).expect("table");
    assert_eq!(recovered, server_table, "client must recover the server's table exactly");

    let framed = endpoint.transport().bytes_framed_out() + endpoint.transport().bytes_framed_in();
    println!(
        "blocking path: synced {ROWS}x{COLUMNS} table ({D} flipped bits) in {SHARDS} shard \
         sessions; merged {merged}; {framed} framed bytes on the wire"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--serve") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            let conns = args.get(3).and_then(|n| n.parse().ok()).unwrap_or(1);
            serve_reactor(address, conns);
        }
        Some("--sync") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            let client = args.get(3).and_then(|n| n.parse().ok()).unwrap_or(0);
            let per_shard = sync_reactor(address, client);
            println!("client {client}: {}", ShardedRunner::merge_stats(&per_shard));
        }
        Some("--serve-blocking") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            serve_blocking(TcpListener::bind(address).expect("bind"));
        }
        Some("--sync-blocking") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            sync_blocking(address);
        }
        _ => self_drive(),
    }
}
