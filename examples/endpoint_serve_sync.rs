//! A reconciliation *server*: sharded database sync over non-blocking TCP.
//!
//! Run self-driving (server thread + client over a loopback socket):
//!
//! ```text
//! cargo run -p recon-examples --release --example endpoint_serve_sync
//! ```
//!
//! Or as two real processes:
//!
//! ```text
//! cargo run -p recon-examples --release --example endpoint_serve_sync -- --serve 127.0.0.1:7171
//! cargo run -p recon-examples --release --example endpoint_serve_sync -- --sync  127.0.0.1:7171
//! ```
//!
//! The server holds the authoritative [`BinaryTable`] (the paper's Section 3.5
//! binary-row database); the client holds a replica with `D` flipped bits. A
//! shared [`ShardedRunner`] splits the rows into `SHARDS` deterministic shards,
//! each shard becomes one naive set-of-sets session, and a single
//! [`Endpoint`] per side multiplexes all of them over one TCP connection in
//! non-blocking mode ([`StreamTransport`]) — connection setup and framing are
//! paid once, not per shard. The client reassembles the server's table from
//! the per-shard recoveries and reports both the per-shard and the merged
//! communication next to the full-transfer baseline.
//!
//! [`Endpoint`]: recon_protocol::Endpoint
//! [`StreamTransport`]: recon_protocol::StreamTransport

use recon_apps::BinaryTable;
use recon_base::rng::Xoshiro256;
use recon_protocol::{
    Amplification, Endpoint, Role, SessionId, ShardedRunner, StreamTransport, Transport,
};
use recon_sos::{session as sos_session, sharded, SetOfSets, SosParams};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const SHARED_SEED: u64 = 0x005E_EDDB;
const SHARDS: usize = 6;
const ROWS: usize = 96;
const COLUMNS: u32 = 32;
const D: usize = 6;

/// Both sides derive the demo tables from the shared seed; in a real
/// deployment each side would load its own replica instead.
fn tables() -> (BinaryTable, BinaryTable) {
    let mut rng = Xoshiro256::new(SHARED_SEED);
    let server = BinaryTable::random(ROWS, COLUMNS, 0.5, &mut rng);
    let client = server.flip_bits(D, &mut rng);
    (server, client)
}

fn runner() -> ShardedRunner {
    ShardedRunner::new(SHARDS, SHARED_SEED ^ 0x5A)
}

/// Per-shard session ingredients shared by both roles.
fn shard_setup(table: &BinaryTable) -> (Vec<SetOfSets>, Vec<SosParams>) {
    let runner = runner();
    let shards = sharded::shard_set_of_sets(table.as_set_of_sets(), &runner);
    let params = (0..runner.num_shards())
        .map(|s| SosParams::new(runner.shard_seed(s), COLUMNS as usize))
        .collect();
    (shards, params)
}

/// Every shard reconciles under the always-safe bound of `2D` differing rows.
const PER_SHARD_ROWS: usize = 2 * D;

fn nonblocking_transport(stream: TcpStream) -> StreamTransport<TcpStream, TcpStream> {
    stream.set_nonblocking(true).expect("set_nonblocking");
    let reader = stream.try_clone().expect("clone stream");
    StreamTransport::new(reader, stream)
}

/// The server: accept one client and serve every shard session until the
/// client has retired them all.
fn serve(listener: TcpListener) {
    let (server_table, _) = tables();
    let (stream, peer) = listener.accept().expect("accept client");
    eprintln!("[serve] client connected from {peer}");
    let mut endpoint = Endpoint::new(nonblocking_transport(stream));

    let (shards, params) = shard_setup(&server_table);
    for (shard, (sos, shard_params)) in shards.iter().zip(&params).enumerate() {
        let alice = sos_session::naive_known_alice(
            sos,
            PER_SHARD_ROWS,
            shard_params,
            Amplification::replicate(4),
        )
        .expect("alice party");
        endpoint.register(shard as SessionId, Role::Alice, alice).expect("register");
    }

    while endpoint.registered_sessions() > 0 {
        let progressed = match endpoint.poll() {
            Ok(progressed) => progressed,
            // The client disconnects as soon as its recoveries are complete;
            // anything after that is expected shutdown skew.
            Err(e) => {
                let all_finished =
                    (0..SHARDS as SessionId).all(|id| endpoint.is_finished(id) != Some(false));
                assert!(all_finished, "client failed mid-sync: {e}");
                true
            }
        };
        for id in 0..SHARDS as SessionId {
            if endpoint.is_finished(id) == Some(true) {
                let stats = endpoint.close(id).expect("registered");
                eprintln!("[serve] shard {id} served: {stats}");
            }
        }
        if endpoint.registered_sessions() > 0 && !progressed {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    eprintln!("[serve] all {SHARDS} shard sessions served over one connection");
}

/// The client: reconcile every shard concurrently and reassemble the server's
/// table from the recoveries.
fn sync(address: &str) {
    let stream = connect_with_retry(address);
    let (server_table, client_table) = tables();
    let mut endpoint = Endpoint::new(nonblocking_transport(stream));

    let (shards, params) = shard_setup(&client_table);
    for (shard, (sos, shard_params)) in shards.iter().zip(&params).enumerate() {
        let bob = sos_session::naive_known_bob(sos, shard_params, Amplification::replicate(4));
        endpoint.register(shard as SessionId, Role::Bob, bob).expect("register");
    }

    let mut recovered_shards: Vec<Option<recon_protocol::Outcome<SetOfSets>>> =
        (0..SHARDS).map(|_| None).collect();
    while recovered_shards.iter().any(Option::is_none) {
        let progressed = endpoint.poll().expect("sync poll");
        for (shard, slot) in recovered_shards.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(outcome) = endpoint.take_outcome::<SetOfSets>(shard as SessionId) {
                    *slot = Some(outcome.expect("shard session"));
                }
            }
        }
        if recovered_shards.iter().any(Option::is_none) && !progressed {
            assert!(!endpoint.transport().is_closed(), "server closed mid-sync");
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let _ = endpoint.transport_mut().flush();

    let outcomes: Vec<_> = recovered_shards.into_iter().map(Option::unwrap).collect();
    let per_shard: Vec<_> = outcomes.iter().map(|o| o.stats).collect();
    let merged = ShardedRunner::merge_stats(&per_shard);
    let children =
        outcomes.into_iter().flat_map(|o| o.recovered.children().to_vec()).collect::<Vec<_>>();
    let recovered =
        BinaryTable::from_set_of_sets(COLUMNS, SetOfSets::from_children(children)).expect("table");
    assert_eq!(recovered, server_table, "client must recover the server's table exactly");

    let framed = endpoint.transport().bytes_framed_out() + endpoint.transport().bytes_framed_in();
    println!(
        "synced {ROWS}x{COLUMNS} table ({D} flipped bits) in {SHARDS} concurrent shard \
         sessions over one TCP connection"
    );
    for (shard, stats) in per_shard.iter().enumerate() {
        println!("  shard {shard}: {stats}");
    }
    let overhead = framed.saturating_sub(merged.total_bytes() as u64);
    println!(
        "  merged: {merged}; {framed} framed bytes on the wire \
         ({overhead} bytes of framing for all {SHARDS} sessions on one connection)"
    );
}

fn connect_with_retry(address: &str) -> TcpStream {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(address) {
            Ok(stream) => return stream,
            Err(e) => {
                assert!(std::time::Instant::now() < deadline, "cannot reach {address}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--serve") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            serve(TcpListener::bind(address).expect("bind"));
        }
        Some("--sync") => {
            let address = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            sync(address);
        }
        _ => {
            // Self-driving: server thread + client over a loopback socket.
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let address = listener.local_addr().expect("local addr").to_string();
            let server = std::thread::spawn(move || serve(listener));
            sync(&address);
            server.join().expect("server thread");
        }
    }
}
