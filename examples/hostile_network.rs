//! Surviving a hostile network: seeded fault injection, checked frames, and
//! retry-until-reconciled.
//!
//! Run with: `cargo run -p recon-examples --release --example hostile_network`
//!
//! Two endpoints reconcile a set difference through a [`FaultyTransport`]
//! that drops frames, duplicates them, flips bits, and reorders deliveries —
//! all driven by a **fixed seed**, so every run of this example meets exactly
//! the same mishaps. Both sides negotiate the keyed checksum trailer
//! ([`Endpoint::offer_integrity`]), so a flipped bit surfaces as a structured
//! [`ReconError::ChecksumMismatch`] instead of silent corruption, and a
//! [`RetryPolicy`] re-runs failed attempts under fresh fault seeds until the
//! reconciliation lands. Retry decisions go through
//! [`ReconError::is_retryable`] exclusively — no error-message matching.

use recon_base::rng::split_seed;
use recon_base::{ReconError, RetryPolicy};
use recon_protocol::{
    drive_pair, Amplification, Endpoint, FaultProfile, FaultyTransport, MemoryTransport, Role,
    SessionBuilder, Transport,
};
use recon_set::session;
use std::collections::HashSet;
use std::time::Duration;

const SHARED_SEED: u64 = 0xBAD_5EA;
const INTEGRITY_KEY: u64 = 0x0C1E_0C1E;

fn alice_set() -> HashSet<u64> {
    (0..1_000u64).map(|x| x * 7 + 1).collect()
}

fn bob_set() -> HashSet<u64> {
    // Bob is missing 8 of Alice's elements and has 8 extras of his own.
    let mut set: HashSet<u64> = alice_set().into_iter().filter(|x| x % 125 != 3).collect();
    set.extend((0..8u64).map(|x| 1_000_000 + x));
    set
}

fn main() {
    // A genuinely nasty profile: 10% drops, 5% duplicates, 10% bit flips,
    // 20% cross-session reorders, one tick of latency on everything.
    let profile = FaultProfile {
        drop: 0.10,
        duplicate: 0.05,
        bit_flip: 0.10,
        reorder: 0.20,
        latency_ticks: 1,
        ..FaultProfile::clean(SHARED_SEED)
    };
    let policy = RetryPolicy::with_attempts(16).backoff(Duration::ZERO);
    let builder = SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(4));

    println!("profile: {profile:?}");

    let mut wire_bytes = 0u64;
    let mut faults = 0u64;
    let (recovered, attempts) = recon_base::run_with_retry(&policy, |attempt| {
        // Each attempt gets a fresh connection under a fresh fault seed — the
        // same seed would meet the same mishaps and fail the same way forever.
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(FaultyTransport::new(
            ta,
            profile.with_seed(split_seed(SHARED_SEED, 2 * u64::from(attempt))),
        ));
        let mut bob_end = Endpoint::new(FaultyTransport::new(
            tb,
            profile.with_seed(split_seed(SHARED_SEED, 2 * u64::from(attempt) + 1)),
        ));
        // Both sides offer the keyed trailer; the Hello handshake turns it on.
        alice_end.offer_integrity(INTEGRITY_KEY);
        bob_end.offer_integrity(INTEGRITY_KEY);

        alice_end
            .register(
                0,
                Role::Alice,
                session::iblt_known_alice(&alice_set(), 20, builder.config())?,
            )
            .expect("register alice");
        bob_end
            .register(0, Role::Bob, session::iblt_known_bob(&bob_set(), builder.config()))
            .expect("register bob");

        let result = drive_pair(&mut alice_end, &mut bob_end);
        for end in [&alice_end, &bob_end] {
            let stats = end.transport().fault_stats();
            faults += stats.dropped + stats.duplicated + stats.bit_flipped + stats.reordered;
            wire_bytes += end.transport().bytes_framed_out();
        }
        let stats = bob_end.transport().fault_stats();
        match &result {
            Ok(()) => println!("attempt {attempt}: completed   ({stats:?})"),
            Err(error) => println!("attempt {attempt}: {error}"),
        }
        result?;
        let outcome = bob_end.take_outcome::<HashSet<u64>>(0).expect("session finished")?;
        Ok((outcome.recovered, attempt + 1))
    })
    .expect("reconciliation must eventually survive the fault profile");

    assert_eq!(recovered, alice_set(), "Bob must recover Alice's set exactly");
    assert!(
        ReconError::ChecksumMismatch { expected: 0, got: 1 }.is_retryable(),
        "checksum mismatches are retryable by construction"
    );
    println!(
        "reconciled in {attempts} attempt(s): {} elements recovered, \
         {faults} faults injected, {wire_bytes} wire bytes total",
        recovered.len()
    );
}
