//! Quickstart: reconcile two sets of sets with every protocol in the crate.
//!
//! Run with: `cargo run -p recon-examples --release --example quickstart`
//!
//! Alice and Bob each hold 256 child sets of up to 64 elements; Bob's copy has
//! drifted by 8 element-level changes. Each protocol lets Bob recover Alice's data,
//! and we print the measured communication so the Table 1 trade-offs are visible.

use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{cascading, iblt_of_iblts, matching_difference, multiround, naive, SosParams};

fn main() {
    let workload = WorkloadParams::new(256, 64, 1 << 30);
    let d = 8;
    let (alice, bob) = generate_pair(&workload, d, 2024);
    println!(
        "workload: s = {} child sets, h ≤ {}, n = {} elements, ground-truth d = {}",
        alice.num_children(),
        workload.max_child_size,
        alice.total_elements(),
        matching_difference(&alice, &bob),
    );

    let params = SosParams::new(7, workload.max_child_size);
    let d_hat = d;

    let runs: Vec<(&str, recon_sos::SosOutcome)> = vec![
        ("naive (Thm 3.3)", naive::run_known(&alice, &bob, d_hat, &params).expect("naive")),
        (
            "IBLT of IBLTs (Thm 3.5)",
            iblt_of_iblts::run_known(&alice, &bob, d, d_hat, &params).expect("iblt of iblts"),
        ),
        ("cascading (Thm 3.7)", cascading::run_known(&alice, &bob, d, &params).expect("cascading")),
        (
            "multi-round (Thm 3.9)",
            multiround::run_known(&alice, &bob, d, d_hat, &params).expect("multi-round"),
        ),
    ];

    println!("\n{:<26} {:>12} {:>8} {:>10}", "protocol", "bytes", "rounds", "correct");
    for (name, outcome) in &runs {
        println!(
            "{:<26} {:>12} {:>8} {:>10}",
            name,
            outcome.stats.total_bytes(),
            outcome.stats.rounds,
            outcome.recovered == alice,
        );
    }

    // Unknown-d variants need no prior bound at all.
    let unknown = cascading::run_unknown(&alice, &bob, &params).expect("unknown-d cascading");
    println!(
        "\ncascading with unknown d (Cor 3.8): {} bytes in {} rounds, correct = {}",
        unknown.stats.total_bytes(),
        unknown.stats.rounds,
        unknown.recovered == alice
    );
}
