//! Reproduce Figure 1: why the "union" of two unlabeled graphs is not well defined,
//! motivating the one-way formulation of graph reconciliation.
//!
//! Run with: `cargo run -p recon-examples --release --example graph_merge_ambiguity`

use recon_graph::general::{figure1_instance, figure1_merges};

fn describe(graph: &recon_graph::Graph) -> String {
    let edges: Vec<String> = graph.edges().iter().map(|&(u, v)| format!("{{{u},{v}}}")).collect();
    format!("{} vertices, edges: {}", graph.num_vertices(), edges.join(" "))
}

fn main() {
    let (g_a, g_b) = figure1_instance();
    println!("Alice's graph : {}", describe(&g_a));
    println!("Bob's graph   : {}", describe(&g_b));
    println!("Each graph needs one edge added to become isomorphic to a 2-edge graph.\n");

    let (matching, path) = figure1_merges();
    println!("Merge option 1 (add a disjoint edge to each):   {}", describe(&matching));
    println!("Merge option 2 (add an incident edge to each):  {}", describe(&path));
    println!(
        "\nThe two merged results are isomorphic to each other: {}",
        matching.is_isomorphic_bruteforce(&path)
    );
    println!(
        "Adding an edge to only one side can never work here: the edge counts would differ \
         ({} + 1 ≠ {}).",
        g_a.num_edges(),
        g_b.num_edges()
    );
    println!(
        "\nThis is Figure 1 of the paper: a two-way 'union' of unlabeled graphs is ambiguous, \
         so the protocols aim for one-way recovery (Bob ends with a graph isomorphic to Alice's)."
    );
}
