//! Two processes reconciling over a byte pipe — the original *blocking*,
//! hand-rolled envelope loop, kept as the minimal illustration of the
//! transport-agnostic split (see `session_two_processes` for the multiplexed
//! `Endpoint`/`Transport` version that supersedes it for real deployments).
//!
//! Run with: `cargo run -p recon-examples --release --example session_blocking`
//!
//! This example forks a child process. The parent plays Alice, the child plays
//! Bob; each constructs only *its own* `recon_protocol::Party` state machine from
//! its own data plus the shared public-coin seed, and the two exchange
//! length-prefixed serialized `Envelope`s over anonymous pipes (the child's
//! stdin/stdout). Neither process ever sees the other's set — exactly the
//! message-passing model the paper states its protocols in, and the split that
//! lets the same state machines run over real network transports.

use recon_base::wire::{Decode, Encode};
use recon_protocol::{Amplification, Envelope, Party, SessionBuilder, Step};
use recon_set::session;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::process::{Command, Stdio};

const SHARED_SEED: u64 = 0xC0FFEE;

fn alice_set() -> HashSet<u64> {
    (0..1_000u64).map(|x| x * 7 + 1).collect()
}

fn bob_set() -> HashSet<u64> {
    // Bob is missing 8 of Alice's elements and has 8 extras of his own.
    let mut set: HashSet<u64> = alice_set().into_iter().filter(|x| x % 125 != 3).collect();
    set.extend((0..8u64).map(|x| 1_000_000 + x));
    set
}

fn write_envelope(writer: &mut impl Write, envelope: &Envelope) {
    let bytes = envelope.to_bytes();
    writer.write_all(&(bytes.len() as u32).to_le_bytes()).expect("write length");
    writer.write_all(&bytes).expect("write envelope");
    writer.flush().expect("flush");
}

fn read_envelope(reader: &mut impl Read) -> Option<Envelope> {
    let mut len_bytes = [0u8; 4];
    if reader.read_exact(&mut len_bytes).is_err() {
        return None; // peer closed the pipe: protocol over
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut bytes = vec![0u8; len];
    reader.read_exact(&mut bytes).expect("read envelope body");
    Some(Envelope::from_bytes(&bytes).expect("decode envelope"))
}

/// The child process: Bob. Reads Alice's envelopes from stdin, writes his own to
/// stdout, prints progress to stderr, and exits once his set is reconciled.
fn run_bob() {
    let builder = SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(6));
    let mut bob = session::unknown_bob(&bob_set(), builder.config());

    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();

    // Bob speaks first in the unknown-d protocol (his difference estimator).
    while let Some(envelope) = bob.poll_send() {
        eprintln!("[bob]   -> {} ({} bytes)", envelope.label, envelope.payload.len());
        write_envelope(&mut stdout, &envelope);
    }
    while let Some(envelope) = read_envelope(&mut stdin) {
        eprintln!("[bob]   <- {} ({} bytes)", envelope.label, envelope.payload.len());
        match bob.handle(envelope).expect("bob handle") {
            Step::Done(recovered) => {
                assert_eq!(recovered, alice_set(), "Bob must recover Alice's set exactly");
                eprintln!("[bob]   recovered Alice's {} elements, done", recovered.len());
                return;
            }
            Step::Continue => {}
        }
        while let Some(envelope) = bob.poll_send() {
            eprintln!("[bob]   -> {} ({} bytes)", envelope.label, envelope.payload.len());
            write_envelope(&mut stdout, &envelope);
        }
    }
    panic!("pipe closed before Bob finished");
}

/// The parent process: Alice. Spawns Bob, then pumps envelopes between her own
/// party and the child's pipes.
fn run_alice() {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--bob")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn Bob process");
    let mut to_bob = child.stdin.take().expect("child stdin");
    let mut from_bob = child.stdout.take().expect("child stdout");

    let builder = SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(6));
    let mut alice = session::unknown_alice(&alice_set(), builder.config());

    let mut sent = 0usize;
    let mut received = 0usize;
    'protocol: loop {
        // Alice has nothing to say until Bob's estimator arrives, and everything
        // she does say is a response to an incoming envelope.
        match read_envelope(&mut from_bob) {
            Some(envelope) => {
                received += 1;
                eprintln!("[alice] <- {} ({} bytes)", envelope.label, envelope.payload.len());
                alice.handle(envelope).expect("alice handle");
            }
            None => break 'protocol, // Bob exited: reconciliation finished
        }
        while let Some(envelope) = alice.poll_send() {
            sent += 1;
            eprintln!("[alice] -> {} ({} bytes)", envelope.label, envelope.payload.len());
            if write_envelope_checked(&mut to_bob, &envelope).is_err() {
                break 'protocol; // Bob already finished and closed his stdin
            }
        }
    }
    let status = child.wait().expect("wait for Bob");
    assert!(status.success(), "Bob must exit cleanly");
    println!(
        "two-process reconciliation complete: Alice sent {sent} envelope(s), \
         received {received}, and never saw Bob's set"
    );
}

fn write_envelope_checked(writer: &mut impl Write, envelope: &Envelope) -> std::io::Result<()> {
    let bytes = envelope.to_bytes();
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(&bytes)?;
    writer.flush()
}

fn main() {
    if std::env::args().any(|a| a == "--bob") {
        run_bob();
    } else {
        run_alice();
    }
}
