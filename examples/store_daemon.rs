//! The persistent sketch store as a long-lived service: a [`StoreDaemon`]
//! serving reconciliation from **cached, incrementally maintained** IBLT banks
//! over the reactor runtime, with durable snapshots + WAL underneath.
//!
//! Run with: `cargo run -p recon-examples --release --example store_daemon`
//! (set `RECON_RUNTIME_FORCE_POLL=1` to exercise the `poll(2)` backend).
//!
//! The walk-through:
//!
//! 1. start a daemon over a [`DirBackend`] directory and open two replicas;
//! 2. churn them over the wire — inserts, deletes, a mid-stream snapshot —
//!    while the daemon keeps every ladder rung's sketch up to date in `O(k)`
//!    per mutation, never rebuilding from the key set;
//! 3. reconcile a drifted client set against the cached sketches and verify
//!    the recovered set *and* the measured [`CommStats`] are byte-identical
//!    to a cold one-shot session over the same data;
//! 4. restart the daemon from disk (snapshot + WAL replay) and reconcile
//!    again — persistence makes the cached-sketch service durable.
//!
//! [`DirBackend`]: recon_store::DirBackend
//! [`CommStats`]: recon_base::CommStats

use recon_protocol::SessionBuilder;
use recon_set::full_digest_builds;
use recon_set::session::{iblt_known_alice, iblt_known_bob};
use recon_store::{DirBackend, SketchStore, StoreClient, StoreConfig, StoreDaemon};
use std::collections::HashSet;

const WORKERS: usize = 2;

fn open_store(dir: &std::path::Path) -> SketchStore<DirBackend> {
    let config = StoreConfig::default().with_seed(0x5709_DAE0);
    SketchStore::open(DirBackend::open(dir).expect("open dir"), config).expect("open store")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("recon-store-daemon-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── 1. daemon + two replicas ────────────────────────────────────────────
    let daemon = StoreDaemon::bind("127.0.0.1:0", open_store(&dir), WORKERS).expect("bind");
    let addr = daemon.local_addr();
    println!("daemon listening on {addr} ({WORKERS} workers, dir backend at {})", dir.display());

    let mut client = StoreClient::connect(addr).expect("connect");
    let params = client.open("inventory").expect("open inventory");
    client.open("telemetry").expect("open telemetry");
    println!(
        "replica \"inventory\": seed {:#x}, ladder {:?}, {} attempts",
        params.seed, params.ladder, params.max_attempts
    );

    // ── 2. churn over the wire ──────────────────────────────────────────────
    let keys: Vec<u64> = (0..4000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    for chunk in keys.chunks(1000) {
        client.insert("inventory", chunk).expect("insert");
    }
    let snap_bytes = client.snapshot("inventory").expect("snapshot");
    let doomed: Vec<u64> = keys.iter().copied().take(250).collect();
    let (applied, total) = client.delete("inventory", &doomed).expect("delete");
    client.insert("telemetry", &[7, 8, 9]).expect("insert telemetry");
    let stat = client.stat("inventory").expect("stat");
    println!(
        "churn: 4000 inserts, snapshot ({snap_bytes} B), {applied} deletes → {total} keys, \
         {} WAL records pending",
        stat.wal_records
    );
    let replica_keys: HashSet<u64> = keys[250..].iter().copied().collect();

    // ── 3. reconcile from cached sketches, verify against a cold session ────
    let mut local: HashSet<u64> = replica_keys.iter().copied().skip(9).collect();
    local.extend((0..5u64).map(|extra| 0xB0B_0000 + extra));

    let builds_before = full_digest_builds();
    let report = client.reconcile("inventory", &local, Some(14)).expect("reconcile");
    assert_eq!(report.recovered, replica_keys, "daemon-served recovery");
    assert_eq!(full_digest_builds(), builds_before, "served from the cache, no rebuild");

    let config = params.session_config();
    let cold = SessionBuilder::new(params.seed)
        .amplification(config.amplification)
        .run(
            iblt_known_alice(&replica_keys, report.d as usize, &config).expect("alice"),
            iblt_known_bob(&local, &config),
        )
        .expect("cold session");
    assert_eq!(cold.recovered, replica_keys);
    assert_eq!(report.stats, cold.stats, "daemon CommStats must equal the cold session's");
    println!(
        "known-d reconcile: bound 14 → rung {}, {} B A→B / {} B B→A — byte-identical to a \
         cold session, zero digest rebuilds",
        report.d, report.stats.bytes_alice_to_bob, report.stats.bytes_bob_to_alice
    );

    // Unknown d: the daemon merges the client's strata estimator with its own.
    let report = client.reconcile("inventory", &local, None).expect("estimated reconcile");
    assert_eq!(report.recovered, replica_keys);
    println!(
        "unknown-d reconcile: strata estimate {} → rung {}, {} B A→B",
        report.estimated.expect("estimated"),
        report.d,
        report.stats.bytes_alice_to_bob
    );

    client.close().expect("close client");
    let (stats, _) = daemon.shutdown();
    println!("daemon retired: {} connection(s) served cleanly", stats.served());

    // ── 4. restart from disk: snapshot + WAL replay ─────────────────────────
    let daemon = StoreDaemon::bind("127.0.0.1:0", open_store(&dir), WORKERS).expect("rebind");
    let mut client = StoreClient::connect(daemon.local_addr()).expect("reconnect");
    let stat = client.stat("inventory").expect("stat after restart");
    assert_eq!(stat.cardinality, replica_keys.len() as u64);
    let report = client.reconcile("inventory", &local, Some(14)).expect("reconcile after restart");
    assert_eq!(report.recovered, replica_keys, "recovered state serves identically");
    println!(
        "after restart: {} keys recovered from snapshot + {} WAL records, reconcile still \
         {} B A→B",
        stat.cardinality, stat.wal_records, report.stats.bytes_alice_to_bob
    );

    client.close().expect("close client");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("store daemon example finished OK");
}
