//! N-party reconciliation with `recon-fleet`: a star hub serving dozens of
//! spokes from ONE cached sketch, and a gossip fleet converging pairwise in
//! O(log n) rounds — both provably converged (equal incremental set hashes
//! everywhere) with wire accounting summed from ordinary per-session
//! [`CommStats`].
//!
//! Run with: `cargo run -p recon-examples --release --example fleet_sync`
//! (optionally `-- star`, `-- gossip`, or `-- gossip-tcp` to run one
//! topology; `RECON_RUNTIME_FORCE_POLL=1` exercises the `poll(2)` backend
//! for the TCP paths).
//!
//! [`CommStats`]: recon_base::CommStats

use recon_fleet::{
    FleetRunner, FleetStats, GossipConfig, GossipRunner, GossipTransport, StarConfig, StarFleet,
};
use recon_set::full_digest_builds;
use recon_store::{MemoryBackend, SketchStore, StoreConfig};
use std::collections::HashSet;

const SPOKES: u64 = 48;
const GOSSIPERS: u64 = 32;

/// Spread keys so the strata estimators see uniform bits.
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn print_stats(what: &str, stats: &FleetStats) {
    println!(
        "{what}: {} rounds, {} sessions, {} B total wire, heaviest replica {} B",
        stats.rounds,
        stats.sessions,
        stats.total_bytes,
        stats.max_replica_bytes()
    );
    for round in &stats.per_round {
        println!("  round {}: {} sessions, {} B", round.round, round.sessions, round.bytes);
    }
}

/// Star: a `StoreDaemon` hub reconciles every spoke against a master replica
/// over TCP, each session served from the hub's cached rung bank.
fn star() {
    println!("── star: {SPOKES} spokes against one StoreDaemon hub ──");
    let base: Vec<u64> = (0..1500).map(key).collect();
    let spoke_sets: Vec<HashSet<u64>> = (0..SPOKES)
        .map(|k| {
            let mut set: HashSet<u64> = base.iter().copied().skip((k % 5) as usize + 1).collect();
            set.insert(key(1_000_000 + k)); // one key only this spoke holds
            set
        })
        .collect();
    let mut expected: HashSet<u64> = base.iter().copied().collect();
    for set in &spoke_sets {
        expected.extend(set);
    }

    let store = SketchStore::open(
        MemoryBackend::new(),
        StoreConfig::default().with_seed(0xF1EE7).with_ladder(vec![64, 256, 1024]),
    )
    .expect("open store");
    let config = StarConfig {
        d_bound: Some(200), // every spoke's diff is known-small; skip estimation
        spoke_threads: 4,
        ..StarConfig::default()
    };
    let mut fleet = StarFleet::launch(store, config, base.iter().copied(), spoke_sets)
        .expect("launch star fleet");
    println!("hub daemon on {}", fleet.local_addr());

    let builds_before = full_digest_builds();
    let stats = fleet.run_to_convergence(4).expect("star convergence");
    println!(
        "hub served {} sessions with {} digest (re)builds — O(1) in the spoke count",
        stats.sessions,
        full_digest_builds() - builds_before
    );
    print_stats("star", &stats);

    let (hub_hash, cardinality) = fleet.hub_state().expect("hub state");
    assert_eq!(cardinality as usize, expected.len());
    for spoke in 0..SPOKES as usize {
        assert_eq!(fleet.spoke_hash(spoke), hub_hash);
    }
    assert_eq!(fleet.spoke_keys(7), &expected);
    println!("converged: every spoke's set hash equals the hub's ({hub_hash:#018x})");

    let (_, server, store) = fleet.shutdown();
    assert_eq!(server.failed, 0);
    let store = store.expect("store released");
    assert_eq!(store.keys("master").expect("master").len(), expected.len());
    println!("hub retired: {} connections served, 0 failed\n", server.served());
}

/// Gossip: seeded random pairwise sessions, no coordinator, until every
/// member's set hash agrees.
fn gossip(transport: GossipTransport) {
    let wire = match transport {
        GossipTransport::Memory => "in-process memory pipes",
        GossipTransport::Tcp => "real TCP sockets",
    };
    println!("── gossip: {GOSSIPERS} replicas over {wire} ──");
    let shared: Vec<u64> = (0..400).map(key).collect();
    let sets: Vec<HashSet<u64>> = (0..GOSSIPERS)
        .map(|m| {
            let mut set: HashSet<u64> = shared.iter().copied().collect();
            set.insert(key(2_000_000 + 2 * m));
            set.insert(key(2_000_001 + 2 * m));
            set
        })
        .collect();
    let mut expected: HashSet<u64> = shared.iter().copied().collect();
    for set in &sets {
        expected.extend(set);
    }

    let config = GossipConfig {
        seed: 0x6055,
        ladder: vec![16, 64, 256],
        transport,
        ..GossipConfig::default()
    };
    let mut fleet = GossipRunner::new(config, sets).expect("build gossip fleet");
    let stats = fleet.run_to_convergence(12).expect("gossip convergence");
    print_stats("gossip", &stats);

    for m in 0..GOSSIPERS as usize {
        assert_eq!(fleet.set_hash(m), fleet.set_hash(0));
    }
    assert_eq!(fleet.keys(11), expected);
    println!(
        "converged: {} replicas agree on {} keys after {} rounds (log2({GOSSIPERS}) = {})\n",
        GOSSIPERS,
        expected.len(),
        stats.rounds,
        (GOSSIPERS as f64).log2() as usize
    );
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match mode.as_str() {
        "star" => star(),
        "gossip" => gossip(GossipTransport::Memory),
        "gossip-tcp" => gossip(GossipTransport::Tcp),
        "all" => {
            star();
            gossip(GossipTransport::Memory);
            gossip(GossipTransport::Tcp);
        }
        other => {
            eprintln!("unknown mode {other:?}: use star | gossip | gossip-tcp | all");
            std::process::exit(2);
        }
    }
    println!("fleet sync example finished OK");
}
