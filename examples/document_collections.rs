//! Find exact duplicates, near-duplicates and fresh documents across two document
//! collections using shingle-based set-of-sets reconciliation (Section 1).
//!
//! Run with: `cargo run -p recon-examples --release --example document_collections`

use recon_apps::documents::{reconcile_collections, Collection};
use recon_protocol::Outcome;

fn main() {
    let shingle_width = 3;
    let seed = 2018;

    let mut local = Collection::new(shingle_width, seed);
    local.add_document(
        "set reconciliation lets two parties compute the union of their sets while \
         communicating an amount proportional to the difference",
    );
    local.add_document(
        "an invertible bloom lookup table stores a count a key xor and a checksum xor \
         in every cell and is decoded by peeling pure cells",
    );
    local.add_document(
        "random graphs drawn from the erdos renyi model admit canonical labelings based \
         on vertex degrees with high probability",
    );

    let mut remote = Collection::new(shingle_width, seed);
    // One exact duplicate of a local document.
    remote.add_document(local.documents()[0].clone());
    // One lightly edited near-duplicate.
    remote.add_document(
        "an invertible bloom lookup table stores a count a key xor and a checksum xor \
         in every cell and is decoded by repeatedly peeling pure cells",
    );
    // One brand new document the local side has never seen.
    remote.add_document(
        "forests of rooted trees can be reconciled by hashing each subtree into a \
         signature and reconciling the multiset of child signature multisets",
    );

    let d = 64; // generous bound on the total shingle-level difference
    let Outcome { recovered: report, stats } =
        reconcile_collections(&remote, &local, d, 16, 41).expect("collection reconciliation");

    println!(
        "reconciled remote collection of {} documents against {} local documents",
        remote.len(),
        local.len()
    );
    println!("communication: {stats}");
    println!("  exact duplicates : {}", report.exact_duplicates);
    for (remote_idx, local_idx, diff) in &report.near_duplicates {
        println!(
            "  near duplicate   : remote shingle-set #{remote_idx} ≈ local document #{local_idx} \
             ({diff} shingles differ)"
        );
    }
    for idx in &report.fresh_documents {
        println!("  fresh document   : remote shingle-set #{idx} has no similar local document");
    }
}
