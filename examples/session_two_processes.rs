//! Two processes, one pipe, many concurrent reconciliations — multiplexed
//! endpoints driven by OS readiness instead of sleep-backoff polling.
//!
//! Run with: `cargo run -p recon-examples --release --example session_two_processes`
//!
//! The parent plays Alice, a forked child plays Bob. Each process owns an
//! [`Endpoint`] over a [`StreamTransport`] on the child's stdin/stdout pipes
//! (both ends switched to `O_NONBLOCK`) and registers *three* sessions of
//! mixed families — unknown-`d` set reconciliation, known-`d` IBLT set
//! reconciliation, and cascading set-of-sets reconciliation — that interleave
//! their session-tagged frames over the same byte stream. Each process
//! constructs only its own party state machines from its own data plus the
//! shared public-coin seed; the per-session `CommStats` each side reports are
//! identical to running the protocols alone.
//!
//! Both processes block in [`drive_endpoint`] — the reactor runtime's
//! epoll/`poll(2)` wait (`RECON_RUNTIME_FORCE_POLL=1` selects the portable
//! backend) — and are woken only when the pipe actually has bytes or buffer
//! space: no `std::thread::sleep`, no reader thread. The pre-reactor
//! implementation (a [`PipeTransport`] reader thread plus sleep-backoff
//! polling) is kept for comparison as `--blocking`.
//!
//! [`Endpoint`]: recon_protocol::Endpoint
//! [`StreamTransport`]: recon_protocol::StreamTransport
//! [`PipeTransport`]: recon_protocol::PipeTransport
//! [`drive_endpoint`]: recon_runtime::drive_endpoint

use recon_base::CommStats;
use recon_protocol::{Amplification, Endpoint, Role, SessionBuilder, SessionId, Transport};
use recon_runtime::{drive_endpoint, set_nonblocking, RawFdIo, ReactorConfig};
use recon_set::session as set_session;
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{session as sos_session, SetOfSets, SosParams};
use std::collections::HashSet;
use std::os::fd::AsRawFd;
use std::process::{Command, Stdio};
use std::time::Duration;

const SHARED_SEED: u64 = 0xC0FFEE;
const UNKNOWN_SET: SessionId = 0;
const KNOWN_SET: SessionId = 1;
const CASCADING_SOS: SessionId = 2;

// Both processes derive the example datasets from the shared seed, but each
// constructs only its *own* party from its own half — the other half is used
// solely to verify the recovery at the end.

fn unknown_pair() -> (HashSet<u64>, HashSet<u64>) {
    let alice: HashSet<u64> = (0..1_000u64).map(|x| x * 7 + 1).collect();
    let mut bob: HashSet<u64> = alice.iter().copied().filter(|x| x % 125 != 3).collect();
    bob.extend((0..8u64).map(|x| 1_000_000 + x));
    (alice, bob)
}

fn known_pair() -> (HashSet<u64>, HashSet<u64>) {
    let alice: HashSet<u64> = (0..600u64).map(|x| x * 13 + 5).collect();
    let mut bob = alice.clone();
    for x in 0..6u64 {
        bob.insert(2_000_000 + x);
        bob.remove(&(x * 13 * 17 + 5));
    }
    (alice, bob)
}

fn sos_pair() -> (SetOfSets, SetOfSets) {
    generate_pair(&WorkloadParams::new(48, 12, 1 << 28), 4, SHARED_SEED)
}

fn sos_params() -> SosParams {
    SosParams::new(SHARED_SEED ^ 0x505, 12)
}

const ALL_SESSIONS: [SessionId; 3] = [UNKNOWN_SET, KNOWN_SET, CASCADING_SOS];

fn register_bob<T: Transport>(endpoint: &mut Endpoint<T>) {
    let builder = SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(6));
    endpoint
        .register(
            UNKNOWN_SET,
            Role::Bob,
            set_session::unknown_bob(&unknown_pair().1, builder.config()),
        )
        .unwrap();
    endpoint
        .register(
            KNOWN_SET,
            Role::Bob,
            set_session::iblt_known_bob(&known_pair().1, builder.config()),
        )
        .unwrap();
    endpoint
        .register(
            CASCADING_SOS,
            Role::Bob,
            sos_session::cascading_known_bob(
                &sos_pair().1,
                &sos_params(),
                Amplification::replicate(4),
            ),
        )
        .unwrap();
}

fn register_alice<T: Transport>(endpoint: &mut Endpoint<T>) {
    let builder = SessionBuilder::new(SHARED_SEED).amplification(Amplification::replicate(6));
    endpoint
        .register(
            UNKNOWN_SET,
            Role::Alice,
            set_session::unknown_alice(&unknown_pair().0, builder.config()),
        )
        .unwrap();
    endpoint
        .register(
            KNOWN_SET,
            Role::Alice,
            set_session::iblt_known_alice(&known_pair().0, 16, builder.config())
                .expect("alice party"),
        )
        .unwrap();
    endpoint
        .register(
            CASCADING_SOS,
            Role::Alice,
            sos_session::cascading_known_alice(
                &sos_pair().0,
                4,
                &sos_params(),
                Amplification::replicate(4),
            )
            .expect("alice party"),
        )
        .unwrap();
}

/// Harvest one finished Bob session, verifying the recovery. Returns `true`
/// when it was collected.
fn take_bob_outcome<T: Transport>(endpoint: &mut Endpoint<T>, id: SessionId) -> bool {
    match id {
        UNKNOWN_SET | KNOWN_SET => match endpoint.take_outcome::<HashSet<u64>>(id) {
            None => false,
            Some(outcome) => {
                let outcome = outcome.expect("set session");
                let expected = if id == UNKNOWN_SET { unknown_pair().0 } else { known_pair().0 };
                assert_eq!(outcome.recovered, expected, "session {id}");
                eprintln!(
                    "[bob]   session {id} recovered {} elements: {}",
                    expected.len(),
                    outcome.stats
                );
                true
            }
        },
        _ => match endpoint.take_outcome::<SetOfSets>(id) {
            None => false,
            Some(outcome) => {
                let outcome = outcome.expect("sos session");
                assert_eq!(outcome.recovered, sos_pair().0, "session {id}");
                eprintln!(
                    "[bob]   session {id} recovered {} child sets: {}",
                    outcome.recovered.num_children(),
                    outcome.stats
                );
                true
            }
        },
    }
}

fn reactor_config() -> ReactorConfig {
    ReactorConfig { session_deadline: Some(Duration::from_secs(60)), ..ReactorConfig::default() }
}

// ---------------------------------------------------------------------------
// Reactor path: readiness-driven, no sleeps, no reader threads
// ---------------------------------------------------------------------------

/// The child process: Bob's endpoint directly over the stdin/stdout pipe
/// descriptors in non-blocking mode, driven by the reactor runtime.
fn run_bob() {
    set_nonblocking(0).expect("stdin nonblock");
    set_nonblocking(1).expect("stdout nonblock");
    // Raw-fd I/O instead of Stdin/Stdout: libstd's stdout LineWriter would
    // buffer bytes where the transport's readiness accounting cannot see them.
    let transport = recon_protocol::StreamTransport::new(RawFdIo::stdin(), RawFdIo::stdout());
    let mut endpoint = Endpoint::new(transport);
    register_bob(&mut endpoint);

    let mut remaining: Vec<SessionId> = ALL_SESSIONS.to_vec();
    drive_endpoint(&mut endpoint, &reactor_config(), |endpoint| {
        remaining.retain(|&id| !take_bob_outcome(endpoint, id));
        Ok(remaining.is_empty())
    })
    .expect("bob reactor drive");
    eprintln!("[bob]   all {} sessions done over one pipe (readiness-driven)", ALL_SESSIONS.len());
}

/// The parent process: Alice's endpoint over the child's pipes, readiness-driven.
fn run_alice() {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--bob")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn Bob process");
    let to_bob = child.stdin.take().expect("child stdin");
    let from_bob = child.stdout.take().expect("child stdout");
    set_nonblocking(to_bob.as_raw_fd()).expect("child stdin nonblock");
    set_nonblocking(from_bob.as_raw_fd()).expect("child stdout nonblock");
    let mut endpoint = Endpoint::new(recon_protocol::StreamTransport::new(from_bob, to_bob));
    register_alice(&mut endpoint);

    let mut stats: Vec<CommStats> = Vec::new();
    let driven = drive_endpoint(&mut endpoint, &reactor_config(), |endpoint| {
        for id in ALL_SESSIONS {
            if endpoint.is_finished(id) == Some(true) {
                let session_stats = endpoint.close(id).expect("registered");
                eprintln!("[alice] session {id} finished: {session_stats}");
                stats.push(session_stats);
            }
        }
        Ok(stats.len() == ALL_SESSIONS.len())
    });
    if let Err(e) = driven {
        // Bob exits the moment his outcomes are collected; our final Fin
        // replies hitting his closed stdin are expected shutdown skew.
        assert!(stats.len() == ALL_SESSIONS.len(), "transport failed mid-protocol: {e}");
    }

    let status = child.wait().expect("wait for Bob");
    assert!(status.success(), "Bob must exit cleanly");
    let framed = endpoint.transport().bytes_framed_out() + endpoint.transport().bytes_framed_in();
    println!(
        "multiplexed two-process reconciliation complete: 3 mixed-family sessions, \
         {} metered protocol bytes inside {framed} framed bytes on one pipe, \
         zero sleeps (epoll/poll readiness)",
        stats.iter().map(|s| s.total_bytes()).sum::<usize>()
    );
}

// ---------------------------------------------------------------------------
// Blocking comparison path (the pre-reactor PR-2 implementation)
// ---------------------------------------------------------------------------

/// The child process, blocking flavor: a `PipeTransport` reader thread plus
/// sleep-backoff polling.
fn run_bob_blocking() {
    let transport = recon_protocol::PipeTransport::spawn(std::io::stdin(), std::io::stdout());
    let mut endpoint = Endpoint::new(transport);
    register_bob(&mut endpoint);

    let mut remaining: Vec<SessionId> = ALL_SESSIONS.to_vec();
    while !remaining.is_empty() {
        let progressed = endpoint.poll().expect("bob poll");
        remaining.retain(|&id| !take_bob_outcome(&mut endpoint, id));
        if !remaining.is_empty() && !progressed {
            assert!(!endpoint.transport().is_closed(), "pipe closed before Bob finished");
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // The Fins for the collected sessions are already written; push them out.
    endpoint.transport_mut().flush().expect("final flush");
    eprintln!("[bob]   all {} sessions done over one pipe (blocking)", ALL_SESSIONS.len());
}

/// The parent process, blocking flavor.
fn run_alice_blocking() {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--bob-blocking")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn Bob process");
    let to_bob = child.stdin.take().expect("child stdin");
    let from_bob = child.stdout.take().expect("child stdout");
    let transport = recon_protocol::PipeTransport::spawn(from_bob, to_bob);
    let mut endpoint = Endpoint::new(transport);
    register_alice(&mut endpoint);

    let mut stats = Vec::new();
    while endpoint.registered_sessions() > 0 {
        let progressed = match endpoint.poll() {
            Ok(progressed) => progressed,
            // Bob exits the moment his outcomes are collected; writing our Fin
            // replies into his closed stdin is then expected shutdown skew.
            Err(e) => {
                let all_finished =
                    ALL_SESSIONS.iter().all(|&id| endpoint.is_finished(id) != Some(false));
                assert!(all_finished, "transport failed mid-protocol: {e}");
                true
            }
        };
        for id in ALL_SESSIONS {
            if endpoint.is_finished(id) == Some(true) {
                let session_stats = endpoint.close(id).expect("registered");
                eprintln!("[alice] session {id} finished: {session_stats}");
                stats.push(session_stats);
            }
        }
        if endpoint.registered_sessions() > 0 && !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    let status = child.wait().expect("wait for Bob");
    assert!(status.success(), "Bob must exit cleanly");
    let framed = endpoint.transport().bytes_framed_out() + endpoint.transport().bytes_framed_in();
    println!(
        "blocking path: 3 mixed-family sessions, {} metered protocol bytes inside \
         {framed} framed bytes on one pipe",
        stats.iter().map(|s| s.total_bytes()).sum::<usize>()
    );
}

fn main() {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("--bob") => run_bob(),
        Some("--bob-blocking") => run_bob_blocking(),
        Some("--blocking") => run_alice_blocking(),
        _ => run_alice(),
    }
}
