//! Forest reconciliation (Section 6, Theorem 6.1).
//!
//! Alice and Bob hold rooted forests that differ by at most `d` directed edge
//! insertions/deletions (a deletion turns the child into a new root; an insertion
//! may only attach a current root below another vertex). Every vertex gets a
//! signature: a hash of the isomorphism class of the subtree it roots (the classic
//! AHU canonical labeling, computed bottom-up). A forest is fully described by the
//! multiset of *per-vertex child multisets* — for each vertex, the multiset holding
//! its own signature (marked as "parent") together with the signatures of its
//! children — and one edge update only changes the signatures of the `≤ σ` vertices
//! on the path to the root. Reconciling this multiset of multisets (Section 3.4 +
//! Theorem 3.7) therefore costs `O(dσ log(dσ) log n)` bits, after which Bob
//! reconstructs a forest isomorphic to Alice's from the recovered signatures.

use recon_base::hash::{hash_u64_set, truncate_bits};
use recon_base::rng::Xoshiro256;
use recon_base::ReconError;
use recon_protocol::{Outcome, SessionBuilder};
use recon_set::Multiset;
use recon_sos::multiset_of_multisets::{self, PairPacking, SetOfMultisets};
use recon_sos::SosParams;
use std::collections::{BTreeMap, HashMap};

/// Number of bits kept from each subtree signature so that `(signature, count)`
/// pairs fit the [`PairPacking`] word format. 40 bits keep the collision probability
/// negligible for forests up to millions of vertices.
pub const SIGNATURE_BITS: u32 = 40;

/// Marker added to a vertex's own signature inside its child multiset, so the parent
/// entry is distinguishable from child entries.
const PARENT_MARKER: u64 = 1 << 42;

/// A rooted forest on vertices `0..n`: each vertex has an optional parent, and the
/// parent pointers contain no cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forest {
    parent: Vec<Option<u32>>,
}

impl Forest {
    /// A forest of `n` isolated roots.
    pub fn new(n: usize) -> Self {
        Self { parent: vec![None; n] }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// Number of (directed, parent→child) edges.
    pub fn num_edges(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// Parent of a vertex (`None` for roots).
    pub fn parent(&self, v: u32) -> Option<u32> {
        self.parent[v as usize]
    }

    /// All root vertices.
    pub fn roots(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).filter(|&v| self.parent[v as usize].is_none()).collect()
    }

    /// Children of every vertex (index = vertex).
    pub fn children_lists(&self) -> Vec<Vec<u32>> {
        let mut children = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p as usize].push(v as u32);
            }
        }
        children
    }

    /// Depth of a vertex (roots have depth 0).
    pub fn depth(&self, v: u32) -> usize {
        let mut depth = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur as usize] {
            depth += 1;
            cur = p;
            assert!(depth <= self.parent.len(), "cycle in forest");
        }
        depth
    }

    /// Maximum depth over all vertices (`σ` in Theorem 6.1 is `max_depth() + 1`
    /// counted in vertices; we report edge-depth).
    pub fn max_depth(&self) -> usize {
        (0..self.parent.len() as u32).map(|v| self.depth(v)).max().unwrap_or(0)
    }

    /// `true` if `ancestor` lies on the path from `v` to its root (inclusive).
    pub fn is_ancestor(&self, ancestor: u32, v: u32) -> bool {
        let mut cur = Some(v);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent[c as usize];
        }
        false
    }

    /// Delete the edge above `v` (a paper "edge deletion": `v` becomes a root).
    /// Returns `false` if `v` was already a root.
    pub fn delete_edge(&mut self, v: u32) -> bool {
        if self.parent[v as usize].is_none() {
            return false;
        }
        self.parent[v as usize] = None;
        true
    }

    /// Insert an edge making root `child` a child of `new_parent` (a paper "edge
    /// insertion": only roots may acquire a parent). Fails if `child` is not a root
    /// or if the edge would create a cycle.
    pub fn insert_edge(&mut self, child: u32, new_parent: u32) -> Result<(), ReconError> {
        if self.parent[child as usize].is_some() {
            return Err(ReconError::InvalidInput(format!(
                "vertex {child} is not a root; forest insertions must attach roots"
            )));
        }
        if self.is_ancestor(child, new_parent) {
            return Err(ReconError::InvalidInput("insertion would create a cycle".to_string()));
        }
        self.parent[child as usize] = Some(new_parent);
        Ok(())
    }

    /// Generate a random rooted forest: each vertex beyond the first becomes a new
    /// root with probability `root_prob`, otherwise it attaches to a uniformly random
    /// earlier vertex whose depth is below `max_depth`.
    pub fn random(n: usize, root_prob: f64, max_depth: usize, rng: &mut Xoshiro256) -> Self {
        let mut forest = Forest::new(n);
        for v in 1..n as u32 {
            if rng.next_bool(root_prob) {
                continue;
            }
            // Rejection-sample a parent that respects the depth cap.
            for _ in 0..32 {
                let candidate = rng.next_index(v as usize) as u32;
                if forest.depth(candidate) < max_depth {
                    forest.parent[v as usize] = Some(candidate);
                    break;
                }
            }
        }
        forest
    }

    /// Apply exactly `d` random edge updates (insertions of roots or deletions),
    /// respecting the forest constraints of Section 6.
    pub fn perturb(&self, d: usize, rng: &mut Xoshiro256) -> Self {
        let mut out = self.clone();
        let n = out.num_vertices();
        let mut applied = 0;
        let mut guard = 0;
        while applied < d {
            guard += 1;
            assert!(guard < 200 * (d + 1) + 1000, "forest perturbation failed to converge");
            if rng.next_bool(0.5) {
                // Deletion.
                let v = rng.next_index(n) as u32;
                if out.delete_edge(v) {
                    applied += 1;
                }
            } else {
                // Insertion: attach a random root under a random non-descendant.
                let roots = out.roots();
                if roots.len() <= 1 {
                    continue;
                }
                let child = roots[rng.next_index(roots.len())];
                let target = rng.next_index(n) as u32;
                if target != child && out.insert_edge(child, target).is_ok() {
                    applied += 1;
                }
            }
        }
        out
    }

    /// Exact (64-bit) AHU-style canonical label of every vertex's subtree.
    pub fn canonical_labels(&self, seed: u64) -> Vec<u64> {
        let children = self.children_lists();
        let mut labels = vec![0u64; self.num_vertices()];
        // Process vertices in order of decreasing depth so children come first.
        let mut order: Vec<u32> = (0..self.num_vertices() as u32).collect();
        let depths: Vec<usize> = order.iter().map(|&v| self.depth(v)).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(depths[v as usize]));
        for &v in &order {
            let child_labels: Vec<u64> = {
                let mut ls: Vec<u64> =
                    children[v as usize].iter().map(|&c| labels[c as usize]).collect();
                ls.sort_unstable();
                ls
            };
            labels[v as usize] = hash_u64_set(
                child_labels.iter().enumerate().map(|(i, &l)| l.wrapping_add(i as u64 * 0x9E37)),
                seed ^ 0xF0E5,
            );
        }
        labels
    }

    /// Truncated signatures used on the wire (see [`SIGNATURE_BITS`]).
    pub fn signatures(&self, seed: u64) -> Vec<u64> {
        self.canonical_labels(seed)
            .into_iter()
            .map(|l| truncate_bits(l, SIGNATURE_BITS).max(1))
            .collect()
    }

    /// Isomorphism test: two rooted forests are isomorphic iff the multisets of
    /// their root canonical labels agree.
    pub fn is_isomorphic(&self, other: &Forest, seed: u64) -> bool {
        let mine = self.canonical_labels(seed);
        let theirs = other.canonical_labels(seed);
        let mut a: Vec<u64> = self.roots().into_iter().map(|r| mine[r as usize]).collect();
        let mut b: Vec<u64> = other.roots().into_iter().map(|r| theirs[r as usize]).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b && self.num_vertices() == other.num_vertices()
    }

    /// The per-vertex child multisets described in Theorem 6.1's proof: for each
    /// vertex, a multiset holding its own (marked) signature and the signatures of
    /// its children.
    pub fn vertex_multisets(&self, seed: u64) -> SetOfMultisets {
        let sigs = self.signatures(seed);
        let children = self.children_lists();
        let mut collection = Vec::with_capacity(self.num_vertices());
        for v in 0..self.num_vertices() {
            let mut m = Multiset::new();
            m.insert(PARENT_MARKER | sigs[v]);
            for &c in &children[v] {
                m.insert(sigs[c as usize]);
            }
            collection.push(m);
        }
        SetOfMultisets::from_children(collection)
    }
}

/// Reconstruct a forest (up to isomorphism) from a recovered collection of per-vertex
/// child multisets, following the constructive argument in the proof of Theorem 6.1.
pub fn reconstruct(collection: &SetOfMultisets) -> Result<Forest, ReconError> {
    // Group the collection by the (marked) parent signature.
    struct Group {
        count: usize,
        children: Vec<(u64, u64)>, // (child signature, multiplicity per parent vertex)
    }
    let mut groups: BTreeMap<u64, Group> = BTreeMap::new();
    for child_multiset in collection.children() {
        let mut parent_sig = None;
        let mut children = Vec::new();
        for (x, c) in child_multiset.iter() {
            if x & PARENT_MARKER != 0 {
                if c != 1 || parent_sig.is_some() {
                    return Err(ReconError::ChecksumFailure);
                }
                parent_sig = Some(x & !PARENT_MARKER);
            } else {
                children.push((x, c));
            }
        }
        // Canonical order so structurally identical multisets compare equal.
        children.sort_unstable();
        let sig = parent_sig.ok_or(ReconError::ChecksumFailure)?;
        let entry = groups.entry(sig).or_insert(Group { count: 0, children: children.clone() });
        if entry.count > 0 && entry.children != children {
            // Identical subtree signatures must have identical child multisets.
            return Err(ReconError::ChecksumFailure);
        }
        entry.count += 1;
    }

    // Heights of signatures (children strictly lower), detecting inconsistencies.
    fn height(
        sig: u64,
        groups: &BTreeMap<u64, Group>,
        memo: &mut HashMap<u64, usize>,
        depth_guard: usize,
    ) -> Result<usize, ReconError> {
        if let Some(&h) = memo.get(&sig) {
            return Ok(h);
        }
        if depth_guard == 0 {
            return Err(ReconError::ChecksumFailure);
        }
        let group = groups.get(&sig).ok_or(ReconError::ChecksumFailure)?;
        let mut h = 0;
        for &(child_sig, _) in &group.children {
            h = h.max(1 + height(child_sig, groups, memo, depth_guard - 1)?);
        }
        memo.insert(sig, h);
        Ok(h)
    }
    let mut memo = HashMap::new();
    let guard = groups.len() + 2;
    let mut by_height: Vec<(usize, u64)> = Vec::new();
    for &sig in groups.keys() {
        by_height.push((height(sig, &groups, &mut memo, guard)?, sig));
    }
    by_height.sort_unstable();

    // Allocate vertex ids per signature and a pool of not-yet-attached vertices.
    let mut ids_of: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut next_id = 0u32;
    for (_, sig) in &by_height {
        let group = &groups[sig];
        let ids: Vec<u32> = (0..group.count).map(|i| next_id + i as u32).collect();
        next_id += group.count as u32;
        ids_of.insert(*sig, ids);
    }
    let total = next_id as usize;
    let mut forest = Forest::new(total);
    let mut unattached: HashMap<u64, Vec<u32>> =
        ids_of.iter().map(|(sig, ids)| (*sig, ids.clone())).collect();

    // Attach children, processing parent signatures from the leaves up.
    for (_, sig) in &by_height {
        let group = &groups[sig];
        if group.children.is_empty() {
            continue;
        }
        let parents = ids_of[sig].clone();
        for parent in parents {
            for &(child_sig, multiplicity) in &group.children {
                let pool = unattached.get_mut(&child_sig).ok_or(ReconError::ChecksumFailure)?;
                if (pool.len() as u64) < multiplicity {
                    return Err(ReconError::ChecksumFailure);
                }
                for _ in 0..multiplicity {
                    let child = pool.pop().expect("checked length");
                    forest.parent[child as usize] = Some(parent);
                }
            }
        }
    }
    Ok(forest)
}

/// One-round forest reconciliation (Theorem 6.1). `d` bounds the number of directed
/// edge updates between the forests, and `sigma` bounds the depth of every tree in
/// either forest.
///
/// Returns a forest isomorphic to Alice's, plus the measured communication.
/// Delegates to the sans-I/O party pair of [`crate::session`] driven over an
/// in-memory link.
pub fn reconcile(
    alice: &Forest,
    bob: &Forest,
    d: usize,
    sigma: usize,
    seed: u64,
) -> Result<Outcome<Forest>, ReconError> {
    let alice_collection = alice.vertex_multisets(seed);
    let bob_collection = bob.vertex_multisets(seed);
    // The parties must agree on the packed child-size bound; the local driver
    // derives it from both inputs, like the legacy implementation did.
    let packing = PairPacking::default();
    let max_child =
        alice_collection.max_child_distinct().max(bob_collection.max_child_distinct()).max(2) + 1;
    let base_params = SosParams::new(seed ^ 0xF07E57, max_child);
    let resolved = multiset_of_multisets::resolved_params(
        &alice_collection,
        &bob_collection,
        &base_params,
        &packing,
    )?;
    SessionBuilder::new(seed).run(
        crate::session::forest_alice(alice, d, sigma, seed, &resolved)?,
        crate::session::forest_bob(bob, seed, &resolved)?,
    )
}

/// Build a forest from an explicit parent array (panics if the pointers contain a
/// cycle). Convenient for examples and tests.
pub fn from_parents(parents: &[Option<u32>]) -> Forest {
    let mut forest = Forest::new(parents.len());
    for (v, p) in parents.iter().enumerate() {
        forest.parent[v] = *p;
    }
    // Validate acyclicity (depth panics on cycles).
    for v in 0..forest.num_vertices() as u32 {
        let _ = forest.depth(v);
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Forest {
        // 0 <- 1 <- 2 <- ... (vertex i's parent is i-1)
        from_parents(
            &(0..n).map(|i| if i == 0 { None } else { Some(i as u32 - 1) }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn basic_structure_queries() {
        let f = chain(5);
        assert_eq!(f.num_vertices(), 5);
        assert_eq!(f.num_edges(), 4);
        assert_eq!(f.roots(), vec![0]);
        assert_eq!(f.depth(4), 4);
        assert_eq!(f.max_depth(), 4);
        assert!(f.is_ancestor(0, 4));
        assert!(!f.is_ancestor(4, 0));
        assert_eq!(f.children_lists()[1], vec![2]);
    }

    #[test]
    fn edge_updates_respect_forest_constraints() {
        let mut f = chain(4);
        assert!(f.delete_edge(2));
        assert!(!f.delete_edge(2), "vertex 2 is already a root");
        assert_eq!(f.roots(), vec![0, 2]);
        // Attaching 2 under 3 would create a cycle (3 is in 2's subtree).
        assert!(f.insert_edge(2, 3).is_err());
        assert!(f.insert_edge(2, 1).is_ok());
        assert_eq!(f.roots(), vec![0]);
        // Non-roots cannot be attached.
        assert!(f.insert_edge(3, 0).is_err());
    }

    #[test]
    fn random_forest_respects_depth_cap() {
        let mut rng = Xoshiro256::new(3);
        let f = Forest::random(500, 0.05, 6, &mut rng);
        assert!(f.max_depth() <= 6);
        assert!(!f.roots().is_empty());
    }

    #[test]
    fn perturb_applies_the_requested_number_of_updates() {
        let mut rng = Xoshiro256::new(5);
        let f = Forest::random(200, 0.1, 8, &mut rng);
        let g = f.perturb(6, &mut rng);
        // Each update changes exactly one parent pointer.
        let changed = (0..200u32).filter(|&v| f.parent(v) != g.parent(v)).count();
        assert!((1..=6).contains(&changed));
    }

    #[test]
    fn canonical_labels_are_isomorphism_invariants() {
        // Two chains of equal length are isomorphic regardless of vertex numbering.
        let a = chain(6);
        let b = from_parents(&[Some(1), Some(2), Some(3), Some(4), Some(5), None]);
        assert!(a.is_isomorphic(&b, 9));
        // A chain and a star are not.
        let star = from_parents(&[None, Some(0), Some(0), Some(0), Some(0), Some(0)]);
        assert!(!a.is_isomorphic(&star, 9));
    }

    #[test]
    fn reconstruction_roundtrips_isomorphism_class() {
        let mut rng = Xoshiro256::new(11);
        for n in [1usize, 5, 50, 300] {
            let f = Forest::random(n, 0.15, 7, &mut rng);
            let rebuilt = reconstruct(&f.vertex_multisets(42)).unwrap();
            assert!(rebuilt.is_isomorphic(&f, 42), "n = {n}");
        }
    }

    #[test]
    fn reconstruction_handles_repeated_subtrees() {
        // A star of identical leaves and two identical chains: heavy duplication.
        let star = from_parents(&[None, Some(0), Some(0), Some(0), Some(0)]);
        let rebuilt = reconstruct(&star.vertex_multisets(1)).unwrap();
        assert!(rebuilt.is_isomorphic(&star, 1));
        let two_chains = from_parents(&[None, Some(0), Some(1), None, Some(3), Some(4)]);
        let rebuilt2 = reconstruct(&two_chains.vertex_multisets(1)).unwrap();
        assert!(rebuilt2.is_isomorphic(&two_chains, 1));
    }

    #[test]
    fn identical_forests_reconcile() {
        let mut rng = Xoshiro256::new(21);
        let f = Forest::random(400, 0.1, 6, &mut rng);
        let outcome = reconcile(&f, &f, 1, 6, 5).unwrap();
        assert!(outcome.recovered.is_isomorphic(&f, 5));
        assert_eq!(outcome.stats.rounds, 1);
    }

    #[test]
    fn perturbed_forests_reconcile() {
        let mut rng = Xoshiro256::new(31);
        let base = Forest::random(300, 0.1, 5, &mut rng);
        for d in [1usize, 3, 8] {
            let alice = base.perturb(d / 2, &mut rng);
            let bob = base.perturb(d - d / 2, &mut rng);
            let sigma = alice.max_depth().max(bob.max_depth()).max(1);
            let outcome = reconcile(&alice, &bob, d, sigma, 100 + d as u64).unwrap();
            assert!(outcome.recovered.is_isomorphic(&alice, 100 + d as u64), "d = {d}");
            assert!(outcome.stats.total_bytes() > 0);
        }
    }

    #[test]
    fn communication_scales_with_d_sigma_not_n() {
        let mut rng = Xoshiro256::new(41);
        let small = Forest::random(200, 0.1, 5, &mut rng);
        let large = Forest::random(2000, 0.1, 5, &mut rng);
        let small_alice = small.perturb(2, &mut rng);
        let large_alice = large.perturb(2, &mut rng);
        let small_stats = reconcile(&small_alice, &small, 2, 6, 7).unwrap().stats;
        let large_stats = reconcile(&large_alice, &large, 2, 6, 7).unwrap().stats;
        // Ten times more vertices should not mean ten times more communication.
        assert!(
            large_stats.total_bytes() < 4 * small_stats.total_bytes(),
            "{} vs {}",
            large_stats.total_bytes(),
            small_stats.total_bytes()
        );
    }
}
