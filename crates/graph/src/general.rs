//! General (worst-case) graph protocols — Section 4 of the paper.
//!
//! These protocols make no assumption about the graphs, at the price of exponential
//! computation; they exist to calibrate what the efficient random-graph protocols of
//! Section 5 must beat, and to reproduce the paper's Figure 1 and the Theorem 4.4
//! lower-bound construction:
//!
//! * [`isomorphism_protocol`] — Theorem 4.1 / Corollary 4.2: `O(log n)` bits decide
//!   isomorphism with high probability, by comparing one random evaluation of the
//!   polynomial whose coefficients are the bits of the canonical form.
//! * [`reconcile_exhaustive`] — Theorem 4.3: Alice sends a fingerprint of her
//!   canonical form; Bob enumerates every graph within `d` edge flips of his own and
//!   keeps the first whose fingerprint matches (`O(d log n)` bits, `O(n^{2d})` time).
//! * [`figure1_instance`] — the Figure 1 phenomenon: a pair of graphs for which the
//!   "union" is not well defined because two different ways of adding one edge to
//!   each yield non-isomorphic results.
//! * [`lower_bound_instance`] — the Theorem 4.4 encoding construction showing any
//!   reconciliation protocol must transfer `Ω(d log n)` bits.

use crate::graph::Graph;
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::rng::{split_seed, Xoshiro256};
use recon_field::Fp;

/// Evaluate the polynomial whose coefficients are the bits of `bits` (the canonical
/// form bitstring) at the point `r`, over GF(2^61 − 1).
fn fingerprint(bits: u64, r: Fp) -> Fp {
    let mut acc = Fp::ZERO;
    let mut power = Fp::ONE;
    for i in 0..64 {
        if (bits >> i) & 1 == 1 {
            acc += power;
        }
        power *= r;
    }
    acc
}

/// Theorem 4.1: decide whether two (small) graphs are isomorphic with `O(log q)`
/// bits of communication. Returns the verdict together with the measured
/// communication. Requires `n ≤ 10` because the canonical form is computed by brute
/// force, exactly as the information-theoretic protocol assumes unbounded
/// computation.
pub fn isomorphism_protocol(alice: &Graph, bob: &Graph, seed: u64) -> (bool, CommStats) {
    let mut transcript = Transcript::new();
    let mut rng = Xoshiro256::new(split_seed(seed, 0x41));
    let r = Fp::new(rng.next_u64());
    let alice_canon = alice.canonical_form_small();
    let value = fingerprint(alice_canon, r);
    // Alice sends (r, p_A(r)): two field elements.
    transcript.record(
        Direction::AliceToBob,
        "isomorphism fingerprint",
        &(r.value(), value.value()),
    );
    let bob_canon = bob.canonical_form_small();
    let verdict = fingerprint(bob_canon, r) == value;
    (verdict, transcript.stats())
}

/// Theorem 4.3: one-way graph reconciliation for arbitrary graphs with `O(d log n)`
/// bits, by having Bob enumerate every graph within `d` edge changes of his own.
///
/// Returns Bob's reconstructed graph (isomorphic to Alice's) and the communication,
/// or `None` if no graph within `d` changes matches (the bound `d` was too small).
/// Exponential in `d`; restricted to `n ≤ 8` and `d ≤ 3` to keep tests and benches
/// finite, which is exactly the point the paper makes before moving to Section 5.
pub fn reconcile_exhaustive(
    alice: &Graph,
    bob: &Graph,
    d: usize,
    seed: u64,
) -> (Option<Graph>, CommStats) {
    assert!(alice.num_vertices() <= 8 && d <= 3, "exhaustive reconciliation is for tiny instances");
    let mut transcript = Transcript::new();
    let mut rng = Xoshiro256::new(split_seed(seed, 0x43));
    let r = Fp::new(rng.next_u64());
    let value = fingerprint(alice.canonical_form_small(), r);
    transcript.record(
        Direction::AliceToBob,
        "reconciliation fingerprint",
        &(r.value(), value.value(), d as u64),
    );

    // Bob enumerates all subsets of at most d vertex pairs to flip.
    let n = bob.num_vertices() as u32;
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    let found = enumerate_flips(bob, &pairs, 0, d, &mut Vec::new(), &|candidate: &Graph| {
        fingerprint(candidate.canonical_form_small(), r) == value
    });
    (found, transcript.stats())
}

fn enumerate_flips(
    base: &Graph,
    pairs: &[(u32, u32)],
    start: usize,
    budget: usize,
    chosen: &mut Vec<(u32, u32)>,
    matches: &dyn Fn(&Graph) -> bool,
) -> Option<Graph> {
    let mut candidate = base.clone();
    for &(u, v) in chosen.iter() {
        candidate.flip_edge(u, v);
    }
    if matches(&candidate) {
        return Some(candidate);
    }
    if budget == 0 {
        return None;
    }
    for i in start..pairs.len() {
        chosen.push(pairs[i]);
        if let Some(found) = enumerate_flips(base, pairs, i + 1, budget - 1, chosen, matches) {
            chosen.pop();
            return Some(found);
        }
        chosen.pop();
    }
    None
}

/// The Figure 1 phenomenon: two graphs `(G_A, G_B)` that each need one edge added to
/// become isomorphic, for which two different choices of added edges produce
/// *non-isomorphic* merged results, and no single-sided addition works at all. This
/// is why the paper (and this crate) define graph reconciliation as one-way recovery
/// rather than a union.
///
/// The instance used here is the smallest clean example: both parties hold one edge
/// plus two isolated vertices; adding a disjoint edge to each yields a perfect
/// matching `2K_2`, adding an incident edge to each yields a path `P_3`, and the two
/// outcomes are not isomorphic.
pub fn figure1_instance() -> (Graph, Graph) {
    let g_a = Graph::from_edges(4, &[(0, 1)]);
    let g_b = Graph::from_edges(4, &[(0, 1)]);
    (g_a, g_b)
}

/// The two non-isomorphic "merge" outcomes of [`figure1_instance`]: adding one edge
/// to each input graph in two different ways.
pub fn figure1_merges() -> (Graph, Graph) {
    // Way 1: each side adds the disjoint edge {2,3}  →  two disjoint edges.
    let matching = Graph::from_edges(4, &[(0, 1), (2, 3)]);
    // Way 2: each side adds an edge incident to the existing one  →  a path.
    let path = Graph::from_edges(4, &[(0, 1), (1, 2)]);
    (matching, path)
}

/// The Theorem 4.4 lower-bound construction: encode `payload` (values in `[0, n)`)
/// into a pair of graphs `(G_A, G_B)` such that any protocol letting Bob recover a
/// graph isomorphic to `G_A` lets him recover `payload` — hence `Ω(d log n)` bits of
/// communication are unavoidable, where `d = payload.len()`.
///
/// The construction follows the proof: vertex groups `V_1` (`d` vertices) and `V_2`
/// (`n` vertices) are made individually identifiable by attaching a distinct number
/// of degree-1 pendant vertices to each; `G_B` has no `V_1`–`V_2` edges, and `G_A`
/// adds the edge `(v_i, v_{d + payload[i]})` for each `i`.
pub fn lower_bound_instance(n: usize, payload: &[u64]) -> (Graph, Graph) {
    let d = payload.len();
    assert!(payload.iter().all(|&s| (s as usize) < n), "payload symbols must be < n");
    // Pendant counts: vertex i in V1 ∪ V2 gets i + 1 pendant vertices.
    let core = d + n;
    let pendants: usize = (1..=core).sum();
    let total = core + pendants;
    let mut g_b = Graph::new(total);
    let mut next = core as u32;
    for i in 0..core {
        for _ in 0..=i {
            g_b.add_edge(i as u32, next);
            next += 1;
        }
    }
    let mut g_a = g_b.clone();
    for (i, &s) in payload.iter().enumerate() {
        g_a.add_edge(i as u32, (d + s as usize) as u32);
    }
    (g_a, g_b)
}

/// Decode the payload back out of a graph produced by [`lower_bound_instance`]
/// (or any relabeling of it): identify each core vertex by its number of degree-1
/// pendant neighbors, then read off the `V_1`–`V_2` edges.
pub fn lower_bound_decode(graph: &Graph, n: usize, d: usize) -> Option<Vec<u64>> {
    let core = d + n;
    // A core vertex with index i has exactly i+1 pendant (degree-1) neighbors.
    let mut by_pendants: Vec<Option<u32>> = vec![None; core + 1];
    for v in 0..graph.num_vertices() as u32 {
        let pendant_neighbors = graph.neighbors(v).filter(|&w| graph.degree(w) == 1).count();
        if pendant_neighbors >= 1 && pendant_neighbors <= core && graph.degree(v) > 1 {
            by_pendants[pendant_neighbors] = Some(v);
        }
    }
    let mut payload = vec![0u64; d];
    for i in 0..d {
        let vi = by_pendants[i + 1]?;
        // Find the unique neighbor of vi that is a V2 core vertex.
        let mut symbol = None;
        for w in graph.neighbors(vi) {
            if graph.degree(w) == 1 {
                continue; // pendant
            }
            let w_pendants = graph.neighbors(w).filter(|&x| graph.degree(x) == 1).count();
            if w_pendants > d {
                symbol = Some((w_pendants - d - 1) as u64);
            }
        }
        payload[i] = symbol?;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    #[test]
    fn isomorphism_protocol_accepts_isomorphic_graphs() {
        let a = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = Graph::from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        let shuffled = a.relabel(&[2, 0, 4, 1, 3]);
        let (same, stats) = isomorphism_protocol(&a, &b, 7);
        assert!(same);
        assert!(isomorphism_protocol(&a, &shuffled, 9).0);
        assert!(stats.total_bytes() <= 16, "O(log n) bits: got {}", stats.total_bytes());
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn isomorphism_protocol_rejects_non_isomorphic_graphs() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!isomorphism_protocol(&path, &star, 3).0);
    }

    #[test]
    fn exhaustive_reconciliation_recovers_small_perturbations() {
        let mut rng = Xoshiro256::new(11);
        let base = Graph::gnp(7, 0.4, &mut rng);
        for d in 1..=2usize {
            let alice = base.perturb(d, &mut rng);
            let (result, stats) = reconcile_exhaustive(&alice, &base, d, 5);
            let recovered = result.expect("within budget");
            assert!(recovered.is_isomorphic_bruteforce(&alice), "d = {d}");
            assert!(stats.total_bytes() <= 32);
        }
    }

    #[test]
    fn exhaustive_reconciliation_fails_when_budget_too_small() {
        let mut rng = Xoshiro256::new(13);
        let base = Graph::gnp(6, 0.5, &mut rng);
        let alice = base.perturb(3, &mut rng);
        // With probability 1 the fingerprint of a 3-flip graph does not match any
        // 1-flip candidate unless they happen to be isomorphic; allow either a miss
        // or an isomorphic hit but never a non-isomorphic "success".
        let (result, _) = reconcile_exhaustive(&alice, &base, 1, 3);
        if let Some(g) = result {
            assert!(g.is_isomorphic_bruteforce(&alice));
        }
    }

    #[test]
    fn figure1_merges_are_both_valid_but_not_isomorphic() {
        let (g_a, g_b) = figure1_instance();
        let (merge1, merge2) = figure1_merges();
        // Both merges are reachable from each input by adding exactly one edge.
        for merge in [&merge1, &merge2] {
            assert_eq!(merge.num_edges(), g_a.num_edges() + 1);
            assert_eq!(merge.num_edges(), g_b.num_edges() + 1);
        }
        assert!(!merge1.is_isomorphic_bruteforce(&merge2));
        // No single-sided addition can work: the edge counts would differ.
        assert_ne!(g_a.num_edges() + 1, g_b.num_edges());
    }

    #[test]
    fn figure1_merge_reachability_is_checked_exhaustively() {
        // Verify that each merge outcome really is obtainable by adding one edge to
        // *each* graph (i.e. it is a supergraph of both up to isomorphism).
        let (g_a, g_b) = figure1_instance();
        let (merge1, merge2) = figure1_merges();
        for merge in [&merge1, &merge2] {
            let mut found_a = false;
            let mut found_b = false;
            for u in 0..4u32 {
                for v in (u + 1)..4u32 {
                    if !g_a.has_edge(u, v) {
                        let mut c = g_a.clone();
                        c.add_edge(u, v);
                        found_a |= c.is_isomorphic_bruteforce(merge);
                    }
                    if !g_b.has_edge(u, v) {
                        let mut c = g_b.clone();
                        c.add_edge(u, v);
                        found_b |= c.is_isomorphic_bruteforce(merge);
                    }
                }
            }
            assert!(found_a && found_b);
        }
    }

    #[test]
    fn lower_bound_instance_roundtrips_payload() {
        let payload = vec![3u64, 0, 7, 2];
        let (g_a, g_b) = lower_bound_instance(8, &payload);
        assert_eq!(g_a.edge_difference(&g_b), payload.len());
        assert_eq!(lower_bound_decode(&g_a, 8, payload.len()), Some(payload.clone()));
        // Decoding survives relabeling, which is the heart of the encoding argument.
        let n_vertices = g_a.num_vertices();
        let labels: Vec<u32> = (0..n_vertices as u32).rev().collect();
        let relabeled = g_a.relabel(&labels);
        assert_eq!(lower_bound_decode(&relabeled, 8, payload.len()), Some(payload));
    }
}
