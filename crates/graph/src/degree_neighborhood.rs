//! Random-graph reconciliation via the degree-neighborhood signature scheme
//! (Section 5.2: Definition 5.4, Theorems 5.5 and 5.6).
//!
//! For sparser graphs the degree-ordering scheme breaks down (top degrees are no
//! longer well separated). Following Czajka & Pandurangan, each vertex's signature
//! becomes the *multiset of its neighbors' degrees*, truncated to degrees at most
//! `m ≈ pn`. A single edge change shifts two endpoint degrees by one, which perturbs
//! the signatures of all their neighbors — `O(pn)` multiset elements in total — but
//! Theorem 5.5 shows conforming vertices stay within multiset distance `2d` while
//! non-conforming vertices are at distance `≥ 2d+1` ("(pn, 4d+1)-disjoint"). Bob
//! therefore recovers Alice's signatures with *set-of-multisets* reconciliation
//! (Section 3.4 + Theorem 3.7), matches each of his vertices to the closest
//! signature, and finishes with labeled-edge set reconciliation.

use crate::graph::Graph;
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::ReconError;
use recon_set::{IbltSetProtocol, Multiset};
use recon_sos::multiset_of_multisets::{self, PairPacking, SetOfMultisets};
use recon_sos::SosParams;
use std::collections::{HashMap, HashSet};

/// Parameters of the degree-neighborhood scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeNeighborhoodParams {
    /// Degree cap `m` (the paper uses `pn`): only neighbor degrees `≤ m` enter the
    /// signature.
    pub degree_cap: usize,
    /// Public-coin seed shared by both parties.
    pub seed: u64,
}

impl DegreeNeighborhoodParams {
    /// The paper's choice `m = pn` for a `G(n, p)` base graph.
    pub fn for_gnp(n: usize, p: f64, seed: u64) -> Self {
        Self { degree_cap: ((n as f64) * p).ceil() as usize + 1, seed }
    }
}

/// The degree-neighborhood signature of one vertex: the multiset of the degrees
/// (`≤ degree_cap`) of its neighbors.
pub fn signature(graph: &Graph, v: u32, degree_cap: usize) -> Multiset {
    let mut m = Multiset::new();
    for w in graph.neighbors(v) {
        let deg = graph.degree(w);
        if deg <= degree_cap {
            m.insert(deg as u64);
        }
    }
    m
}

/// All vertex signatures, indexed by vertex.
pub fn signatures(graph: &Graph, degree_cap: usize) -> Vec<Multiset> {
    (0..graph.num_vertices() as u32).map(|v| signature(graph, v, degree_cap)).collect()
}

/// The smallest pairwise signature distance in the graph (Definition 5.4: the graph's
/// degree neighborhoods are `(m, k)`-disjoint iff this value is `≥ k`). Quadratic in
/// `n`; intended for experiments and tests.
pub fn min_disjointness(graph: &Graph, degree_cap: usize) -> usize {
    let sigs = signatures(graph, degree_cap);
    let mut best = usize::MAX;
    for i in 0..sigs.len() {
        for j in (i + 1)..sigs.len() {
            best = best.min(sigs[i].difference_size(&sigs[j]));
        }
    }
    if sigs.len() < 2 {
        0
    } else {
        best
    }
}

fn canonical_key(sig: &Multiset) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = sig.iter().collect();
    pairs.sort_unstable();
    pairs
}

/// One-round random-graph reconciliation with the degree-neighborhood scheme
/// (Theorem 5.6). `d` is the total number of edge changes between `G_A` and `G_B`.
///
/// Returns Bob's reconstruction of Alice's graph on her canonical labeling, plus the
/// measured communication. Fails with [`ReconError::SeparationFailure`] when the
/// signatures do not produce an unambiguous conforming labeling.
pub fn reconcile(
    alice: &Graph,
    bob: &Graph,
    d: usize,
    params: &DegreeNeighborhoodParams,
) -> Result<(Graph, CommStats), ReconError> {
    if alice.num_vertices() != bob.num_vertices() {
        return Err(ReconError::InvalidInput("graphs must have the same vertex count".into()));
    }
    let n = alice.num_vertices();
    let d = d.max(1);
    let mut transcript = Transcript::new();

    // --- Signature collections. ----------------------------------------------------
    let alice_sigs = signatures(alice, params.degree_cap);
    let bob_sigs = signatures(bob, params.degree_cap);
    {
        let distinct: HashSet<Vec<(u64, u64)>> = alice_sigs.iter().map(canonical_key).collect();
        if distinct.len() != alice_sigs.len() {
            return Err(ReconError::SeparationFailure(
                "two vertices share a degree-neighborhood signature".to_string(),
            ));
        }
    }
    let alice_collection = SetOfMultisets::from_children(alice_sigs.iter().cloned());
    let bob_collection = SetOfMultisets::from_children(bob_sigs.iter().cloned());

    // --- Set-of-multisets reconciliation (Section 3.4 + Theorem 3.7). --------------
    // Each edge change perturbs the signatures of the two endpoints and of all their
    // neighbors, i.e. O(pn) multiset elements; size the difference bound accordingly.
    let element_changes = 2 * d * (params.degree_cap + 2);
    let packing = PairPacking::default();
    let sos_params = SosParams::new(params.seed ^ 0xDE16, params.degree_cap.max(4));
    let (recovered_collection, sos_stats) = multiset_of_multisets::reconcile_known(
        &alice_collection,
        &bob_collection,
        element_changes,
        &sos_params,
        &packing,
    )?;
    transcript.record_bytes(
        Direction::AliceToBob,
        "degree-neighborhood signatures (set of multisets)",
        sos_stats.bytes_alice_to_bob,
    );

    // --- Conforming labeling. -------------------------------------------------------
    // Alice's canonical labeling: sort her signatures; ties are impossible (checked
    // above). Bob reproduces the same order from the recovered collection.
    let mut alice_sorted: Vec<Vec<(u64, u64)>> = recovered_collection
        .children()
        .iter()
        .map(canonical_key)
        .collect();
    alice_sorted.sort();
    let alice_rank: HashMap<Vec<(u64, u64)>, u32> = alice_sorted
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u32))
        .collect();
    if alice_rank.len() != n {
        return Err(ReconError::SeparationFailure(
            "recovered signature collection has duplicates".to_string(),
        ));
    }
    let alice_labels: Vec<u32> = alice_sigs
        .iter()
        .map(|s| alice_rank.get(&canonical_key(s)).copied())
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| {
            ReconError::SeparationFailure("Alice signature missing from recovered collection".into())
        })?;

    // Bob: exact matches first, then nearest-signature matching for perturbed ones.
    let recovered_multisets: Vec<Multiset> = alice_sorted
        .iter()
        .map(|pairs| {
            let mut m = Multiset::new();
            for &(x, c) in pairs {
                m.insert_n(x, c);
            }
            m
        })
        .collect();
    let mut bob_labels: Vec<Option<u32>> = vec![None; n];
    let mut used: HashSet<u32> = HashSet::new();
    let mut unmatched: Vec<u32> = Vec::new();
    for (v, sig) in bob_sigs.iter().enumerate() {
        if let Some(&rank) = alice_rank.get(&canonical_key(sig)) {
            bob_labels[v] = Some(rank);
            used.insert(rank);
        } else {
            unmatched.push(v as u32);
        }
    }
    for &v in &unmatched {
        let sig = &bob_sigs[v as usize];
        let mut candidates = recovered_multisets
            .iter()
            .enumerate()
            .filter(|(rank, m)| {
                !used.contains(&(*rank as u32)) && m.difference_size(sig) <= 2 * d
            })
            .map(|(rank, _)| rank as u32);
        let Some(rank) = candidates.next() else {
            return Err(ReconError::SeparationFailure(format!(
                "vertex {v} has no signature within distance {}",
                2 * d
            )));
        };
        if candidates.next().is_some() {
            return Err(ReconError::SeparationFailure(format!(
                "vertex {v} matches multiple signatures within distance {}",
                2 * d
            )));
        }
        bob_labels[v as usize] = Some(rank);
        used.insert(rank);
    }
    let bob_labels: Vec<u32> = bob_labels.into_iter().map(|l| l.expect("assigned")).collect();

    // --- Labeled edge reconciliation (Corollary 2.2), same round. -------------------
    let edge_protocol = IbltSetProtocol::new(params.seed ^ 0xED61);
    let alice_edges: HashSet<u64> = alice
        .edges()
        .iter()
        .map(|&(u, v)| Graph::edge_key(alice_labels[u as usize], alice_labels[v as usize]))
        .collect();
    let bob_edges: HashSet<u64> = bob
        .edges()
        .iter()
        .map(|&(u, v)| Graph::edge_key(bob_labels[u as usize], bob_labels[v as usize]))
        .collect();
    let edge_digest = edge_protocol.digest(&alice_edges, 2 * d + 4);
    transcript.record_parallel(Direction::AliceToBob, "labeled edge IBLT", &edge_digest);
    let recovered_edges = edge_protocol.reconcile(&edge_digest, &bob_edges)?;

    let mut result = Graph::new(n);
    for key in recovered_edges {
        let (u, v) = Graph::key_edge(key);
        result.add_edge(u, v);
    }
    Ok((result, transcript.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    #[test]
    fn signature_collects_capped_neighbor_degrees() {
        // Star graph: center 0 with leaves 1..4.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let center_sig = signature(&g, 0, 10);
        assert_eq!(center_sig.count(1), 4);
        let leaf_sig = signature(&g, 1, 10);
        assert_eq!(leaf_sig.count(4), 1);
        // With a cap below the center's degree, leaves see nothing.
        assert!(signature(&g, 1, 3).is_empty());
    }

    #[test]
    fn min_disjointness_detects_twin_vertices() {
        // Two leaves attached to the same vertex have identical signatures.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(min_disjointness(&g, 10), 0);
    }

    #[test]
    fn identical_graphs_reconcile() {
        let mut rng = Xoshiro256::new(2);
        let g = Graph::gnp(80, 0.15, &mut rng);
        let params = DegreeNeighborhoodParams::for_gnp(80, 0.15, 11);
        match reconcile(&g, &g, 1, &params) {
            Ok((recovered, stats)) => {
                assert_eq!(recovered.num_edges(), g.num_edges());
                assert_eq!(stats.rounds, 1);
            }
            Err(ReconError::SeparationFailure(_)) => {
                // Small sparse graphs can legitimately have twin vertices.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn reconciles_sparser_graphs_than_degree_ordering() {
        // A moderately sparse G(n, p): signatures are degree multisets, which remain
        // distinguishable even when top degrees collide.
        let mut rng = Xoshiro256::new(7);
        let base = Graph::gnp(128, 0.12, &mut rng);
        let alice = base.perturb(1, &mut rng);
        let bob = base.perturb(1, &mut rng);
        let params = DegreeNeighborhoodParams::for_gnp(128, 0.12, 23);
        match reconcile(&alice, &bob, 2, &params) {
            Ok((recovered, stats)) => {
                assert_eq!(recovered.num_edges(), alice.num_edges());
                let mut a_deg: Vec<usize> = (0..128u32).map(|v| alice.degree(v)).collect();
                let mut r_deg: Vec<usize> = (0..128u32).map(|v| recovered.degree(v)).collect();
                a_deg.sort_unstable();
                r_deg.sort_unstable();
                assert_eq!(a_deg, r_deg);
                assert!(stats.total_bytes() > 0);
            }
            Err(ReconError::SeparationFailure(_)) => {
                // Theorem 5.5 is asymptotic; at n = 128 occasional twin signatures
                // are expected and must surface as a detected failure.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn mismatched_vertex_counts_are_rejected() {
        let a = Graph::new(4);
        let b = Graph::new(5);
        let params = DegreeNeighborhoodParams { degree_cap: 3, seed: 1 };
        assert!(matches!(reconcile(&a, &b, 1, &params), Err(ReconError::InvalidInput(_))));
    }

    #[test]
    fn twin_vertices_surface_as_separation_failure() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let params = DegreeNeighborhoodParams { degree_cap: 10, seed: 3 };
        assert!(matches!(
            reconcile(&g, &g, 1, &params),
            Err(ReconError::SeparationFailure(_))
        ));
    }
}
