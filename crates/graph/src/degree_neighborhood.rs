//! Random-graph reconciliation via the degree-neighborhood signature scheme
//! (Section 5.2: Definition 5.4, Theorems 5.5 and 5.6).
//!
//! For sparser graphs the degree-ordering scheme breaks down (top degrees are no
//! longer well separated). Following Czajka & Pandurangan, each vertex's signature
//! becomes the *multiset of its neighbors' degrees*, truncated to degrees at most
//! `m ≈ pn`. A single edge change shifts two endpoint degrees by one, which perturbs
//! the signatures of all their neighbors — `O(pn)` multiset elements in total — but
//! Theorem 5.5 shows conforming vertices stay within multiset distance `2d` while
//! non-conforming vertices are at distance `≥ 2d+1` ("(pn, 4d+1)-disjoint"). Bob
//! therefore recovers Alice's signatures with *set-of-multisets* reconciliation
//! (Section 3.4 + Theorem 3.7), matches each of his vertices to the closest
//! signature, and finishes with labeled-edge set reconciliation.

use crate::graph::Graph;
use crate::session;
use recon_base::ReconError;
use recon_protocol::{Outcome, SessionBuilder};
use recon_set::Multiset;
use recon_sos::multiset_of_multisets::{self, PairPacking, SetOfMultisets};
use recon_sos::SosParams;

/// Parameters of the degree-neighborhood scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeNeighborhoodParams {
    /// Degree cap `m` (the paper uses `pn`): only neighbor degrees `≤ m` enter the
    /// signature.
    pub degree_cap: usize,
    /// Public-coin seed shared by both parties.
    pub seed: u64,
}

impl DegreeNeighborhoodParams {
    /// The paper's choice `m = pn` for a `G(n, p)` base graph.
    pub fn for_gnp(n: usize, p: f64, seed: u64) -> Self {
        Self { degree_cap: ((n as f64) * p).ceil() as usize + 1, seed }
    }
}

/// The degree-neighborhood signature of one vertex: the multiset of the degrees
/// (`≤ degree_cap`) of its neighbors.
pub fn signature(graph: &Graph, v: u32, degree_cap: usize) -> Multiset {
    let mut m = Multiset::new();
    for w in graph.neighbors(v) {
        let deg = graph.degree(w);
        if deg <= degree_cap {
            m.insert(deg as u64);
        }
    }
    m
}

/// All vertex signatures, indexed by vertex.
pub fn signatures(graph: &Graph, degree_cap: usize) -> Vec<Multiset> {
    (0..graph.num_vertices() as u32).map(|v| signature(graph, v, degree_cap)).collect()
}

/// The smallest pairwise signature distance in the graph (Definition 5.4: the graph's
/// degree neighborhoods are `(m, k)`-disjoint iff this value is `≥ k`). Quadratic in
/// `n`; intended for experiments and tests.
pub fn min_disjointness(graph: &Graph, degree_cap: usize) -> usize {
    let sigs = signatures(graph, degree_cap);
    let mut best = usize::MAX;
    for i in 0..sigs.len() {
        for j in (i + 1)..sigs.len() {
            best = best.min(sigs[i].difference_size(&sigs[j]));
        }
    }
    if sigs.len() < 2 {
        0
    } else {
        best
    }
}

pub(crate) fn canonical_key(sig: &Multiset) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = sig.iter().collect();
    pairs.sort_unstable();
    pairs
}

/// One-round random-graph reconciliation with the degree-neighborhood scheme
/// (Theorem 5.6). `d` is the total number of edge changes between `G_A` and `G_B`.
///
/// Returns Bob's reconstruction of Alice's graph on her canonical labeling, plus the
/// measured communication. Fails with [`ReconError::SeparationFailure`] when the
/// signatures do not produce an unambiguous conforming labeling. Delegates to the
/// sans-I/O party pair of [`crate::session`] driven over an in-memory link.
pub fn reconcile(
    alice: &Graph,
    bob: &Graph,
    d: usize,
    params: &DegreeNeighborhoodParams,
) -> Result<Outcome<Graph>, ReconError> {
    if alice.num_vertices() != bob.num_vertices() {
        return Err(ReconError::InvalidInput("graphs must have the same vertex count".into()));
    }
    // The two parties must agree on the packed child-size bound; the local driver
    // derives it from both inputs, like the legacy implementation did.
    let packing = PairPacking::default();
    let alice_collection = SetOfMultisets::from_children(signatures(alice, params.degree_cap));
    let bob_collection = SetOfMultisets::from_children(signatures(bob, params.degree_cap));
    let base_params = SosParams::new(params.seed ^ 0xDE16, params.degree_cap.max(4));
    let resolved = multiset_of_multisets::resolved_params(
        &alice_collection,
        &bob_collection,
        &base_params,
        &packing,
    )?;
    SessionBuilder::new(params.seed).run(
        session::degree_neighborhood_alice(alice, d, params, &resolved)?,
        session::degree_neighborhood_bob(bob, d, params, &resolved)?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    #[test]
    fn signature_collects_capped_neighbor_degrees() {
        // Star graph: center 0 with leaves 1..4.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let center_sig = signature(&g, 0, 10);
        assert_eq!(center_sig.count(1), 4);
        let leaf_sig = signature(&g, 1, 10);
        assert_eq!(leaf_sig.count(4), 1);
        // With a cap below the center's degree, leaves see nothing.
        assert!(signature(&g, 1, 3).is_empty());
    }

    #[test]
    fn min_disjointness_detects_twin_vertices() {
        // Two leaves attached to the same vertex have identical signatures.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(min_disjointness(&g, 10), 0);
    }

    #[test]
    fn identical_graphs_reconcile() {
        let mut rng = Xoshiro256::new(2);
        let g = Graph::gnp(80, 0.15, &mut rng);
        let params = DegreeNeighborhoodParams::for_gnp(80, 0.15, 11);
        match reconcile(&g, &g, 1, &params) {
            Ok(outcome) => {
                assert_eq!(outcome.recovered.num_edges(), g.num_edges());
                assert_eq!(outcome.stats.rounds, 1);
            }
            Err(ReconError::SeparationFailure(_)) => {
                // Small sparse graphs can legitimately have twin vertices.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn reconciles_sparser_graphs_than_degree_ordering() {
        // A moderately sparse G(n, p): signatures are degree multisets, which remain
        // distinguishable even when top degrees collide.
        let mut rng = Xoshiro256::new(7);
        let base = Graph::gnp(128, 0.12, &mut rng);
        let alice = base.perturb(1, &mut rng);
        let bob = base.perturb(1, &mut rng);
        let params = DegreeNeighborhoodParams::for_gnp(128, 0.12, 23);
        match reconcile(&alice, &bob, 2, &params) {
            Ok(outcome) => {
                assert_eq!(outcome.recovered.num_edges(), alice.num_edges());
                let mut a_deg: Vec<usize> = (0..128u32).map(|v| alice.degree(v)).collect();
                let mut r_deg: Vec<usize> =
                    (0..128u32).map(|v| outcome.recovered.degree(v)).collect();
                a_deg.sort_unstable();
                r_deg.sort_unstable();
                assert_eq!(a_deg, r_deg);
                assert!(outcome.stats.total_bytes() > 0);
            }
            Err(ReconError::SeparationFailure(_)) => {
                // Theorem 5.5 is asymptotic; at n = 128 occasional twin signatures
                // are expected and must surface as a detected failure.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn mismatched_vertex_counts_are_rejected() {
        let a = Graph::new(4);
        let b = Graph::new(5);
        let params = DegreeNeighborhoodParams { degree_cap: 3, seed: 1 };
        assert!(matches!(reconcile(&a, &b, 1, &params), Err(ReconError::InvalidInput(_))));
    }

    #[test]
    fn twin_vertices_surface_as_separation_failure() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let params = DegreeNeighborhoodParams { degree_cap: 10, seed: 3 };
        assert!(matches!(reconcile(&g, &g, 1, &params), Err(ReconError::SeparationFailure(_))));
    }
}
