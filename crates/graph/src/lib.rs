//! # recon-graph
//!
//! Graph reconciliation built on set-of-sets reconciliation — Sections 4, 5 and 6 of
//! *"Reconciling Graphs and Sets of Sets"* (Mitzenmacher & Morgan, PODS 2018).
//!
//! Alice and Bob hold *unlabeled* graphs on `n` vertices that become isomorphic
//! after at most `d` edge changes; Bob must end up with a graph isomorphic to
//! Alice's, using communication close to `O(d)` words. (For labeled graphs the
//! problem is just set reconciliation over the edge sets — see `recon-set`.)
//!
//! * [`graph`] — the undirected-graph substrate: adjacency structure, `G(n, p)`
//!   generation, the perturbation model, brute-force isomorphism for small graphs.
//! * [`general`] — worst-case protocols (Section 4): the `O(log n)`-bit isomorphism
//!   fingerprint (Theorem 4.1), exhaustive reconciliation (Theorem 4.3), the
//!   Figure 1 merge-ambiguity instance, and the Theorem 4.4 lower-bound encoding.
//! * [`degree_order`] — the degree-ordering signature scheme for dense-ish `G(n,p)`
//!   (Section 5.1, Theorems 5.2/5.3).
//! * [`degree_neighborhood`] — the neighbor-degree-multiset scheme for sparser
//!   `G(n,p)` (Section 5.2, Theorems 5.5/5.6).
//! * [`forest`] — rooted-forest reconciliation via signature multisets (Section 6,
//!   Theorem 6.1).
//!
//! ```
//! use recon_base::rng::Xoshiro256;
//! use recon_graph::{degree_order, Graph};
//!
//! let mut rng = Xoshiro256::new(7);
//! let base = Graph::gnp(200, 0.35, &mut rng);
//! let alice = base.perturb(2, &mut rng);   // Alice's copy drifted by 2 edges
//! let bob = base.perturb(2, &mut rng);     // Bob's copy drifted by 2 other edges
//!
//! let params = degree_order::DegreeOrderParams { h: 16, seed: 99 };
//! if let Ok(outcome) = degree_order::reconcile(&alice, &bob, 4, &params) {
//!     assert_eq!(outcome.recovered.num_edges(), alice.num_edges());
//!     println!("graph reconciled with {}", outcome.stats);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree_neighborhood;
pub mod degree_order;
pub mod forest;
pub mod general;
pub mod graph;
pub mod session;

pub use forest::Forest;
pub use graph::Graph;
