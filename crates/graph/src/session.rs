//! Sans-I/O [`Party`] implementations of the graph and forest schemes.
//!
//! Each scheme embeds a complete set-of-sets (or set-of-multisets) session via
//! [`recon_protocol::Nested`]: the embedded envelopes travel through the outer
//! session uncharged while their would-be cost accumulates, and once the
//! sub-protocol completes Alice emits a single aggregate charge — matching how
//! the paper (and the legacy drivers) account the signature reconciliation as
//! one message — followed, in the same round, by the scheme's finale (the
//! labeled-edge IBLT, or the root-signature hash for forests).

use crate::degree_neighborhood::{self, DegreeNeighborhoodParams};
use crate::degree_order::{self, DegreeOrderParams, DegreeOrderSignatures};
use crate::forest::Forest;
use crate::graph::Graph;
use recon_base::ReconError;
use recon_protocol::{Amplification, Envelope, Nested, Party, Step};
use recon_set::{IbltSetProtocol, Multiset};
use recon_sos::multiset_of_multisets::{PairPacking, SetOfMultisets};
use recon_sos::{session as sos_session, ChildSet, SetOfSets, SosParams};
use std::collections::{HashMap, HashSet};

/// Envelope tag: Bob's uncharged acknowledgement that the embedded signature
/// reconciliation completed.
pub const TAG_GRAPH_ACK: u16 = 0x6001;
/// Envelope tag: Alice's aggregate charge for the embedded reconciliation.
pub const TAG_GRAPH_CHARGE: u16 = 0x6002;
/// Envelope tag: the labeled-edge IBLT digest (same round as the charge).
pub const TAG_GRAPH_EDGES: u16 = 0x6003;
/// Envelope tag: the root-signature hash of forest reconciliation.
pub const TAG_GRAPH_ROOTS: u16 = 0x6004;

type BoxedAlice = Box<dyn Party<Output = ()>>;
type BoxedSosBob = Box<dyn Party<Output = SetOfSets>>;
type BoxedMomBob = Box<dyn Party<Output = SetOfMultisets>>;

/// The amplification budget of the embedded cascading sessions (Theorem 3.7's
/// replication, as in the legacy drivers).
fn embedded_amplification() -> Amplification {
    Amplification::replicate(4)
}

fn map_signature_errors(error: ReconError) -> ReconError {
    match error {
        ReconError::PeelingFailure { .. }
        | ReconError::ChecksumFailure
        | ReconError::NoMatchingChild { .. } => ReconError::SeparationFailure(
            "signature sets changed by more than the bound; the top-h ordering did not \
             conform under the perturbation"
                .to_string(),
        ),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Degree-ordering scheme (Section 5.1, Theorem 5.2)
// ---------------------------------------------------------------------------

/// Alice's shared shape across all three graph schemes: run the embedded
/// signature sub-session, and on Bob's acknowledgement emit the aggregate
/// charge for it plus the scheme's finale envelope (labeled-edge IBLT or
/// root-signature hash) in the same round.
pub struct SchemeAlice {
    nested: Nested<BoxedAlice>,
    charge_label: &'static str,
    finale: Envelope,
    sent_finale: bool,
    outbox: std::collections::VecDeque<Envelope>,
}

impl SchemeAlice {
    fn new(inner: BoxedAlice, charge_label: &'static str, finale: Envelope) -> Self {
        Self {
            nested: Nested::new(inner),
            charge_label,
            finale,
            sent_finale: false,
            outbox: std::collections::VecDeque::new(),
        }
    }
}

impl Party for SchemeAlice {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.nested.poll_send().or_else(|| self.outbox.pop_front())
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        if Nested::<BoxedAlice>::is_nested(&envelope) {
            self.nested.handle(envelope)?;
            return Ok(Step::Continue);
        }
        match envelope.tag {
            TAG_GRAPH_ACK if !self.sent_finale => {
                self.sent_finale = true;
                // The embedded exchange is complete: charge its aggregate cost as a
                // single message and send the finale in the same round.
                self.outbox.push_back(Envelope::charge(
                    TAG_GRAPH_CHARGE,
                    self.charge_label,
                    self.nested.charged_bytes(),
                    false,
                ));
                self.outbox.push_back(self.finale.clone());
                Ok(Step::Continue)
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for graph-scheme Alice",
                envelope.tag
            ))),
        }
    }
}

/// Build Alice's side of Theorem 5.2 from her graph alone.
pub fn degree_order_alice(
    alice: &Graph,
    d: usize,
    params: &DegreeOrderParams,
) -> Result<SchemeAlice, ReconError> {
    let n = alice.num_vertices();
    let h = params.h.min(n);
    let d = d.max(1);

    let alice_sigs = degree_order::signatures(alice, h);
    let alice_sos = degree_order::signature_set_of_sets(&alice_sigs)?;
    let sos_params = SosParams::new(params.seed ^ 0xD06, h.max(1));
    let inner = sos_session::cascading_known_alice(
        &alice_sos,
        2 * d,
        &sos_params,
        embedded_amplification(),
    )?;

    let (alice_labels, _) = degree_order::label_map_from_signatures(&alice_sigs, h);
    let edge_protocol = IbltSetProtocol::new(params.seed ^ 0xED6E);
    let alice_edges: HashSet<u64> = alice
        .edges()
        .iter()
        .map(|&(u, v)| Graph::edge_key(alice_labels[&u], alice_labels[&v]))
        .collect();
    let edge_digest = edge_protocol.digest(&alice_edges, 2 * d + 4);

    Ok(SchemeAlice::new(
        Box::new(inner),
        "signature set-of-sets (cascading IBLTs)",
        Envelope::parallel(TAG_GRAPH_EDGES, "labeled edge IBLT", &edge_digest),
    ))
}

/// Bob's side of the degree-ordering scheme.
pub struct DegreeOrderBob {
    nested: Nested<BoxedSosBob>,
    bob_sigs: DegreeOrderSignatures,
    bob_edges_raw: Vec<(u32, u32)>,
    n: usize,
    h: usize,
    d: usize,
    seed: u64,
    recovered: Option<SetOfSets>,
    outbox: std::collections::VecDeque<Envelope>,
}

/// Build Bob's side of Theorem 5.2 from his graph alone.
pub fn degree_order_bob(
    bob: &Graph,
    d: usize,
    params: &DegreeOrderParams,
) -> Result<DegreeOrderBob, ReconError> {
    let n = bob.num_vertices();
    let h = params.h.min(n);
    let d = d.max(1);

    let bob_sigs = degree_order::signatures(bob, h);
    let bob_sos = degree_order::signature_set_of_sets(&bob_sigs)?;
    let sos_params = SosParams::new(params.seed ^ 0xD06, h.max(1));
    let inner = sos_session::cascading_known_bob(&bob_sos, &sos_params, embedded_amplification());

    Ok(DegreeOrderBob {
        nested: Nested::new(Box::new(inner)),
        bob_sigs,
        bob_edges_raw: bob.edges(),
        n,
        h,
        d,
        seed: params.seed,
        recovered: None,
        outbox: std::collections::VecDeque::new(),
    })
}

impl Party for DegreeOrderBob {
    type Output = Graph;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.nested.poll_send().or_else(|| self.outbox.pop_front())
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<Graph>, ReconError> {
        if Nested::<BoxedSosBob>::is_nested(&envelope) {
            match self.nested.handle(envelope).map_err(map_signature_errors)? {
                Step::Done(recovered) => {
                    self.recovered = Some(recovered);
                    self.outbox.push_back(Envelope::control(
                        TAG_GRAPH_ACK,
                        "signature reconciliation complete",
                        &(),
                    ));
                }
                Step::Continue => {}
            }
            return Ok(Step::Continue);
        }
        match envelope.tag {
            TAG_GRAPH_CHARGE => Ok(Step::Continue),
            TAG_GRAPH_EDGES => {
                let recovered = self.recovered.take().ok_or_else(|| {
                    ReconError::InvalidInput(
                        "edge digest arrived before the signature reconciliation".to_string(),
                    )
                })?;
                let recovered_sigs: Vec<ChildSet> = recovered.children().to_vec();

                // --- Conforming labeling (Definition 5.1). -----------------------
                let mut bob_labels: HashMap<u32, u32> = HashMap::new();
                for (rank, &v) in self.bob_sigs.order[..self.h].iter().enumerate() {
                    bob_labels.insert(v, rank as u32);
                }
                for (v, sig) in &self.bob_sigs.signatures {
                    let mut matches = recovered_sigs.iter().enumerate().filter(|(_, alice_sig)| {
                        sig.symmetric_difference(alice_sig).count() <= self.d
                    });
                    let Some((idx, _)) = matches.next() else {
                        return Err(ReconError::SeparationFailure(format!(
                            "vertex {v} has no signature within distance {}",
                            self.d
                        )));
                    };
                    if matches.next().is_some() {
                        return Err(ReconError::SeparationFailure(format!(
                            "vertex {v} matches multiple signatures within distance {}",
                            self.d
                        )));
                    }
                    bob_labels.insert(*v, (self.h + idx) as u32);
                }
                if bob_labels.values().collect::<HashSet<_>>().len() != self.n {
                    return Err(ReconError::SeparationFailure(
                        "conforming labeling is not a bijection".to_string(),
                    ));
                }

                // --- Labeled edge reconciliation (Corollary 2.2). ----------------
                let edge_protocol = IbltSetProtocol::new(self.seed ^ 0xED6E);
                let edge_digest = envelope.decode_payload()?;
                let bob_edges: HashSet<u64> = self
                    .bob_edges_raw
                    .iter()
                    .map(|&(u, v)| Graph::edge_key(bob_labels[&u], bob_labels[&v]))
                    .collect();
                let recovered_edges =
                    edge_protocol.reconcile(&edge_digest, &bob_edges).map_err(|e| {
                        // If the labeled-edge difference blew past 2d, the labelings
                        // did not conform: the underlying cause is insufficient
                        // separation, so report it as such.
                        match e {
                            ReconError::PeelingFailure { .. } | ReconError::ChecksumFailure => {
                                ReconError::SeparationFailure(
                                    "labeled edge difference exceeded the bound; anchor \
                                     ordering or signature matching did not conform"
                                        .to_string(),
                                )
                            }
                            other => other,
                        }
                    })?;

                let mut result = Graph::new(self.n);
                for key in recovered_edges {
                    let (u, v) = Graph::key_edge(key);
                    result.add_edge(u, v);
                }
                Ok(Step::Done(result))
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for degree-order Bob",
                envelope.tag
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Degree-neighborhood scheme (Section 5.2, Theorem 5.6)
// ---------------------------------------------------------------------------

/// Build Alice's side of Theorem 5.6. `resolved` must carry the packed
/// `max_child_size` both parties agreed on (see
/// [`recon_sos::multiset_of_multisets::resolved_params`]).
pub fn degree_neighborhood_alice(
    alice: &Graph,
    d: usize,
    params: &DegreeNeighborhoodParams,
    resolved: &SosParams,
) -> Result<SchemeAlice, ReconError> {
    let d = d.max(1);
    let alice_sigs = degree_neighborhood::signatures(alice, params.degree_cap);
    {
        let distinct: HashSet<Vec<(u64, u64)>> =
            alice_sigs.iter().map(degree_neighborhood::canonical_key).collect();
        if distinct.len() != alice_sigs.len() {
            return Err(ReconError::SeparationFailure(
                "two vertices share a degree-neighborhood signature".to_string(),
            ));
        }
    }
    let alice_collection = SetOfMultisets::from_children(alice_sigs.iter().cloned());
    let element_changes = 2 * d * (params.degree_cap + 2);
    let packing = PairPacking::default();
    let inner = sos_session::mom_known_alice(
        &alice_collection,
        element_changes,
        resolved,
        &packing,
        embedded_amplification(),
    )?;

    // Alice's canonical labeling: rank of each signature in the sorted distinct
    // signature list (identical to the rank Bob derives from the recovered
    // collection whenever the reconciliation succeeds).
    let mut alice_sorted: Vec<Vec<(u64, u64)>> =
        alice_sigs.iter().map(degree_neighborhood::canonical_key).collect();
    alice_sorted.sort();
    let alice_rank: HashMap<Vec<(u64, u64)>, u32> =
        alice_sorted.iter().enumerate().map(|(i, k)| (k.clone(), i as u32)).collect();
    let alice_labels: Vec<u32> = alice_sigs
        .iter()
        .map(|s| alice_rank.get(&degree_neighborhood::canonical_key(s)).copied())
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| {
            ReconError::SeparationFailure("Alice signature missing from her own ranking".into())
        })?;

    let edge_protocol = IbltSetProtocol::new(params.seed ^ 0xED61);
    let alice_edges: HashSet<u64> = alice
        .edges()
        .iter()
        .map(|&(u, v)| Graph::edge_key(alice_labels[u as usize], alice_labels[v as usize]))
        .collect();
    let edge_digest = edge_protocol.digest(&alice_edges, 2 * d + 4);

    Ok(SchemeAlice::new(
        Box::new(inner),
        "degree-neighborhood signatures (set of multisets)",
        Envelope::parallel(TAG_GRAPH_EDGES, "labeled edge IBLT", &edge_digest),
    ))
}

/// Bob's side of the degree-neighborhood scheme.
pub struct DegreeNeighborhoodBob {
    nested: Nested<BoxedMomBob>,
    bob_sigs: Vec<Multiset>,
    bob_edges_raw: Vec<(u32, u32)>,
    n: usize,
    d: usize,
    seed: u64,
    recovered: Option<SetOfMultisets>,
    outbox: std::collections::VecDeque<Envelope>,
}

/// Build Bob's side of Theorem 5.6 from his graph alone.
pub fn degree_neighborhood_bob(
    bob: &Graph,
    d: usize,
    params: &DegreeNeighborhoodParams,
    resolved: &SosParams,
) -> Result<DegreeNeighborhoodBob, ReconError> {
    let d = d.max(1);
    let bob_sigs = degree_neighborhood::signatures(bob, params.degree_cap);
    let bob_collection = SetOfMultisets::from_children(bob_sigs.iter().cloned());
    let packing = PairPacking::default();
    let inner =
        sos_session::mom_known_bob(&bob_collection, resolved, &packing, embedded_amplification())?;
    Ok(DegreeNeighborhoodBob {
        nested: Nested::new(Box::new(inner)),
        bob_sigs,
        bob_edges_raw: bob.edges(),
        n: bob.num_vertices(),
        d,
        seed: params.seed,
        recovered: None,
        outbox: std::collections::VecDeque::new(),
    })
}

impl Party for DegreeNeighborhoodBob {
    type Output = Graph;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.nested.poll_send().or_else(|| self.outbox.pop_front())
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<Graph>, ReconError> {
        if Nested::<BoxedMomBob>::is_nested(&envelope) {
            if let Step::Done(recovered) = self.nested.handle(envelope)? {
                self.recovered = Some(recovered);
                self.outbox.push_back(Envelope::control(
                    TAG_GRAPH_ACK,
                    "signature reconciliation complete",
                    &(),
                ));
            }
            return Ok(Step::Continue);
        }
        match envelope.tag {
            TAG_GRAPH_CHARGE => Ok(Step::Continue),
            TAG_GRAPH_EDGES => {
                let recovered = self.recovered.take().ok_or_else(|| {
                    ReconError::InvalidInput(
                        "edge digest arrived before the signature reconciliation".to_string(),
                    )
                })?;

                // --- Conforming labeling. ---------------------------------------
                let mut alice_sorted: Vec<Vec<(u64, u64)>> =
                    recovered.children().iter().map(degree_neighborhood::canonical_key).collect();
                alice_sorted.sort();
                let alice_rank: HashMap<Vec<(u64, u64)>, u32> =
                    alice_sorted.iter().enumerate().map(|(i, k)| (k.clone(), i as u32)).collect();
                if alice_rank.len() != self.n {
                    return Err(ReconError::SeparationFailure(
                        "recovered signature collection has duplicates".to_string(),
                    ));
                }

                let recovered_multisets: Vec<Multiset> = alice_sorted
                    .iter()
                    .map(|pairs| {
                        let mut m = Multiset::new();
                        for &(x, c) in pairs {
                            m.insert_n(x, c);
                        }
                        m
                    })
                    .collect();
                let mut bob_labels: Vec<Option<u32>> = vec![None; self.n];
                let mut used: HashSet<u32> = HashSet::new();
                let mut unmatched: Vec<u32> = Vec::new();
                for (v, sig) in self.bob_sigs.iter().enumerate() {
                    if let Some(&rank) = alice_rank.get(&degree_neighborhood::canonical_key(sig)) {
                        bob_labels[v] = Some(rank);
                        used.insert(rank);
                    } else {
                        unmatched.push(v as u32);
                    }
                }
                for &v in &unmatched {
                    let sig = &self.bob_sigs[v as usize];
                    let mut candidates = recovered_multisets
                        .iter()
                        .enumerate()
                        .filter(|(rank, m)| {
                            !used.contains(&(*rank as u32)) && m.difference_size(sig) <= 2 * self.d
                        })
                        .map(|(rank, _)| rank as u32);
                    let Some(rank) = candidates.next() else {
                        return Err(ReconError::SeparationFailure(format!(
                            "vertex {v} has no signature within distance {}",
                            2 * self.d
                        )));
                    };
                    if candidates.next().is_some() {
                        return Err(ReconError::SeparationFailure(format!(
                            "vertex {v} matches multiple signatures within distance {}",
                            2 * self.d
                        )));
                    }
                    bob_labels[v as usize] = Some(rank);
                    used.insert(rank);
                }
                let bob_labels: Vec<u32> =
                    bob_labels.into_iter().map(|l| l.expect("assigned")).collect();

                // --- Labeled edge reconciliation, same round. -------------------
                let edge_protocol = IbltSetProtocol::new(self.seed ^ 0xED61);
                let edge_digest = envelope.decode_payload()?;
                let bob_edges: HashSet<u64> = self
                    .bob_edges_raw
                    .iter()
                    .map(|&(u, v)| Graph::edge_key(bob_labels[u as usize], bob_labels[v as usize]))
                    .collect();
                let recovered_edges = edge_protocol.reconcile(&edge_digest, &bob_edges)?;

                let mut result = Graph::new(self.n);
                for key in recovered_edges {
                    let (u, v) = Graph::key_edge(key);
                    result.add_edge(u, v);
                }
                Ok(Step::Done(result))
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for degree-neighborhood Bob",
                envelope.tag
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Forest reconciliation (Section 6, Theorem 6.1)
// ---------------------------------------------------------------------------

/// Build Alice's side of Theorem 6.1. `resolved` must carry the packed
/// `max_child_size` both parties agreed on.
pub fn forest_alice(
    alice: &Forest,
    d: usize,
    sigma: usize,
    seed: u64,
    resolved: &SosParams,
) -> Result<SchemeAlice, ReconError> {
    let d = d.max(1);
    let sigma = sigma.max(1);
    let alice_collection = alice.vertex_multisets(seed);
    // Each edge update changes the signatures of at most σ ancestors; each changed
    // signature touches its own multiset and its parent's multiset.
    let element_changes = d * (sigma + 2);
    let packing = PairPacking::default();
    let inner = sos_session::mom_known_alice(
        &alice_collection,
        element_changes,
        resolved,
        &packing,
        embedded_amplification(),
    )?;

    let alice_sigs = alice.signatures(seed);
    let alice_root_hash = recon_base::hash::hash_u64_set(
        alice.roots().into_iter().map(|r| alice_sigs[r as usize]),
        seed ^ 0x2007,
    );
    Ok(SchemeAlice::new(
        Box::new(inner),
        "vertex/edge signature multisets",
        Envelope::parallel(TAG_GRAPH_ROOTS, "root signature hash", &alice_root_hash),
    ))
}

/// Bob's side of forest reconciliation.
pub struct ForestBob {
    nested: Nested<BoxedMomBob>,
    seed: u64,
    recovered: Option<SetOfMultisets>,
    outbox: std::collections::VecDeque<Envelope>,
}

/// Build Bob's side of Theorem 6.1 from his forest alone.
pub fn forest_bob(bob: &Forest, seed: u64, resolved: &SosParams) -> Result<ForestBob, ReconError> {
    let bob_collection = bob.vertex_multisets(seed);
    let packing = PairPacking::default();
    let inner =
        sos_session::mom_known_bob(&bob_collection, resolved, &packing, embedded_amplification())?;
    Ok(ForestBob {
        nested: Nested::new(Box::new(inner)),
        seed,
        recovered: None,
        outbox: std::collections::VecDeque::new(),
    })
}

impl Party for ForestBob {
    type Output = Forest;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.nested.poll_send().or_else(|| self.outbox.pop_front())
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<Forest>, ReconError> {
        if Nested::<BoxedMomBob>::is_nested(&envelope) {
            if let Step::Done(recovered) = self.nested.handle(envelope)? {
                self.recovered = Some(recovered);
                self.outbox.push_back(Envelope::control(
                    TAG_GRAPH_ACK,
                    "signature reconciliation complete",
                    &(),
                ));
            }
            return Ok(Step::Continue);
        }
        match envelope.tag {
            TAG_GRAPH_CHARGE => Ok(Step::Continue),
            TAG_GRAPH_ROOTS => {
                let alice_root_hash: u64 = envelope.decode_payload()?;
                let recovered = self.recovered.take().ok_or_else(|| {
                    ReconError::InvalidInput(
                        "root hash arrived before the signature reconciliation".to_string(),
                    )
                })?;
                let forest = crate::forest::reconstruct(&recovered)?;
                let forest_sigs = forest.signatures(self.seed);
                let forest_root_hash = recon_base::hash::hash_u64_set(
                    forest.roots().into_iter().map(|r| forest_sigs[r as usize]),
                    self.seed ^ 0x2007,
                );
                if forest.num_vertices() != recovered.num_children()
                    || forest_root_hash != alice_root_hash
                {
                    return Err(ReconError::ChecksumFailure);
                }
                Ok(Step::Done(forest))
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for forest Bob",
                envelope.tag
            ))),
        }
    }
}
