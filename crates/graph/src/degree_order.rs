//! Random-graph reconciliation via the degree-ordering signature scheme
//! (Section 5.1: Definition 5.1, Theorems 5.2 and 5.3).
//!
//! Vertices are sorted by degree. The `h` highest-degree vertices are identified by
//! their degree rank (the `(h, d+1, …)` separation guarantees the ranking is immune
//! to `d` edge changes); every other vertex gets as its signature the *set* of
//! top-`h` vertices it is adjacent to. Because the base graph is
//! `(h, d+1, 2d+1)`-separated, conforming vertices have signatures within Hamming
//! distance `d` of each other while non-conforming vertices are at distance `≥ d+1`,
//! so recovering Alice's signature *set of sets* (Theorem 3.7) lets Bob build a
//! conforming labeling, after which the edges are reconciled as an ordinary labeled
//! set (Corollary 2.2).

use crate::graph::Graph;
use crate::session;
use recon_base::ReconError;
use recon_protocol::{Outcome, SessionBuilder};
use recon_sos::{ChildSet, SetOfSets};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Parameters of the degree-ordering scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeOrderParams {
    /// Number of top-degree "anchor" vertices `h`.
    pub h: usize,
    /// Public-coin seed shared by both parties.
    pub seed: u64,
}

/// The value of `h` suggested by Theorem 5.3 for failure probability `δ`:
/// `h = (1/4) (δ/(d+1))^{1/3} (p(1−p)n / ln n)^{1/6}`, clamped to `[4, n/4]`.
pub fn recommended_h(n: usize, p: f64, d: usize, delta: f64) -> usize {
    let n_f = n as f64;
    let raw = 0.25
        * (delta / (d as f64 + 1.0)).powf(1.0 / 3.0)
        * (p * (1.0 - p) * n_f / n_f.ln()).powf(1.0 / 6.0);
    (raw.floor() as usize).clamp(4, (n / 4).max(4))
}

/// The per-vertex signatures of the scheme: the top-`h` vertices in degree order and,
/// for every other vertex, its adjacency set restricted to the top-`h` vertices
/// (elements are ranks in `[0, h)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeOrderSignatures {
    /// Vertices sorted by decreasing degree; the first `h` are the anchors.
    pub order: Vec<u32>,
    /// For each non-anchor vertex (in `order[h..]`), its signature set of anchor
    /// ranks.
    pub signatures: Vec<(u32, BTreeSet<u64>)>,
}

/// Compute the degree-ordering signatures of a graph.
pub fn signatures(graph: &Graph, h: usize) -> DegreeOrderSignatures {
    let n = graph.num_vertices();
    let h = h.min(n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let anchors: Vec<u32> = order[..h].to_vec();
    let anchor_rank: HashMap<u32, u64> =
        anchors.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
    let mut sigs = Vec::with_capacity(n - h);
    for &v in &order[h..] {
        let mut sig = BTreeSet::new();
        for w in graph.neighbors(v) {
            if let Some(&rank) = anchor_rank.get(&w) {
                sig.insert(rank);
            }
        }
        sigs.push((v, sig));
    }
    DegreeOrderSignatures { order, signatures: sigs }
}

/// Check Definition 5.1: the graph is `(h, a, b)`-separated if the top-`h` degrees
/// are pairwise at least `a` apart and all non-anchor signatures are pairwise at
/// Hamming distance at least `b`.
pub fn is_separated(graph: &Graph, h: usize, a: usize, b: usize) -> bool {
    let sigs = signatures(graph, h);
    for window in sigs.order[..h.min(sigs.order.len())].windows(2) {
        if graph.degree(window[0]) < graph.degree(window[1]) + a {
            return false;
        }
    }
    for i in 0..sigs.signatures.len() {
        for j in (i + 1)..sigs.signatures.len() {
            let diff = sigs.signatures[i].1.symmetric_difference(&sigs.signatures[j].1).count();
            if diff < b {
                return false;
            }
        }
    }
    true
}

pub(crate) fn signature_set_of_sets(sigs: &DegreeOrderSignatures) -> Result<SetOfSets, ReconError> {
    let children: Vec<ChildSet> = sigs.signatures.iter().map(|(_, s)| s.clone()).collect();
    let distinct: HashSet<&ChildSet> = children.iter().collect();
    if distinct.len() != children.len() {
        return Err(ReconError::SeparationFailure(
            "two vertices share a degree-ordering signature".to_string(),
        ));
    }
    Ok(SetOfSets::from_children(children))
}

/// Alice's labeling: anchors get labels `0..h` by degree rank, the remaining
/// vertices get labels `h..n` by lexicographic order of their signatures.
pub(crate) fn label_map_from_signatures(
    sigs: &DegreeOrderSignatures,
    h: usize,
) -> (HashMap<u32, u32>, Vec<ChildSet>) {
    let mut sorted_sigs: Vec<(&BTreeSet<u64>, u32)> =
        sigs.signatures.iter().map(|(v, s)| (s, *v)).collect();
    sorted_sigs.sort();
    let mut labels = HashMap::new();
    for (rank, &v) in sigs.order[..h].iter().enumerate() {
        labels.insert(v, rank as u32);
    }
    for (i, (_, v)) in sorted_sigs.iter().enumerate() {
        labels.insert(*v, (h + i) as u32);
    }
    (labels, sorted_sigs.into_iter().map(|(s, _)| s.clone()).collect())
}

/// One-round random-graph reconciliation with the degree-ordering scheme
/// (Theorem 5.2). `d` is the total number of edge changes between `G_A` and `G_B`.
///
/// Returns Bob's reconstruction of Alice's graph — expressed on Alice's canonical
/// labeling, hence isomorphic to `G_A` — together with the measured communication.
/// Fails with [`ReconError::SeparationFailure`] when the signature scheme cannot
/// produce an unambiguous labeling (the base graph was not sufficiently separated
/// for this `h` and `d`). Delegates to the sans-I/O party pair of
/// [`crate::session`] driven over an in-memory link.
pub fn reconcile(
    alice: &Graph,
    bob: &Graph,
    d: usize,
    params: &DegreeOrderParams,
) -> Result<Outcome<Graph>, ReconError> {
    if alice.num_vertices() != bob.num_vertices() {
        return Err(ReconError::InvalidInput("graphs must have the same vertex count".into()));
    }
    SessionBuilder::new(params.seed).run(
        session::degree_order_alice(alice, d, params)?,
        session::degree_order_bob(bob, d, params)?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn dense_random_graph(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = Xoshiro256::new(seed);
        Graph::gnp(n, p, &mut rng)
    }

    #[test]
    fn recommended_h_is_reasonable() {
        let h = recommended_h(10_000, 0.3, 4, 0.25);
        assert!((4..=2_500).contains(&h), "h = {h}");
        assert!(recommended_h(100, 0.5, 2, 0.25) >= 4);
    }

    #[test]
    fn signatures_partition_vertices() {
        let g = dense_random_graph(64, 0.4, 1);
        let sigs = signatures(&g, 8);
        assert_eq!(sigs.order.len(), 64);
        assert_eq!(sigs.signatures.len(), 56);
        // Degrees along the order are non-increasing.
        for w in sigs.order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
        // Signature elements are anchor ranks.
        for (_, sig) in &sigs.signatures {
            assert!(sig.iter().all(|&r| r < 8));
        }
    }

    #[test]
    fn separation_check_detects_ties() {
        // A complete graph has all degrees equal: never (h, 1, _)-separated for h ≥ 2.
        let mut g = Graph::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                g.add_edge(u, v);
            }
        }
        assert!(!is_separated(&g, 3, 1, 1));
    }

    /// Perturb the graph by deleting edges between non-anchor vertices only. This is
    /// the "conforming" regime: anchor degrees are untouched and non-anchor degrees
    /// only decrease, so the top-`h` ordering provably stays identical on both sides
    /// — the property that full (h, d+1, 2d+1)-separation buys at the much larger
    /// `n` of Theorem 5.3.
    fn perturb_off_anchor(base: &Graph, h: usize, d: usize, rng: &mut Xoshiro256) -> Graph {
        let sigs = signatures(base, h);
        let anchors: HashSet<u32> = sigs.order[..h].iter().copied().collect();
        let candidate_edges: Vec<(u32, u32)> = base
            .edges()
            .into_iter()
            .filter(|&(u, v)| !anchors.contains(&u) && !anchors.contains(&v))
            .collect();
        assert!(candidate_edges.len() >= d);
        let mut out = base.clone();
        let mut removed = HashSet::new();
        while removed.len() < d {
            let (u, v) = candidate_edges[rng.next_index(candidate_edges.len())];
            if removed.insert((u, v)) {
                out.remove_edge(u, v);
            }
        }
        out
    }

    #[test]
    fn reconciles_perturbed_random_graphs_in_the_separated_regime() {
        // Theorem 5.3's separation needs very large n; to exercise the success path
        // at test scale, the perturbation is restricted to non-anchor pairs (which
        // keeps the anchor ordering conforming, exactly the property separation
        // buys). The general G(n,p) perturbation case is covered by the
        // detected-failure test below.
        let base = dense_random_graph(200, 0.35, 7);
        let mut rng = Xoshiro256::new(99);
        for d in [2usize, 4, 8] {
            let alice = perturb_off_anchor(&base, 48, d / 2, &mut rng);
            let bob = perturb_off_anchor(&base, 48, d - d / 2, &mut rng);
            let params = DegreeOrderParams { h: 48, seed: 1000 + d as u64 };
            let outcome = reconcile(&alice, &bob, d, &params).unwrap();
            assert_eq!(outcome.recovered.num_edges(), alice.num_edges(), "d = {d}");
            let mut a_deg: Vec<usize> = (0..200u32).map(|v| alice.degree(v)).collect();
            let mut r_deg: Vec<usize> = (0..200u32).map(|v| outcome.recovered.degree(v)).collect();
            a_deg.sort_unstable();
            r_deg.sort_unstable();
            assert_eq!(a_deg, r_deg, "d = {d}");
            assert!(outcome.stats.total_bytes() > 0);
            assert_eq!(outcome.stats.rounds, 1);
        }
    }

    #[test]
    fn unrestricted_perturbations_either_succeed_or_fail_detectably() {
        // With arbitrary edge flips at this small n the anchor ordering often breaks;
        // the protocol must never return a wrong graph silently.
        let base = dense_random_graph(200, 0.35, 7);
        let mut rng = Xoshiro256::new(5);
        for d in [2usize, 6] {
            let alice = base.perturb(d / 2, &mut rng);
            let bob = base.perturb(d - d / 2, &mut rng);
            let params = DegreeOrderParams { h: 48, seed: 2000 + d as u64 };
            match reconcile(&alice, &bob, d, &params) {
                Ok(outcome) => {
                    assert_eq!(outcome.recovered.num_edges(), alice.num_edges(), "d = {d}");
                }
                Err(ReconError::SeparationFailure(_)) => {}
                Err(other) => panic!("unexpected error at d = {d}: {other}"),
            }
        }
    }

    #[test]
    fn identical_graphs_reconcile_exactly() {
        let g = dense_random_graph(120, 0.4, 3);
        let params = DegreeOrderParams { h: 40, seed: 5 };
        let outcome = reconcile(&g, &g, 2, &params).unwrap();
        // With zero differences the recovered graph is exactly Alice's graph under
        // her canonical relabeling, so edge count and degree sequence must agree.
        assert_eq!(outcome.recovered.num_edges(), g.num_edges());
    }

    #[test]
    fn mismatched_vertex_counts_are_rejected() {
        let a = dense_random_graph(30, 0.4, 1);
        let b = dense_random_graph(31, 0.4, 2);
        let params = DegreeOrderParams { h: 4, seed: 5 };
        assert!(matches!(reconcile(&a, &b, 2, &params), Err(ReconError::InvalidInput(_))));
    }

    #[test]
    fn recovered_graph_is_isomorphic_for_small_instances() {
        // For a small graph we can verify isomorphism exhaustively after relabeling
        // through Alice's canonical labels.
        let base = dense_random_graph(9, 0.6, 21);
        let mut rng = Xoshiro256::new(4);
        let alice = base.perturb(1, &mut rng);
        let params = DegreeOrderParams { h: 3, seed: 77 };
        if let Ok(outcome) = reconcile(&alice, &base, 2, &params) {
            assert!(outcome.recovered.is_isomorphic_bruteforce(&alice));
        }
    }
}
