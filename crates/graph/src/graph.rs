//! The undirected-graph substrate: adjacency structure, `G(n, p)` sampling, the
//! perturbation model of Section 5, and brute-force isomorphism for small graphs.
//!
//! The paper's random-graph model: a base graph `G ~ G(n, p)`; Alice and Bob obtain
//! `G_A` and `G_B` by each making at most `d/2` edge changes to `G`, and the goal is
//! one-way reconciliation (Bob ends with a graph isomorphic to `G_A`).

use recon_base::rng::Xoshiro256;
use std::collections::BTreeSet;

/// A simple undirected graph on vertices `0..n` with no self-loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BTreeSet<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Create an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n, adj: vec![BTreeSet::new(); n], num_edges: 0 }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj.get(u as usize).is_some_and(|s| s.contains(&v))
    }

    /// Add the edge `{u, v}`; returns `false` if it was already present. Self-loops
    /// are rejected.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(u != v, "self-loops are not allowed");
        assert!((u as usize) < self.n && (v as usize) < self.n, "vertex out of range");
        if self.adj[u as usize].insert(v) {
            self.adj[v as usize].insert(u);
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    /// Remove the edge `{u, v}`; returns `false` if it was absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if self.adj[u as usize].remove(&v) {
            self.adj[v as usize].remove(&u);
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Toggle the edge `{u, v}` (the paper's "edge change").
    pub fn flip_edge(&mut self, u: u32, v: u32) {
        if self.has_edge(u, v) {
            self.remove_edge(u, v);
        } else {
            self.add_edge(u, v);
        }
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Neighbors of a vertex, in increasing order.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// All edges `{u, v}` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for u in 0..self.n as u32 {
            for &v in &self.adj[u as usize] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Build a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Sample `G(n, p)`: every unordered pair is an edge independently with
    /// probability `p`.
    pub fn gnp(n: usize, p: f64, rng: &mut Xoshiro256) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.next_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Apply exactly `changes` random edge flips (the perturbation model of
    /// Section 5), choosing distinct vertex pairs.
    pub fn perturb(&self, changes: usize, rng: &mut Xoshiro256) -> Self {
        assert!(self.n >= 2 || changes == 0, "cannot perturb a graph with fewer than 2 vertices");
        let mut out = self.clone();
        let mut flipped: BTreeSet<(u32, u32)> = BTreeSet::new();
        while flipped.len() < changes {
            let u = rng.next_index(self.n) as u32;
            let v = rng.next_index(self.n) as u32;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if flipped.insert(key) {
                out.flip_edge(key.0, key.1);
            }
        }
        out
    }

    /// The complement graph (used for `p > 1/2`, as the paper notes).
    pub fn complement(&self) -> Self {
        let mut g = Graph::new(self.n);
        for u in 0..self.n as u32 {
            for v in (u + 1)..self.n as u32 {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Number of edges that differ between two graphs on the same labeled vertex set.
    pub fn edge_difference(&self, other: &Graph) -> usize {
        assert_eq!(self.n, other.n, "graphs must have the same vertex count");
        let a: BTreeSet<(u32, u32)> = self.edges().into_iter().collect();
        let b: BTreeSet<(u32, u32)> = other.edges().into_iter().collect();
        a.symmetric_difference(&b).count()
    }

    /// Encode a labeled edge as a single `u64` key (used by labeled-edge set
    /// reconciliation once a conforming labeling is known).
    pub fn edge_key(u: u32, v: u32) -> u64 {
        let (a, b) = (u.min(v), u.max(v));
        ((a as u64) << 32) | b as u64
    }

    /// Decode an edge key produced by [`Graph::edge_key`].
    pub fn key_edge(key: u64) -> (u32, u32) {
        ((key >> 32) as u32, (key & 0xFFFF_FFFF) as u32)
    }

    /// The labeled edge set as `u64` keys.
    pub fn edge_keys(&self) -> Vec<u64> {
        self.edges().iter().map(|&(u, v)| Self::edge_key(u, v)).collect()
    }

    /// Relabel the graph: vertex `v` becomes `labels[v]`. `labels` must be a
    /// permutation of `0..n`.
    pub fn relabel(&self, labels: &[u32]) -> Graph {
        assert_eq!(labels.len(), self.n);
        let mut g = Graph::new(self.n);
        for (u, v) in self.edges() {
            g.add_edge(labels[u as usize], labels[v as usize]);
        }
        g
    }

    /// Exhaustive isomorphism test for small graphs (`n ≤ 10`): try every
    /// permutation of the vertex labels.
    pub fn is_isomorphic_bruteforce(&self, other: &Graph) -> bool {
        if self.n != other.n || self.num_edges != other.num_edges {
            return false;
        }
        assert!(self.n <= 10, "brute-force isomorphism is limited to 10 vertices");
        let mut perm: Vec<u32> = (0..self.n as u32).collect();
        let target: BTreeSet<(u32, u32)> = other.edges().into_iter().collect();
        permute_and_check(self, &mut perm, 0, &target)
    }

    /// Canonical form of a small graph (`n ≤ 10`): the lexicographically smallest
    /// edge bitstring over all vertex permutations, as a `u64` bitmap over the
    /// `C(n,2)` vertex pairs. Used by the Theorem 4.1/4.3 protocols.
    pub fn canonical_form_small(&self) -> u64 {
        assert!(self.n <= 10, "canonical_form_small is limited to 10 vertices");
        let mut perm: Vec<u32> = (0..self.n as u32).collect();
        let mut best = u64::MAX;
        canonical_search(self, &mut perm, 0, &mut best);
        best
    }

    #[allow(clippy::needless_range_loop)] // the (i, j) pair indexing mirrors the math
    fn bitmap_under(&self, perm: &[u32]) -> u64 {
        // Pair (i, j) with i < j (relabeled) maps to bit index i*n + j (sparse but
        // fine for n ≤ 10 since C(10,2) = 45 < 64 when compacted).
        let mut bitmap = 0u64;
        let mut index = vec![vec![0usize; self.n]; self.n];
        let mut next = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                index[i][j] = next;
                next += 1;
            }
        }
        for (u, v) in self.edges() {
            let a = perm[u as usize] as usize;
            let b = perm[v as usize] as usize;
            let (i, j) = (a.min(b), a.max(b));
            bitmap |= 1u64 << index[i][j];
        }
        bitmap
    }
}

fn permute_and_check(
    g: &Graph,
    perm: &mut Vec<u32>,
    k: usize,
    target: &BTreeSet<(u32, u32)>,
) -> bool {
    if k == perm.len() {
        return g.edges().iter().all(|&(u, v)| {
            let (a, b) = (perm[u as usize], perm[v as usize]);
            target.contains(&(a.min(b), a.max(b)))
        });
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        if permute_and_check(g, perm, k + 1, target) {
            perm.swap(k, i);
            return true;
        }
        perm.swap(k, i);
    }
    false
}

fn canonical_search(g: &Graph, perm: &mut Vec<u32>, k: usize, best: &mut u64) {
    if k == perm.len() {
        let bitmap = g.bitmap_under(perm);
        if bitmap < *best {
            *best = bitmap;
        }
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        canonical_search(g, perm, k + 1, best);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_edge_operations() {
        let mut g = Graph::new(5);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge must be rejected");
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_are_rejected() {
        Graph::new(3).add_edge(1, 1);
    }

    #[test]
    fn flip_edge_toggles() {
        let mut g = Graph::new(3);
        g.flip_edge(0, 2);
        assert!(g.has_edge(0, 2));
        g.flip_edge(0, 2);
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_are_sorted_and_unique() {
        let g = Graph::from_edges(4, &[(2, 3), (0, 1), (1, 2)]);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn gnp_density_is_close_to_p() {
        let mut rng = Xoshiro256::new(5);
        let g = Graph::gnp(200, 0.3, &mut rng);
        let possible = 200 * 199 / 2;
        let density = g.num_edges() as f64 / possible as f64;
        assert!((density - 0.3).abs() < 0.03, "density {density}");
    }

    #[test]
    fn perturb_changes_exactly_d_edges() {
        let mut rng = Xoshiro256::new(9);
        let g = Graph::gnp(100, 0.2, &mut rng);
        for d in [0usize, 1, 5, 20] {
            let perturbed = g.perturb(d, &mut rng);
            assert_eq!(g.edge_difference(&perturbed), d);
        }
    }

    #[test]
    fn complement_inverts_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let c = g.complement();
        assert_eq!(c.num_edges(), 4 * 3 / 2 - 2);
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn edge_keys_roundtrip() {
        for (u, v) in [(0u32, 1u32), (5, 3), (1000, 70_000)] {
            let key = Graph::edge_key(u, v);
            assert_eq!(Graph::key_edge(key), (u.min(v), u.max(v)));
        }
    }

    #[test]
    fn relabeling_preserves_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let relabeled = g.relabel(&[3, 2, 1, 0]);
        assert!(g.is_isomorphic_bruteforce(&relabeled));
        assert_eq!(relabeled.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn isomorphism_distinguishes_path_from_star() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let shuffled_path = Graph::from_edges(4, &[(2, 0), (0, 3), (3, 1)]);
        assert!(!path.is_isomorphic_bruteforce(&star));
        assert!(path.is_isomorphic_bruteforce(&shuffled_path));
    }

    #[test]
    fn canonical_form_is_an_isomorphism_invariant() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let shuffled_path = Graph::from_edges(4, &[(2, 0), (0, 3), (3, 1)]);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(path.canonical_form_small(), shuffled_path.canonical_form_small());
        assert_ne!(path.canonical_form_small(), star.canonical_form_small());
    }

    #[test]
    fn edge_difference_counts_symmetric_difference() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(a.edge_difference(&b), 2);
        assert_eq!(a.edge_difference(&a), 0);
    }
}
