//! Property-based tests for the graph substrate and the forest reconstruction
//! invariants of Theorem 6.1.

use proptest::prelude::*;
use recon_base::rng::Xoshiro256;
use recon_graph::forest::{reconstruct, Forest};
use recon_graph::Graph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relabeling a graph by any permutation preserves its isomorphism class and its
    /// canonical form (brute force, n ≤ 7).
    #[test]
    fn relabeling_preserves_isomorphism(seed in any::<u64>(), p in 0.1f64..0.9) {
        let mut rng = Xoshiro256::new(seed);
        let g = Graph::gnp(7, p, &mut rng);
        let mut labels: Vec<u32> = (0..7).collect();
        rng.shuffle(&mut labels);
        let relabeled = g.relabel(&labels);
        prop_assert!(g.is_isomorphic_bruteforce(&relabeled));
        prop_assert_eq!(g.canonical_form_small(), relabeled.canonical_form_small());
        prop_assert_eq!(g.num_edges(), relabeled.num_edges());
    }

    /// Perturbing by d edge flips changes exactly d labeled edges, and flipping the
    /// same pairs again restores the original graph.
    #[test]
    fn perturbation_is_measurable_and_involutive(seed in any::<u64>(), d in 0usize..15) {
        let mut rng = Xoshiro256::new(seed);
        let g = Graph::gnp(40, 0.3, &mut rng);
        let perturbed = g.perturb(d, &mut rng);
        prop_assert_eq!(g.edge_difference(&perturbed), d);
        // Flipping the differing edges again restores the original.
        let mut restored = perturbed.clone();
        let a: std::collections::BTreeSet<(u32, u32)> = g.edges().into_iter().collect();
        let b: std::collections::BTreeSet<(u32, u32)> = perturbed.edges().into_iter().collect();
        for &(u, v) in a.symmetric_difference(&b) {
            restored.flip_edge(u, v);
        }
        prop_assert_eq!(restored, g);
    }

    /// Forest reconstruction from the vertex/edge signature multisets always yields a
    /// forest isomorphic to the original (the constructive core of Theorem 6.1).
    #[test]
    fn forest_reconstruction_roundtrips(
        n in 1usize..120,
        root_prob in 0.02f64..0.5,
        max_depth in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::new(seed);
        let forest = Forest::random(n, root_prob, max_depth, &mut rng);
        let rebuilt = reconstruct(&forest.vertex_multisets(seed ^ 1)).unwrap();
        prop_assert!(rebuilt.is_isomorphic(&forest, seed ^ 1));
        prop_assert_eq!(rebuilt.num_vertices(), forest.num_vertices());
        prop_assert_eq!(rebuilt.num_edges(), forest.num_edges());
    }

    /// Forest perturbation preserves the forest invariants (acyclicity via depth, and
    /// edge counts change by at most d).
    #[test]
    fn forest_perturbation_preserves_invariants(seed in any::<u64>(), d in 0usize..10) {
        let mut rng = Xoshiro256::new(seed);
        let forest = Forest::random(60, 0.15, 6, &mut rng);
        let perturbed = forest.perturb(d, &mut rng);
        prop_assert_eq!(perturbed.num_vertices(), forest.num_vertices());
        // Depth computation would panic on a cycle.
        let _ = perturbed.max_depth();
        let edge_delta = forest.num_edges().abs_diff(perturbed.num_edges());
        prop_assert!(edge_delta <= d);
    }
}
