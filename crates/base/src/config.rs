//! Typed, process-wide runtime options for the `recon` workspace.
//!
//! Historically each crate grew its own environment-variable escape hatch
//! (`RECON_IBLT_FORCE_SCALAR`, `RECON_RUNTIME_FORCE_POLL`,
//! `RECON_PROTOCOL_FORCE_SEQ_IO`) with a private `AtomicBool` + `OnceLock`
//! parse. This module replaces those three copies with one typed [`Options`]
//! struct:
//!
//! * **programmatic override is the first-class path** — [`set`] /
//!   [`Options::apply`] from code, or the per-flag setters like
//!   [`set_force_scalar_kernels`];
//! * the environment is read **once**, lazily, as a thin compat shim
//!   ([`Options::from_env`] documents the variables), so existing CI legs and
//!   shell workflows keep working unchanged;
//! * consumers ask for the *effective* value ([`scalar_kernels_forced`] etc.),
//!   which is the programmatic setting OR the environment shim.
//!
//! The flags are process-global because what they select is process-global:
//! which CPU kernel dispatch table, which poller syscall, which stream I/O
//! path. They exist so differential tests and CI can pin the fallback paths;
//! every path is bit-identical, so these options change performance only.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The workspace's runtime options, as one plain value.
///
/// `Options` is a snapshot type: build one (from [`Options::default`] or
/// [`Options::from_env`]), tweak fields, and [`Options::apply`] it. Reading
/// back the effective state goes through [`current`] or the per-flag getters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Options {
    /// Pin every IBLT bank kernel to the scalar fallback path (no AVX2), as
    /// `RECON_IBLT_FORCE_SCALAR` used to.
    pub force_scalar_kernels: bool,
    /// Pin the runtime's readiness poller to `poll(2)` instead of epoll, as
    /// `RECON_RUNTIME_FORCE_POLL` used to.
    pub force_poll_backend: bool,
    /// Pin stream transports to sequential (one buffer per syscall) I/O
    /// instead of `readv`/`writev`, as `RECON_PROTOCOL_FORCE_SEQ_IO` used to.
    pub force_sequential_io: bool,
    /// Disable the IBLT decode-rescue solver: a stalled peel is a hard
    /// failure, exactly as before the GF(2) rescue path existed
    /// (`RECON_IBLT_FORCE_PEEL_ONLY`). Unlike the other flags this changes
    /// *outcomes* (decodes that rescue would save now fail and are retried by
    /// amplification), which is precisely what the pinning CI leg wants.
    pub force_peel_only: bool,
}

impl Options {
    /// The options the environment requests, read fresh from the process
    /// environment. The recognized variables (any value other than empty,
    /// `0`, or `false` enables the flag):
    ///
    /// | variable | field |
    /// |---|---|
    /// | `RECON_IBLT_FORCE_SCALAR` | [`Options::force_scalar_kernels`] |
    /// | `RECON_RUNTIME_FORCE_POLL` | [`Options::force_poll_backend`] |
    /// | `RECON_PROTOCOL_FORCE_SEQ_IO` | [`Options::force_sequential_io`] |
    /// | `RECON_IBLT_FORCE_PEEL_ONLY` | [`Options::force_peel_only`] |
    pub fn from_env() -> Self {
        Self {
            force_scalar_kernels: env_flag("RECON_IBLT_FORCE_SCALAR"),
            force_poll_backend: env_flag("RECON_RUNTIME_FORCE_POLL"),
            force_sequential_io: env_flag("RECON_PROTOCOL_FORCE_SEQ_IO"),
            force_peel_only: env_flag("RECON_IBLT_FORCE_PEEL_ONLY"),
        }
    }

    /// Install these options as the process-wide programmatic setting.
    /// Equivalent to [`set`]`(self)`.
    pub fn apply(self) {
        set(self);
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| !matches!(v.as_str(), "" | "0" | "false")).unwrap_or(false)
}

/// The environment shim, parsed exactly once on first use so every consumer
/// sees one consistent snapshot for the life of the process.
fn env_options() -> Options {
    static ENV: OnceLock<Options> = OnceLock::new();
    *ENV.get_or_init(Options::from_env)
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
static FORCE_POLL: AtomicBool = AtomicBool::new(false);
static FORCE_SEQ_IO: AtomicBool = AtomicBool::new(false);
static FORCE_PEEL_ONLY: AtomicBool = AtomicBool::new(false);

/// Install `options` as the process-wide programmatic setting, replacing any
/// previous programmatic setting. The environment shim stays in effect: an
/// env-enabled flag cannot be programmatically disabled (the shim exists so
/// CI can pin fallback paths from outside the process, and a library
/// clearing it would defeat that).
pub fn set(options: Options) {
    FORCE_SCALAR.store(options.force_scalar_kernels, Ordering::Relaxed);
    FORCE_POLL.store(options.force_poll_backend, Ordering::Relaxed);
    FORCE_SEQ_IO.store(options.force_sequential_io, Ordering::Relaxed);
    FORCE_PEEL_ONLY.store(options.force_peel_only, Ordering::Relaxed);
}

/// The effective options: the programmatic setting OR'd with the environment
/// shim, flag by flag.
pub fn current() -> Options {
    let env = env_options();
    Options {
        force_scalar_kernels: FORCE_SCALAR.load(Ordering::Relaxed) || env.force_scalar_kernels,
        force_poll_backend: FORCE_POLL.load(Ordering::Relaxed) || env.force_poll_backend,
        force_sequential_io: FORCE_SEQ_IO.load(Ordering::Relaxed) || env.force_sequential_io,
        force_peel_only: FORCE_PEEL_ONLY.load(Ordering::Relaxed) || env.force_peel_only,
    }
}

/// Programmatically force (or release) the scalar IBLT kernel path.
pub fn set_force_scalar_kernels(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Programmatically force (or release) the `poll(2)` poller backend.
pub fn set_force_poll_backend(force: bool) {
    FORCE_POLL.store(force, Ordering::Relaxed);
}

/// Programmatically force (or release) sequential stream I/O.
pub fn set_force_sequential_io(force: bool) {
    FORCE_SEQ_IO.store(force, Ordering::Relaxed);
}

/// Programmatically force (or release) peel-only IBLT decoding (no rescue).
pub fn set_force_peel_only(force: bool) {
    FORCE_PEEL_ONLY.store(force, Ordering::Relaxed);
}

/// Effective value of [`Options::force_scalar_kernels`].
pub fn scalar_kernels_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) || env_options().force_scalar_kernels
}

/// Effective value of [`Options::force_poll_backend`].
pub fn poll_backend_forced() -> bool {
    FORCE_POLL.load(Ordering::Relaxed) || env_options().force_poll_backend
}

/// Effective value of [`Options::force_sequential_io`].
pub fn sequential_io_forced() -> bool {
    FORCE_SEQ_IO.load(Ordering::Relaxed) || env_options().force_sequential_io
}

/// Effective value of [`Options::force_peel_only`].
pub fn peel_only_forced() -> bool {
    FORCE_PEEL_ONLY.load(Ordering::Relaxed) || env_options().force_peel_only
}

#[cfg(test)]
mod tests {
    use super::*;

    // The three flags are process-global, and tests in one binary run
    // concurrently — exercise them in a single test so set/restore can't race
    // another test's reads. (The env shim path is covered by the CI legs that
    // run the whole suite under each RECON_* variable.)
    #[test]
    fn programmatic_overrides_round_trip() {
        let baseline = current();

        set(Options {
            force_scalar_kernels: true,
            force_poll_backend: true,
            force_sequential_io: true,
            force_peel_only: true,
        });
        assert!(scalar_kernels_forced());
        assert!(poll_backend_forced());
        assert!(sequential_io_forced());
        assert!(peel_only_forced());
        let all_on = current();
        assert!(
            all_on.force_scalar_kernels
                && all_on.force_poll_backend
                && all_on.force_sequential_io
                && all_on.force_peel_only
        );

        // Per-flag setters agree with the bulk setter.
        set_force_scalar_kernels(false);
        assert_eq!(scalar_kernels_forced(), env_options().force_scalar_kernels);

        set(Options::default());
        assert_eq!(current(), baseline);
    }

    #[test]
    fn env_parsing_treats_empty_zero_and_false_as_off() {
        // from_env reads the real environment; with no RECON_* variables set
        // every flag is off, and under a CI leg exactly that leg's flag is on.
        let opts = Options::from_env();
        assert_eq!(opts.force_scalar_kernels, env_flag("RECON_IBLT_FORCE_SCALAR"));
        assert_eq!(opts.force_poll_backend, env_flag("RECON_RUNTIME_FORCE_POLL"));
        assert_eq!(opts.force_sequential_io, env_flag("RECON_PROTOCOL_FORCE_SEQ_IO"));
        assert_eq!(opts.force_peel_only, env_flag("RECON_IBLT_FORCE_PEEL_ONLY"));
    }
}
