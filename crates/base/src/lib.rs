//! # recon-base
//!
//! Shared substrate for the `recon` workspace, the Rust reproduction of
//! *"Reconciling Graphs and Sets of Sets"* (Mitzenmacher & Morgan, PODS 2018).
//!
//! The paper works in the word-RAM model with **public coins**: Alice and Bob share
//! random bits for free, which in practice means they share a small random seed from
//! which every hash function used by a protocol is derived (Section 2 of the paper).
//! This crate provides exactly that substrate:
//!
//! * [`rng`] — deterministic pseudo-random generators (`SplitMix64`, `Xoshiro256``),
//!   used both as the public-coin source and for workload generation,
//! * [`hash`] — pairwise-independent hash families over GF(2^61 − 1), strong 64-bit
//!   mixers for bucket selection, and checksum hashing for IBLT cells,
//! * [`wire`] — a small, explicit binary encoding layer ([`wire::Encode`] /
//!   [`wire::Decode`]) so that every protocol message has a well-defined serialized
//!   size in bytes,
//! * [`comm`] — communication accounting ([`comm::CommStats`], [`comm::Transcript`])
//!   recording the direction, size and label of every message and the number of
//!   protocol rounds, mirroring how the paper states its communication bounds,
//! * [`error`] — the shared [`error::ReconError`] type naming every failure mode the
//!   paper discusses (peeling failures, checksum failures, failed matchings, …) plus
//!   the transport-level failures a lossy network adds, with
//!   [`error::ReconError::is_retryable`] classifying which are worth a fresh attempt,
//! * [`retry`] — the [`retry::RetryPolicy`] recovery driver re-running whole
//!   sessions after retryable transport failures,
//! * [`config`] — the typed, process-wide [`config::Options`] (kernel/poller/I/O
//!   path pins) with the legacy `RECON_*` environment variables as a compat shim.
//!
//! All higher-level crates (`recon-iblt`, `recon-set`, `recon-sos`, `recon-graph`,
//! `recon-apps`) build on these primitives and never use ambient randomness: given the
//! same seed, every protocol run in this workspace is bit-for-bit reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod config;
pub mod error;
pub mod hash;
pub mod retry;
pub mod rng;
pub mod wire;

pub use comm::{CommStats, Direction, MessageStat, Transcript};
pub use config::Options;
pub use error::ReconError;
pub use hash::{hash64, hash_bytes, PairwiseHash};
pub use retry::{run_with_retry, RetryPolicy};
pub use rng::{SplitMix64, Xoshiro256};
pub use wire::{Decode, Encode, WireError};
