//! Communication accounting: who sent how many bytes, and in how many rounds.
//!
//! Every protocol driver in this workspace (set reconciliation, set-of-sets
//! reconciliation, graph reconciliation) records each message it "sends" into a
//! [`Transcript`]. The paper's bounds are stated as bits of communication and rounds
//! of communication (Section 2: "the number of rounds of communication a protocol
//! uses ... denotes the number of total messages sent"); [`CommStats`] reports both so
//! the benchmark harness can regenerate Table 1 and the per-theorem experiments.

use crate::wire::Encode;
use std::fmt;

/// The direction of a message in a two-party protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// A message from Alice (the party whose data must be recovered) to Bob.
    AliceToBob,
    /// A message from Bob to Alice.
    BobToAlice,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::AliceToBob => write!(f, "A→B"),
            Direction::BobToAlice => write!(f, "B→A"),
        }
    }
}

/// A single recorded message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageStat {
    /// Who sent the message.
    pub direction: Direction,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Human-readable label (e.g. `"outer IBLT"`, `"difference estimator"`).
    pub label: String,
}

/// A transcript of a protocol run: the ordered list of messages exchanged.
///
/// Following the paper, the *number of rounds* equals the number of messages sent
/// (a one-round protocol is a single message from Alice to Bob). Messages recorded
/// with [`Transcript::record_parallel`] share a round with the previous message,
/// which models the paper's "in parallel" phrasing (e.g. Theorem 5.2 reconciles
/// signatures and labeled edges in the same round).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transcript {
    messages: Vec<MessageStat>,
    /// `rounds[i]` is the round index of `messages[i]`.
    round_of: Vec<usize>,
}

impl Transcript {
    /// Create an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a message carrying `payload`, starting a new round.
    pub fn record<T: Encode>(&mut self, direction: Direction, label: &str, payload: &T) -> usize {
        self.record_bytes(direction, label, payload.encoded_len())
    }

    /// Record a message of `bytes` bytes, starting a new round.
    pub fn record_bytes(&mut self, direction: Direction, label: &str, bytes: usize) -> usize {
        let round = self.rounds() + 1;
        self.messages.push(MessageStat { direction, bytes, label: label.to_string() });
        self.round_of.push(round);
        bytes
    }

    /// Record a message that travels in the same round as the previous message
    /// (the paper's "in parallel with" construction). If the transcript is empty this
    /// starts round 1.
    pub fn record_parallel<T: Encode>(
        &mut self,
        direction: Direction,
        label: &str,
        payload: &T,
    ) -> usize {
        self.record_parallel_bytes(direction, label, payload.encoded_len())
    }

    /// Record a message of `bytes` bytes in the same round as the previous message.
    ///
    /// The explicit-size counterpart of [`Transcript::record_parallel`], matching
    /// [`Transcript::record_bytes`]: callers that already hold a serialized payload
    /// (or an aggregate byte count) can charge it without re-encoding.
    pub fn record_parallel_bytes(
        &mut self,
        direction: Direction,
        label: &str,
        bytes: usize,
    ) -> usize {
        let round = self.rounds().max(1);
        self.messages.push(MessageStat { direction, bytes, label: label.to_string() });
        self.round_of.push(round);
        bytes
    }

    /// Number of rounds used so far (= highest round index).
    pub fn rounds(&self) -> usize {
        self.round_of.last().copied().unwrap_or(0)
    }

    /// All recorded messages, in order.
    pub fn messages(&self) -> &[MessageStat] {
        &self.messages
    }

    /// Total bytes across all messages.
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Total bytes sent in the given direction.
    pub fn bytes_in_direction(&self, direction: Direction) -> usize {
        self.messages.iter().filter(|m| m.direction == direction).map(|m| m.bytes).sum()
    }

    /// Merge another transcript after this one (its rounds are appended).
    pub fn extend(&mut self, other: &Transcript) {
        let offset = self.rounds();
        for (msg, round) in other.messages.iter().zip(&other.round_of) {
            self.messages.push(msg.clone());
            self.round_of.push(offset + round);
        }
    }

    /// Produce the summary statistics for this transcript.
    pub fn stats(&self) -> CommStats {
        CommStats {
            rounds: self.rounds(),
            messages: self.messages.len(),
            bytes_alice_to_bob: self.bytes_in_direction(Direction::AliceToBob),
            bytes_bob_to_alice: self.bytes_in_direction(Direction::BobToAlice),
        }
    }
}

/// Summary of a protocol run's communication cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of communication rounds (messages that could not be sent in parallel).
    pub rounds: usize,
    /// Number of individual messages.
    pub messages: usize,
    /// Bytes sent from Alice to Bob.
    pub bytes_alice_to_bob: usize,
    /// Bytes sent from Bob to Alice.
    pub bytes_bob_to_alice: usize,
}

impl CommStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_alice_to_bob + self.bytes_bob_to_alice
    }

    /// Total bits in both directions (the unit the paper uses).
    pub fn total_bits(&self) -> usize {
        self.total_bytes() * 8
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bytes ({} A→B, {} B→A) in {} round(s), {} message(s)",
            self.total_bytes(),
            self.bytes_alice_to_bob,
            self.bytes_bob_to_alice,
            self.rounds,
            self.messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transcript_has_zero_rounds() {
        let t = Transcript::new();
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.stats(), CommStats::default());
    }

    #[test]
    fn record_counts_encoded_len() {
        let mut t = Transcript::new();
        let payload = vec![1u64, 2, 3];
        let bytes = t.record(Direction::AliceToBob, "digest", &payload);
        assert_eq!(bytes, payload.encoded_len());
        assert_eq!(t.total_bytes(), bytes);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn rounds_increment_per_message_but_not_for_parallel() {
        let mut t = Transcript::new();
        t.record_bytes(Direction::AliceToBob, "m1", 10);
        t.record_parallel(Direction::AliceToBob, "m1b", &7u64);
        t.record_bytes(Direction::BobToAlice, "m2", 5);
        t.record_bytes(Direction::AliceToBob, "m3", 1);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.messages().len(), 4);
    }

    #[test]
    fn parallel_on_empty_transcript_starts_round_one() {
        let mut t = Transcript::new();
        t.record_parallel(Direction::AliceToBob, "m", &1u8);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn record_parallel_bytes_matches_record_parallel() {
        let payload = vec![1u64, 2, 3];
        let mut by_encode = Transcript::new();
        by_encode.record_bytes(Direction::AliceToBob, "m1", 10);
        by_encode.record_parallel(Direction::BobToAlice, "m2", &payload);
        let mut by_bytes = Transcript::new();
        by_bytes.record_bytes(Direction::AliceToBob, "m1", 10);
        by_bytes.record_parallel_bytes(Direction::BobToAlice, "m2", payload.encoded_len());
        assert_eq!(by_encode, by_bytes);
        assert_eq!(by_bytes.rounds(), 1);
    }

    #[test]
    fn direction_totals_are_split() {
        let mut t = Transcript::new();
        t.record_bytes(Direction::AliceToBob, "a", 100);
        t.record_bytes(Direction::BobToAlice, "b", 40);
        t.record_bytes(Direction::AliceToBob, "c", 1);
        let stats = t.stats();
        assert_eq!(stats.bytes_alice_to_bob, 101);
        assert_eq!(stats.bytes_bob_to_alice, 40);
        assert_eq!(stats.total_bytes(), 141);
        assert_eq!(stats.total_bits(), 141 * 8);
        assert_eq!(stats.rounds, 3);
    }

    #[test]
    fn extend_appends_rounds() {
        let mut t1 = Transcript::new();
        t1.record_bytes(Direction::AliceToBob, "a", 1);
        let mut t2 = Transcript::new();
        t2.record_bytes(Direction::BobToAlice, "b", 2);
        t2.record_bytes(Direction::AliceToBob, "c", 3);
        t1.extend(&t2);
        assert_eq!(t1.rounds(), 3);
        assert_eq!(t1.total_bytes(), 6);
        assert_eq!(t1.messages().len(), 3);
    }

    #[test]
    fn display_formats_reasonably() {
        let mut t = Transcript::new();
        t.record_bytes(Direction::AliceToBob, "a", 10);
        let s = format!("{}", t.stats());
        assert!(s.contains("10 bytes"));
        assert!(s.contains("1 round"));
    }
}
