//! Hash families used by the reconciliation protocols.
//!
//! The paper relies on three kinds of hashing, all realized here:
//!
//! * **Pairwise-independent hashing** ([`PairwiseHash`]) for child-set hashes
//!   (Algorithm 1 and 2 use an `O(log s)`-bit pairwise independent hash of each child
//!   set) and for level assignment in the ℓ0 estimator (Appendix A). Implemented as
//!   `((a·x + b) mod p) mod 2^bits` over the Mersenne prime `p = 2^61 − 1`, which is
//!   the textbook pairwise-independent family.
//! * **Strong 64-bit mixing** ([`hash64`], [`hash_bytes`]) for IBLT bucket selection
//!   and checksums. These need to behave like random functions on the keys actually
//!   inserted; we use a Murmur3/SplitMix-style finalizer for integers and a simple
//!   multiply-rotate scheme (an FxHash/wyhash hybrid) for byte strings.
//! * **Composite hashing of sets** ([`hash_u64_set`]) — an order-independent hash of
//!   a set of 64-bit elements, used to ward against IBLT checksum failures by
//!   verifying a recovered set against a hash of the original (Section 2, "we often
//!   ward against checksum failures by augmenting the set recovery process with a
//!   hash of each of the sets").

use crate::rng::split_seed;

/// The Mersenne prime `2^61 − 1` used as the modulus of the pairwise-independent
/// hash family (and, in `recon-field`, as the field characteristic).
pub const MERSENNE61: u64 = (1u64 << 61) - 1;

/// Reduce a 128-bit product modulo `2^61 − 1` using the Mersenne structure.
#[inline]
pub fn mod_mersenne61(x: u128) -> u64 {
    // Split into low 61 bits and the rest; since 2^61 ≡ 1 (mod p) this folds quickly.
    let lo = (x & ((1u128 << 61) - 1)) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi & MERSENNE61).wrapping_add(hi >> 61);
    if r >= MERSENNE61 {
        r -= MERSENNE61;
    }
    if r >= MERSENNE61 {
        r -= MERSENNE61;
    }
    r
}

/// A pairwise-independent hash function `x ↦ ((a·x + b) mod p) >> shift`,
/// producing `bits` output bits, with `p = 2^61 − 1`.
///
/// The coefficients `a ∈ [1, p)`, `b ∈ [0, p)` are derived deterministically from a
/// seed, so Alice and Bob construct identical functions from their shared public
/// coins without communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    bits: u32,
}

impl PairwiseHash {
    /// Construct a hash function with `bits` output bits (1 ≤ bits ≤ 61) from a seed.
    pub fn from_seed(seed: u64, bits: u32) -> Self {
        assert!((1..=61).contains(&bits), "bits must be in 1..=61, got {bits}");
        let mut a = split_seed(seed, 0x61) % MERSENNE61;
        if a == 0 {
            a = 1;
        }
        let b = split_seed(seed, 0x62) % MERSENNE61;
        Self { a, b, bits }
    }

    /// Number of output bits.
    #[inline]
    pub fn output_bits(&self) -> u32 {
        self.bits
    }

    /// Hash a 64-bit value to `bits` bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE61;
        let prod = (self.a as u128) * (x as u128) + (self.b as u128);
        let v = mod_mersenne61(prod);
        // Take the high-order bits of the 61-bit value: (v >> (61 - bits)).
        v >> (61 - self.bits)
    }
}

/// Strong 64-bit integer mixing (SplitMix64 finalizer seeded by `seed`).
///
/// Used wherever the protocols need a hash that behaves like a random function on the
/// inserted keys: IBLT bucket selection, checksums, signature hashing.
#[inline]
pub fn hash64(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte string to 64 bits with the given seed.
///
/// A simple multiply–rotate–xor scheme processing 8 bytes at a time, finished with the
/// SplitMix64 finalizer. Not cryptographic, but well-distributed on the structured
/// keys used here (serialized IBLTs, encoded sets, signature strings). Inline so the
/// IBLT hot loops can specialize it for their short fixed key widths.
#[inline]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    const K: u64 = 0x517C_C1B7_2722_0A95;
    let mut h = seed ^ (bytes.len() as u64).wrapping_mul(K);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        h = (h ^ v).rotate_left(29).wrapping_mul(K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        let v = u64::from_le_bytes(buf);
        h = (h ^ v).rotate_left(29).wrapping_mul(K);
    }
    hash64(h, seed ^ 0xA5A5_A5A5_5A5A_5A5A)
}

/// [`hash_bytes`] specialized to an exactly-8-byte input, taken as the
/// little-endian `u64` it encodes: branch-free, loop-free, and bit-identical to
/// `hash_bytes(&v.to_le_bytes(), seed)` (pinned by a unit test). The IBLT hot
/// paths use this for the ubiquitous 8-byte key width.
#[inline]
pub fn hash_bytes8(v: u64, seed: u64) -> u64 {
    const K: u64 = 0x517C_C1B7_2722_0A95;
    let h = seed ^ 8u64.wrapping_mul(K);
    let h = (h ^ v).rotate_left(29).wrapping_mul(K);
    hash64(h, seed ^ 0xA5A5_A5A5_5A5A_5A5A)
}

/// Order-independent hash of a set of 64-bit elements.
///
/// Each element is mixed with [`hash64`] and the results are combined with addition
/// and XOR, so the hash does not depend on iteration order. Used as the whole-set
/// hash that guards against undetected checksum failures (Section 2) and as the child
/// set hash in the set-of-sets protocols.
pub fn hash_u64_set<I>(elements: I, seed: u64) -> u64
where
    I: IntoIterator<Item = u64>,
{
    let mut sum: u64 = 0;
    let mut xor: u64 = 0;
    let mut count: u64 = 0;
    for x in elements {
        let h = hash64(x, seed);
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left(17);
        count += 1;
    }
    hash64(sum ^ xor.rotate_left(23) ^ count.wrapping_mul(0x2545_F491_4F6C_DD1D), seed)
}

/// Incrementally maintained [`hash_u64_set`] state.
///
/// The set hash folds per-element mixes with addition and XOR, both of which are
/// invertible, so a long-lived store can keep `(sum, xor, count)` as running state
/// and update it in O(1) per insert or delete. [`SetHasher::finish`] is pinned (by
/// unit test) to equal `hash_u64_set` over the surviving elements, whatever the
/// interleaving of inserts and removes that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetHasher {
    seed: u64,
    sum: u64,
    xor: u64,
    count: u64,
}

impl SetHasher {
    /// An empty set's hash state under `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, sum: 0, xor: 0, count: 0 }
    }

    /// Rebuild a hasher from previously captured [`SetHasher::state`] parts.
    pub fn from_state(seed: u64, state: (u64, u64, u64)) -> Self {
        Self { seed, sum: state.0, xor: state.1, count: state.2 }
    }

    /// The raw `(sum, xor, count)` folding state, for durable snapshots.
    pub fn state(&self) -> (u64, u64, u64) {
        (self.sum, self.xor, self.count)
    }

    /// Number of elements folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold element `x` into the set.
    #[inline]
    pub fn insert(&mut self, x: u64) {
        let h = hash64(x, self.seed);
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h.rotate_left(17);
        self.count += 1;
    }

    /// Fold element `x` out of the set (exact inverse of [`SetHasher::insert`]).
    #[inline]
    pub fn remove(&mut self, x: u64) {
        let h = hash64(x, self.seed);
        self.sum = self.sum.wrapping_sub(h);
        self.xor ^= h.rotate_left(17);
        self.count -= 1;
    }

    /// The set hash of the current contents; equals [`hash_u64_set`] of the same
    /// elements under the same seed.
    pub fn finish(&self) -> u64 {
        hash64(
            self.sum ^ self.xor.rotate_left(23) ^ self.count.wrapping_mul(0x2545_F491_4F6C_DD1D),
            self.seed,
        )
    }
}

/// Truncate a 64-bit hash to `bits` bits (used for the `O(log s)`-bit child hashes).
#[inline]
pub fn truncate_bits(h: u64, bits: u32) -> u64 {
    if bits >= 64 {
        h
    } else {
        h & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mod_mersenne_agrees_with_naive() {
        for x in [0u128, 1, 5, 1 << 61, (1 << 61) - 1, u64::MAX as u128, u128::MAX >> 3] {
            assert_eq!(mod_mersenne61(x), (x % (MERSENNE61 as u128)) as u64, "x = {x}");
        }
    }

    #[test]
    fn pairwise_hash_range_respected() {
        let h = PairwiseHash::from_seed(1, 10);
        for x in 0..1000u64 {
            assert!(h.hash(x) < 1024);
        }
    }

    #[test]
    fn pairwise_hash_is_deterministic_per_seed() {
        let h1 = PairwiseHash::from_seed(7, 32);
        let h2 = PairwiseHash::from_seed(7, 32);
        let h3 = PairwiseHash::from_seed(8, 32);
        assert_eq!(h1.hash(12345), h2.hash(12345));
        assert_ne!(h1.hash(12345), h3.hash(12345), "different seeds should differ (whp)");
    }

    #[test]
    fn pairwise_hash_spreads_values() {
        // With 16 output bits and 2^12 inputs, collisions should be rare (birthday ~ 12%).
        let h = PairwiseHash::from_seed(3, 20);
        let outputs: HashSet<u64> = (0..4096u64).map(|x| h.hash(x)).collect();
        assert!(outputs.len() > 4000, "only {} distinct outputs", outputs.len());
    }

    #[test]
    fn hash64_avalanche() {
        // Flipping one input bit should flip roughly half the output bits on average.
        let mut total = 0u32;
        let samples = 256;
        for i in 0..samples {
            let x = hash64(i, 0) ^ i; // arbitrary input
            let a = hash64(x, 42);
            let b = hash64(x ^ 1, 42);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((20.0..44.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn hash_bytes8_matches_hash_bytes() {
        for v in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            for seed in [0u64, 7, u64::MAX] {
                assert_eq!(hash_bytes8(v, seed), hash_bytes(&v.to_le_bytes(), seed));
            }
        }
    }

    #[test]
    fn hash_bytes_depends_on_content_and_length() {
        assert_ne!(hash_bytes(b"abc", 0), hash_bytes(b"abd", 0));
        assert_ne!(hash_bytes(b"abc", 0), hash_bytes(b"abc\0", 0));
        assert_ne!(hash_bytes(b"abc", 0), hash_bytes(b"abc", 1));
        assert_eq!(hash_bytes(b"hello world", 9), hash_bytes(b"hello world", 9));
    }

    #[test]
    fn hash_bytes_handles_all_lengths() {
        let data: Vec<u8> = (0..64).collect();
        let mut seen = HashSet::new();
        for len in 0..=64 {
            assert!(seen.insert(hash_bytes(&data[..len], 5)), "collision at len {len}");
        }
    }

    #[test]
    fn set_hash_is_order_independent() {
        let a = hash_u64_set([1u64, 2, 3, 500, 9999], 77);
        let b = hash_u64_set([9999u64, 500, 3, 2, 1], 77);
        assert_eq!(a, b);
    }

    #[test]
    fn set_hash_distinguishes_sets() {
        let a = hash_u64_set([1u64, 2, 3], 77);
        let b = hash_u64_set([1u64, 2, 4], 77);
        let c = hash_u64_set([1u64, 2], 77);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn set_hash_of_empty_set_is_stable() {
        assert_eq!(hash_u64_set(std::iter::empty(), 3), hash_u64_set(std::iter::empty(), 3));
        assert_ne!(hash_u64_set(std::iter::empty(), 3), hash_u64_set([0u64], 3));
    }

    #[test]
    fn set_hasher_matches_batch_hash_under_churn() {
        // Arbitrary insert/remove history: the incremental state must land exactly
        // on hash_u64_set of the surviving elements.
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let mut hasher = SetHasher::new(seed);
            let mut live: HashSet<u64> = HashSet::new();
            let mut x = 0x1234_5678u64;
            for step in 0..500u64 {
                x = hash64(x, step);
                let key = x >> 8;
                if step % 3 == 2 && !live.is_empty() {
                    let victim = *live.iter().next().unwrap();
                    live.remove(&victim);
                    hasher.remove(victim);
                } else if live.insert(key) {
                    hasher.insert(key);
                }
                assert_eq!(
                    hasher.finish(),
                    hash_u64_set(live.iter().copied(), seed),
                    "diverged at step {step} (seed {seed})"
                );
            }
            assert_eq!(hasher.count(), live.len() as u64);
        }
    }

    #[test]
    fn set_hasher_state_roundtrips() {
        let mut h = SetHasher::new(9);
        for x in [3u64, 99, 12345] {
            h.insert(x);
        }
        let restored = SetHasher::from_state(9, h.state());
        assert_eq!(restored, h);
        assert_eq!(restored.finish(), hash_u64_set([3u64, 99, 12345], 9));
    }

    #[test]
    fn truncate_bits_masks_correctly() {
        assert_eq!(truncate_bits(u64::MAX, 8), 255);
        assert_eq!(truncate_bits(u64::MAX, 64), u64::MAX);
        assert_eq!(truncate_bits(0b1011, 2), 0b11);
    }
}
