//! Explicit binary wire encoding for protocol messages.
//!
//! The paper states every bound in *bits of communication*; to regenerate those
//! bounds empirically every message sent between Alice and Bob in this workspace is
//! serialized through this module, so its size in bytes is exact and deterministic.
//!
//! The format is deliberately simple (little-endian fixed-width integers, LEB128-style
//! varints for lengths, length-prefixed sequences); it is not meant to interoperate
//! with anything, only to make communication measurable and decodable.

use std::fmt;

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was fully decoded.
    UnexpectedEnd,
    /// A varint used more than 10 bytes.
    VarintOverflow,
    /// A length prefix or enum tag had an invalid value.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of message"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types that can be serialized into the wire format.
pub trait Encode {
    /// Append the serialized representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Serialized size in bytes (default: encode into a scratch buffer and count).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Convenience: serialize into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Decode a value from the front of `buf`, advancing it past the consumed bytes.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: decode from a complete buffer, requiring it to be fully consumed.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, WireError> {
        let value = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(value)
        } else {
            Err(WireError::Invalid("trailing bytes"))
        }
    }
}

/// Write an unsigned LEB128 varint.
pub fn write_uvarint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_uvarint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for i in 0.. {
        if i >= 10 {
            return Err(WireError::VarintOverflow);
        }
        let Some((&byte, rest)) = buf.split_first() else {
            return Err(WireError::UnexpectedEnd);
        };
        *buf = rest;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    unreachable!()
}

/// Number of bytes a varint encoding of `value` occupies.
pub fn uvarint_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::UnexpectedEnd);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! impl_fixed_int {
    ($ty:ty, $n:expr) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn encoded_len(&self) -> usize {
                $n
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(buf, $n)?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("fixed width")))
            }
        }
    };
}

impl_fixed_int!(u8, 1);
impl_fixed_int!(u16, 2);
impl_fixed_int!(u32, 4);
impl_fixed_int!(u64, 8);
impl_fixed_int!(i64, 8);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

/// `usize` is encoded as a varint (lengths and counts dominate; varints keep the
/// measured communication close to the information-theoretic size the paper counts).
impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(read_uvarint(buf)? as usize)
    }
}

/// The unit type encodes to nothing (useful for empty control messages).
impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn encoded_len(&self) -> usize {
        0
    }
}

impl Decode for () {
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = read_uvarint(buf)? as usize;
        // Guard against absurd lengths from corrupt input: each element needs ≥ 1 byte.
        if len > buf.len() {
            return Err(WireError::Invalid("sequence length exceeds remaining bytes"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// Write `bytes` with an explicit length prefix — the borrowed-slice counterpart
/// of encoding a [`Bytes`] value, for encoders that already hold the bytes and
/// should not clone them into a temporary.
pub fn write_length_prefixed(buf: &mut Vec<u8>, bytes: &[u8]) {
    write_uvarint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Read a length-prefixed byte slice, borrowing from the input buffer.
pub fn read_length_prefixed<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], WireError> {
    let len = read_uvarint(buf)? as usize;
    take(buf, len)
}

/// Raw bytes with an explicit length prefix.
///
/// Used for nested encodings (e.g. a serialized child IBLT carried as the key of an
/// outer IBLT).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(pub Vec<u8>);

impl Encode for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_length_prefixed(buf, &self.0);
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.0.len() as u64) + self.0.len()
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Bytes(read_length_prefixed(buf)?.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(bytes.len(), value.encoded_len(), "encoded_len mismatch");
        let decoded = T::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, value);
    }

    #[test]
    fn fixed_ints_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
    }

    #[test]
    fn varint_roundtrip_and_lengths() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert_eq!(buf.len(), uvarint_len(v), "length mismatch for {v}");
            let mut slice = buf.as_slice();
            assert_eq!(read_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        let mut slice = &buf[..buf.len() - 1];
        assert_eq!(read_uvarint(&mut slice), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = [0x80u8; 11];
        let mut slice = &buf[..];
        assert_eq!(read_uvarint(&mut slice), Err(WireError::VarintOverflow));
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        roundtrip(vec![1u64, 2, 3, u64::MAX]);
        roundtrip(Vec::<u32>::new());
        roundtrip((7u32, 9u64));
        roundtrip((1u8, 2u16, vec![3u32, 4]));
        roundtrip(vec![(1u64, 2u64), (3, 4)]);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<u64>::None);
        roundtrip(Some(99u64));
        roundtrip(vec![Some(1u32), None, Some(3)]);
    }

    #[test]
    fn bytes_roundtrip() {
        roundtrip(Bytes(vec![]));
        roundtrip(Bytes(vec![0, 1, 2, 255]));
    }

    #[test]
    fn bool_rejects_bad_tag() {
        assert!(bool::from_bytes(&[2]).is_err());
    }

    #[test]
    fn vec_rejects_absurd_length() {
        // Claims 2^40 elements but provides none.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1 << 40);
        assert!(Vec::<u8>::from_bytes(&buf).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }
}
