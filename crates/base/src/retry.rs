//! Recovery policy for reconciliation over hostile transports.
//!
//! The protocol layer already retries *inside* a session (the amplification
//! combinators re-send replicas under fresh hash functions). This module is
//! the layer above: when a whole session dies of a transport-level failure —
//! a timeout, a corrupted frame, a peer that vanished — the session state
//! machines are consumed and cannot be re-driven, so recovery means *running
//! a fresh attempt*: reconnect, re-register fresh parties, re-run.
//!
//! A [`RetryPolicy`] says how many attempts to make, how long to back off
//! between them, and how long each attempt may take; [`run_with_retry`] is
//! the generic driver. Which errors are worth another attempt is decided by
//! [`ReconError::is_retryable`] — a *structural* property of the error, never
//! a string match: transport-level failures are retryable (a fresh attempt
//! sees a fresh network), data-level failures are not (the same inputs will
//! fail the same way).

use crate::error::ReconError;
use std::time::Duration;

/// How (and whether) failed attempts are re-run; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included. `1` disables retrying.
    pub max_attempts: u32,
    /// Sleep before attempt `n+1` is `backoff << n`, capped at
    /// [`RetryPolicy::max_backoff`]. `Duration::ZERO` disables sleeping
    /// (in-process transports have nothing to wait out).
    pub backoff: Duration,
    /// Upper bound on one exponential-backoff sleep.
    pub max_backoff: Duration,
    /// Time budget for each individual attempt. Drivers with their own timer
    /// plumbing (the reactor's `session_deadline`, `drive_endpoint`'s whole-
    /// call deadline) apply this per attempt; `None` leaves their defaults.
    pub attempt_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms base backoff capped at 1 s, attempt deadline
    /// left to the driver.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            attempt_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The no-retry policy: one attempt, failures are final.
    pub fn none() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// A policy making up to `max_attempts` attempts with the default backoff.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self { max_attempts: max_attempts.max(1), ..Self::default() }
    }

    /// Builder-style: set the base backoff.
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Builder-style: set the per-attempt deadline.
    pub fn attempt_deadline(mut self, deadline: Duration) -> Self {
        self.attempt_deadline = Some(deadline);
        self
    }

    /// The sleep inserted after failed attempt `attempt` (0-based):
    /// exponential from [`RetryPolicy::backoff`], capped.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let exp = attempt.min(16); // 2^16 * anything is already past any cap
        self.backoff.saturating_mul(1u32 << exp).min(self.max_backoff)
    }
}

/// Run `attempt` (called with the 0-based attempt number) until it succeeds,
/// fails with a non-retryable error, or the policy's attempts are exhausted —
/// in which case the *last* error is returned, its context intact.
///
/// Retry decisions go through [`ReconError::is_retryable`] exclusively. The
/// closure owns reconnecting / re-creating parties: by the time an attempt
/// fails, its session state machines are consumed.
pub fn run_with_retry<T>(
    policy: &RetryPolicy,
    mut attempt: impl FnMut(u32) -> Result<T, ReconError>,
) -> Result<T, ReconError> {
    let attempts = policy.max_attempts.max(1);
    let mut n = 0;
    loop {
        match attempt(n) {
            Ok(value) => return Ok(value),
            Err(error) => {
                if !error.is_retryable() || n + 1 >= attempts {
                    return Err(error);
                }
                let backoff = policy.backoff_after(n);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                n += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_retryable_errors_up_to_the_budget() {
        let policy = RetryPolicy { backoff: Duration::ZERO, ..RetryPolicy::with_attempts(4) };
        let mut calls = 0;
        let result = run_with_retry(&policy, |attempt| {
            assert_eq!(attempt, calls);
            calls += 1;
            if attempt < 2 {
                Err(ReconError::Timeout { waited_ms: 10 })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let policy = RetryPolicy { backoff: Duration::ZERO, ..RetryPolicy::with_attempts(5) };
        let mut calls = 0;
        let result: Result<(), _> = run_with_retry(&policy, |_| {
            calls += 1;
            Err(ReconError::InvalidInput("bad".into()))
        });
        assert!(matches!(result, Err(ReconError::InvalidInput(_))));
        assert_eq!(calls, 1, "data-level failures must not burn retry budget");
    }

    #[test]
    fn exhaustion_returns_the_last_error_with_context() {
        let policy = RetryPolicy { backoff: Duration::ZERO, ..RetryPolicy::with_attempts(3) };
        let result: Result<(), _> = run_with_retry(&policy, |attempt| {
            Err(ReconError::Timeout { waited_ms: 100 + u64::from(attempt) })
        });
        assert_eq!(result.unwrap_err(), ReconError::Timeout { waited_ms: 102 });
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_after(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_after(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_after(2), Duration::from_millis(35));
        assert_eq!(policy.backoff_after(30), Duration::from_millis(35));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
