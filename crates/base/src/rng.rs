//! Deterministic pseudo-random number generation ("public coins").
//!
//! The paper (Section 2) assumes Alice and Bob share public coins: both parties can
//! use the same random hash functions without communicating them. In practice one
//! shares a small seed and derives everything from it. This module provides the two
//! generators used throughout the workspace:
//!
//! * [`SplitMix64`] — a tiny, very fast generator used to expand a single `u64` seed
//!   into independent sub-seeds (e.g. one per IBLT hash function, one per cascading
//!   level). It is the standard seeding procedure for xoshiro-family generators.
//! * [`Xoshiro256`] — xoshiro256** by Blackman and Vigna, used for workload
//!   generation (random sets, `G(n, p)` graphs, random forests, perturbations) and
//!   for the randomized steps inside protocols (e.g. choosing evaluation points or
//!   random shifts in polynomial root finding).
//!
//! Neither generator is cryptographic; the paper only needs hash functions that are
//! pairwise independent or behave like random functions on the inputs at hand.

/// Advance a SplitMix64 state and return the next 64-bit output.
///
/// This is the reference SplitMix64 step function (Steele, Lea & Flood). It is used
/// to derive independent seeds from a single public-coin seed, e.g.
/// `seed_i = split_seed(seed, i)`.
#[inline]
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the `index`-th sub-seed from a root seed.
///
/// Protocols in this workspace never share a raw seed between two different hash
/// functions; they always derive `split_seed(root, role_index)` so that the hash
/// functions are independent (as the paper's public-coin model assumes).
#[inline]
pub fn split_seed(root: u64, index: u64) -> u64 {
    let mut s = root ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    // Two rounds of SplitMix64 are plenty to decorrelate consecutive indices.
    let a = splitmix64_next(&mut s);
    let b = splitmix64_next(&mut s);
    a ^ b.rotate_left(32)
}

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator.
///
/// Mainly used for seed expansion; for bulk random generation prefer [`Xoshiro256`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Return the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64_next(&mut self.state)
    }
}

/// xoshiro256** 1.0 by David Blackman and Sebastiano Vigna (public domain).
///
/// A small, fast, high-quality non-cryptographic generator with 256 bits of state.
/// All workload generation in this repository (random sets, random graphs, random
/// forests, perturbations) is driven by this generator seeded explicitly, so every
/// experiment is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed (expanded through SplitMix64, as
    /// recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64_next(&mut sm);
        }
        // Avoid the all-zero state (astronomically unlikely, but cheap to guard).
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Return the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Return a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Return a uniformly distributed `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Return a uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `count` distinct indices from `[0, bound)` (requires `count <= bound`).
    ///
    /// Uses a Floyd-style sampler: O(count) expected hash-set operations, so it stays
    /// cheap even when `bound` is large (e.g. sampling edge slots of a big graph).
    pub fn sample_distinct(&mut self, bound: u64, count: usize) -> Vec<u64> {
        assert!((count as u64) <= bound, "cannot sample {count} distinct values below {bound}");
        let mut chosen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        // Floyd's algorithm: for j in bound-count..bound, pick t in [0, j]; if taken, use j.
        let start = bound - count as u64;
        for j in start..bound {
            let t = self.next_below(j + 1);
            let pick = if chosen.insert(t) { t } else { j };
            if pick != t {
                chosen.insert(pick);
            }
            out.push(pick);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 from the public-domain reference code.
        let mut s = SplitMix64::new(0);
        let a = s.next_u64();
        let b = s.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut s2 = SplitMix64::new(0);
        assert_eq!(s2.next_u64(), a);
        assert_eq!(s2.next_u64(), b);
    }

    #[test]
    fn split_seed_is_deterministic_and_spreads() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_eq!(a, split_seed(42, 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = Xoshiro256::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_respects_extremes() {
        let mut rng = Xoshiro256::new(3);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
    }

    #[test]
    fn next_bool_roughly_matches_probability() {
        let mut rng = Xoshiro256::new(1234);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| rng.next_bool(0.25)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_yields_distinct_values_in_range() {
        let mut rng = Xoshiro256::new(77);
        let sample = rng.sample_distinct(1000, 200);
        assert_eq!(sample.len(), 200);
        let unique: std::collections::HashSet<_> = sample.iter().copied().collect();
        assert_eq!(unique.len(), 200);
        assert!(sample.iter().all(|&x| x < 1000));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = Xoshiro256::new(78);
        let mut sample = rng.sample_distinct(16, 16);
        sample.sort_unstable();
        assert_eq!(sample, (0..16).collect::<Vec<_>>());
    }
}
