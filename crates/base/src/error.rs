//! The shared error type for reconciliation protocols.
//!
//! The paper distinguishes several failure modes; each gets an explicit variant so
//! tests and the experiment harness can assert on *which* failure occurred:
//!
//! * **peeling failures** — the IBLT's 2-core is non-empty and keys remain that
//!   cannot be extracted (detectable; probability `1/poly(m)`, Theorem 2.1),
//! * **checksum failures** — a cell with count ±1 actually contained several keys
//!   whose checksums collided (probability `1/poly(u)`; guarded by whole-set hashes),
//! * **matching failures** — a child IBLT in `E_A \ E_B` does not decode against any
//!   child IBLT in `E_B \ E_A` (Algorithm 1 "report failure"),
//! * **estimation failures** — the difference bound supplied or estimated was too
//!   small for the actual difference,
//! * **separation failures** — a random graph fails to be `(h, a, b)`-separated or
//!   its degree neighborhoods are not `(m, k)`-disjoint, so signature-based labeling
//!   cannot be trusted (Theorems 5.3, 5.5).

use crate::wire::WireError;
use std::fmt;

/// Error type shared by all reconciliation protocols in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconError {
    /// IBLT peeling stopped with keys still in the table (non-empty 2-core).
    PeelingFailure {
        /// How many cells remained non-empty when peeling stalled.
        remaining_cells: usize,
    },
    /// A recovered set failed verification against its hash, indicating an
    /// (otherwise undetectable) checksum failure inside an IBLT.
    ChecksumFailure,
    /// A child IBLT recovered from the outer table could not be decoded against any
    /// of the other party's differing child sets.
    NoMatchingChild {
        /// Hash of the child encoding that could not be matched.
        child_hash: u64,
    },
    /// The claimed or estimated difference bound was too small for the actual data.
    DifferenceBoundTooSmall {
        /// The bound that was used.
        bound: usize,
    },
    /// The protocol exhausted its retry/doubling budget without succeeding.
    RetriesExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
    /// A random graph was not sufficiently separated / disjoint for signature-based
    /// reconciliation (Definitions 5.1 and 5.4).
    SeparationFailure(String),
    /// The input violated a protocol precondition (e.g. element outside the universe,
    /// non-forest edit, mismatched vertex counts).
    InvalidInput(String),
    /// A message failed to deserialize.
    Wire(WireError),
    /// A transport-level failure: the underlying byte stream errored, closed
    /// mid-session, or delivered unframeable garbage.
    Transport(String),
    /// A sans-I/O session stalled: neither party had a message to send and the
    /// receiving party had not produced its output (a protocol logic error).
    SessionStalled {
        /// How many messages had been exchanged when the session stalled.
        messages_exchanged: usize,
    },
    /// The characteristic-polynomial interpolation produced an inconsistent system
    /// (more differences than evaluation points).
    InterpolationFailure,
    /// A deadline elapsed before the work completed: a reactor-served session
    /// (or its whole connection) exceeded its readiness-driven time budget.
    Timeout {
        /// How long the runtime waited, in milliseconds, before giving up.
        waited_ms: u64,
    },
}

impl fmt::Display for ReconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconError::PeelingFailure { remaining_cells } => {
                write!(f, "IBLT peeling failure ({remaining_cells} cells undecodable)")
            }
            ReconError::ChecksumFailure => write!(f, "IBLT checksum failure detected"),
            ReconError::NoMatchingChild { child_hash } => {
                write!(f, "no matching child set for child encoding {child_hash:#x}")
            }
            ReconError::DifferenceBoundTooSmall { bound } => {
                write!(f, "difference bound {bound} too small for actual difference")
            }
            ReconError::RetriesExhausted { attempts } => {
                write!(f, "protocol failed after {attempts} attempts")
            }
            ReconError::SeparationFailure(why) => write!(f, "graph separation failure: {why}"),
            ReconError::InvalidInput(why) => write!(f, "invalid input: {why}"),
            ReconError::Wire(e) => write!(f, "wire decode error: {e}"),
            ReconError::Transport(why) => write!(f, "transport failure: {why}"),
            ReconError::SessionStalled { messages_exchanged } => {
                write!(f, "protocol session stalled after {messages_exchanged} message(s)")
            }
            ReconError::InterpolationFailure => {
                write!(f, "characteristic polynomial interpolation failed")
            }
            ReconError::Timeout { waited_ms } => {
                write!(f, "deadline elapsed after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for ReconError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReconError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ReconError {
    fn from(e: WireError) -> Self {
        ReconError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_information() {
        let e = ReconError::PeelingFailure { remaining_cells: 3 };
        assert!(e.to_string().contains('3'));
        let e = ReconError::DifferenceBoundTooSmall { bound: 8 };
        assert!(e.to_string().contains('8'));
        let e = ReconError::NoMatchingChild { child_hash: 0xABCD };
        assert!(e.to_string().contains("abcd"));
    }

    #[test]
    fn wire_errors_convert() {
        let e: ReconError = WireError::UnexpectedEnd.into();
        assert!(matches!(e, ReconError::Wire(WireError::UnexpectedEnd)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ReconError::ChecksumFailure, ReconError::ChecksumFailure);
        assert_ne!(ReconError::ChecksumFailure, ReconError::PeelingFailure { remaining_cells: 0 });
    }
}
