//! The shared error type for reconciliation protocols.
//!
//! The paper distinguishes several failure modes; each gets an explicit variant so
//! tests and the experiment harness can assert on *which* failure occurred:
//!
//! * **peeling failures** — the IBLT's 2-core is non-empty and keys remain that
//!   cannot be extracted (detectable; probability `1/poly(m)`, Theorem 2.1),
//! * **checksum failures** — a cell with count ±1 actually contained several keys
//!   whose checksums collided (probability `1/poly(u)`; guarded by whole-set hashes),
//! * **matching failures** — a child IBLT in `E_A \ E_B` does not decode against any
//!   child IBLT in `E_B \ E_A` (Algorithm 1 "report failure"),
//! * **estimation failures** — the difference bound supplied or estimated was too
//!   small for the actual difference,
//! * **separation failures** — a random graph fails to be `(h, a, b)`-separated or
//!   its degree neighborhoods are not `(m, k)`-disjoint, so signature-based labeling
//!   cannot be trusted (Theorems 5.3, 5.5).

use crate::wire::WireError;
use std::fmt;

/// Error type shared by all reconciliation protocols in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconError {
    /// IBLT peeling stopped with keys still in the table (non-empty 2-core).
    PeelingFailure {
        /// How many cells remained non-empty when peeling stalled.
        remaining_cells: usize,
    },
    /// A recovered set failed verification against its hash, indicating an
    /// (otherwise undetectable) checksum failure inside an IBLT.
    ChecksumFailure,
    /// A child IBLT recovered from the outer table could not be decoded against any
    /// of the other party's differing child sets.
    NoMatchingChild {
        /// Hash of the child encoding that could not be matched.
        child_hash: u64,
    },
    /// The claimed or estimated difference bound was too small for the actual data.
    DifferenceBoundTooSmall {
        /// The bound that was used.
        bound: usize,
    },
    /// The protocol exhausted its retry/doubling budget without succeeding.
    RetriesExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
    /// A random graph was not sufficiently separated / disjoint for signature-based
    /// reconciliation (Definitions 5.1 and 5.4).
    SeparationFailure(String),
    /// The input violated a protocol precondition (e.g. element outside the universe,
    /// non-forest edit, mismatched vertex counts).
    InvalidInput(String),
    /// A message failed to deserialize.
    Wire(WireError),
    /// A transport-level failure: the underlying byte stream errored, closed
    /// mid-session, or delivered unframeable garbage. The residual stringly
    /// variant for raw I/O errors; conditions a driver can react to have
    /// their own variants ([`ReconError::FrameTooLarge`],
    /// [`ReconError::ChecksumMismatch`], [`ReconError::PeerClosed`],
    /// [`ReconError::SessionStuck`]).
    Transport(String),
    /// A frame's length prefix exceeded the receiver's configured cap —
    /// either a corrupted/desynced stream or a peer probing for an OOM.
    FrameTooLarge {
        /// The length the prefix claimed.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// A checked frame's keyed checksum trailer did not match its bytes: the
    /// frame was corrupted (or forged) in flight.
    ChecksumMismatch {
        /// The checksum computed over the received bytes.
        expected: u64,
        /// The checksum the frame carried.
        got: u64,
    },
    /// The peer closed the stream while sessions were still unfinished.
    PeerClosed {
        /// How many local sessions were still open.
        open_sessions: usize,
    },
    /// An in-process endpoint pair made no progress for a full round and can
    /// never unblock itself (e.g. a dropped frame on a faulty transport, or a
    /// session registered on only one side).
    SessionStuck {
        /// Unfinished session ids on the first endpoint, ascending.
        waiting_a: Vec<u64>,
        /// Unfinished session ids on the second endpoint, ascending.
        waiting_b: Vec<u64>,
    },
    /// A hard resource cap was hit — the bound a server enforces so a
    /// misbehaving peer cannot grow its memory without limit.
    ResourceExhausted {
        /// Which cap (e.g. `"sessions per connection"`).
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// A sans-I/O session stalled: neither party had a message to send and the
    /// receiving party had not produced its output (a protocol logic error).
    SessionStalled {
        /// How many messages had been exchanged when the session stalled.
        messages_exchanged: usize,
    },
    /// The characteristic-polynomial interpolation produced an inconsistent system
    /// (more differences than evaluation points).
    InterpolationFailure,
    /// A deadline elapsed before the work completed: a reactor-served session
    /// (or its whole connection) exceeded its readiness-driven time budget.
    Timeout {
        /// How long the runtime waited, in milliseconds, before giving up.
        waited_ms: u64,
    },
}

impl ReconError {
    /// Whether a *fresh attempt* (reconnect, re-register fresh parties,
    /// re-run) has a chance of succeeding. This is the sole retry criterion
    /// used by [`retry::run_with_retry`](crate::retry::run_with_retry) —
    /// never a string match.
    ///
    /// Transport-level failures are retryable: they say something about the
    /// network the bytes crossed, not about the data being reconciled. A
    /// [`ReconError::ChecksumMismatch`] in particular means a frame was
    /// damaged in flight — the whole point of the checked-frame trailer is to
    /// turn silent corruption into exactly this retryable signal.
    ///
    /// Data- and protocol-level failures are not retryable here: re-running
    /// the identical session on the identical inputs fails identically.
    /// (Decode failures like [`ReconError::PeelingFailure`] are handled a
    /// layer *below* by the amplification combinators, which change the hash
    /// functions between in-session attempts; by the time one surfaces out of
    /// a session, that budget is spent.)
    pub fn is_retryable(&self) -> bool {
        match self {
            ReconError::Transport(_)
            | ReconError::FrameTooLarge { .. }
            | ReconError::ChecksumMismatch { .. }
            | ReconError::PeerClosed { .. }
            | ReconError::SessionStuck { .. }
            | ReconError::Timeout { .. } => true,
            ReconError::PeelingFailure { .. }
            | ReconError::ChecksumFailure
            | ReconError::NoMatchingChild { .. }
            | ReconError::DifferenceBoundTooSmall { .. }
            | ReconError::RetriesExhausted { .. }
            | ReconError::SeparationFailure(_)
            | ReconError::InvalidInput(_)
            | ReconError::Wire(_)
            | ReconError::SessionStalled { .. }
            | ReconError::InterpolationFailure
            | ReconError::ResourceExhausted { .. } => false,
        }
    }
}

impl fmt::Display for ReconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconError::PeelingFailure { remaining_cells } => {
                write!(f, "IBLT peeling failure ({remaining_cells} cells undecodable)")
            }
            ReconError::ChecksumFailure => write!(f, "IBLT checksum failure detected"),
            ReconError::NoMatchingChild { child_hash } => {
                write!(f, "no matching child set for child encoding {child_hash:#x}")
            }
            ReconError::DifferenceBoundTooSmall { bound } => {
                write!(f, "difference bound {bound} too small for actual difference")
            }
            ReconError::RetriesExhausted { attempts } => {
                write!(f, "protocol failed after {attempts} attempts")
            }
            ReconError::SeparationFailure(why) => write!(f, "graph separation failure: {why}"),
            ReconError::InvalidInput(why) => write!(f, "invalid input: {why}"),
            ReconError::Wire(e) => write!(f, "wire decode error: {e}"),
            ReconError::Transport(why) => write!(f, "transport failure: {why}"),
            ReconError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            ReconError::ChecksumMismatch { expected, got } => {
                write!(f, "frame checksum mismatch (expected {expected:#x}, got {got:#x})")
            }
            ReconError::PeerClosed { open_sessions } => {
                write!(f, "peer closed the stream with {open_sessions} session(s) unfinished")
            }
            ReconError::SessionStuck { waiting_a, waiting_b } => {
                write!(
                    f,
                    "endpoint pair stuck: no frame dispatched, byte moved, or session \
                     finished in a full round (waiting sessions a={waiting_a:?} \
                     b={waiting_b:?})"
                )
            }
            ReconError::ResourceExhausted { what, limit } => {
                write!(f, "resource cap hit: {what} limit is {limit}")
            }
            ReconError::SessionStalled { messages_exchanged } => {
                write!(f, "protocol session stalled after {messages_exchanged} message(s)")
            }
            ReconError::InterpolationFailure => {
                write!(f, "characteristic polynomial interpolation failed")
            }
            ReconError::Timeout { waited_ms } => {
                write!(f, "deadline elapsed after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for ReconError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReconError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ReconError {
    fn from(e: WireError) -> Self {
        ReconError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_information() {
        let e = ReconError::PeelingFailure { remaining_cells: 3 };
        assert!(e.to_string().contains('3'));
        let e = ReconError::DifferenceBoundTooSmall { bound: 8 };
        assert!(e.to_string().contains('8'));
        let e = ReconError::NoMatchingChild { child_hash: 0xABCD };
        assert!(e.to_string().contains("abcd"));
    }

    #[test]
    fn wire_errors_convert() {
        let e: ReconError = WireError::UnexpectedEnd.into();
        assert!(matches!(e, ReconError::Wire(WireError::UnexpectedEnd)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ReconError::ChecksumFailure, ReconError::ChecksumFailure);
        assert_ne!(ReconError::ChecksumFailure, ReconError::PeelingFailure { remaining_cells: 0 });
    }

    #[test]
    fn transport_level_errors_are_retryable_and_data_level_are_not() {
        for retryable in [
            ReconError::Transport("stream read: reset".into()),
            ReconError::FrameTooLarge { len: 1 << 30, max: 1 << 20 },
            ReconError::ChecksumMismatch { expected: 1, got: 2 },
            ReconError::PeerClosed { open_sessions: 3 },
            ReconError::SessionStuck { waiting_a: vec![1], waiting_b: vec![] },
            ReconError::Timeout { waited_ms: 30_000 },
        ] {
            assert!(retryable.is_retryable(), "{retryable} should be retryable");
        }
        for fatal in [
            ReconError::PeelingFailure { remaining_cells: 2 },
            ReconError::ChecksumFailure,
            ReconError::DifferenceBoundTooSmall { bound: 4 },
            ReconError::RetriesExhausted { attempts: 4 },
            ReconError::InvalidInput("bad".into()),
            ReconError::Wire(WireError::UnexpectedEnd),
            ReconError::ResourceExhausted { what: "sessions per connection", limit: 8 },
        ] {
            assert!(!fatal.is_retryable(), "{fatal} should be fatal");
        }
    }

    #[test]
    fn structured_transport_errors_display_their_context() {
        let e = ReconError::FrameTooLarge { len: 500, max: 100 };
        assert!(e.to_string().contains("500") && e.to_string().contains("100"));
        let e = ReconError::ChecksumMismatch { expected: 0xAB, got: 0xCD };
        assert!(e.to_string().contains("0xab") && e.to_string().contains("0xcd"));
        let e = ReconError::PeerClosed { open_sessions: 7 };
        assert!(e.to_string().contains('7'));
        let e = ReconError::SessionStuck { waiting_a: vec![3], waiting_b: vec![9] };
        assert!(e.to_string().contains("a=[3]") && e.to_string().contains("b=[9]"));
        let e = ReconError::ResourceExhausted { what: "buffered output bytes", limit: 4096 };
        assert!(e.to_string().contains("buffered output bytes"));
    }
}
