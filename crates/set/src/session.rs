//! Sans-I/O [`Party`] implementations of the plain-set protocols.
//!
//! Each factory builds *one side* of a protocol from that party's own data plus
//! the shared [`SessionConfig`] (public-coin seed, amplification policy,
//! estimator shape). The pairs reproduce, message for message, the transcripts of
//! the legacy one-shot drivers in [`crate::protocol`] — which now delegate here.

use crate::charpoly_protocol::CharPolyProtocol;
use crate::iblt_protocol::IbltSetProtocol;
use recon_base::rng::split_seed;
use recon_base::ReconError;
use recon_estimator::{L0Estimator, Side};
use recon_protocol::{
    AmplifiedReceiver, AmplifiedSender, Deferred, Envelope, Exhaust, Party, SessionConfig,
    WithPreamble,
};
use std::collections::HashSet;

/// Envelope tag: an IBLT or characteristic-polynomial set digest.
pub const TAG_DIGEST: u16 = 0x5E01;
/// Envelope tag: a retry request (control, uncharged).
pub const TAG_RETRY: u16 = 0x5E02;
/// Envelope tag: the ℓ0 difference estimator of Corollary 3.2.
pub const TAG_ESTIMATOR: u16 = 0x5E03;

fn retryable_iblt_failure(error: &ReconError) -> bool {
    matches!(error, ReconError::PeelingFailure { .. } | ReconError::ChecksumFailure)
}

fn control_retry(_attempt: u64) -> Envelope {
    Envelope::control(TAG_RETRY, "retry request", &())
}

/// Alice's side of Corollary 2.2 (one-round IBLT set reconciliation, known `d`),
/// with replication-based amplification per the shared config.
pub fn iblt_known_alice(
    set: &HashSet<u64>,
    d: usize,
    config: &SessionConfig,
) -> Result<impl Party<Output = ()>, ReconError> {
    let set = set.clone();
    let seed = config.seed;
    AmplifiedSender::new(config.amplification.max_attempts, move |attempt| {
        let protocol = IbltSetProtocol::tuned(split_seed(seed, 0x2E0 + attempt));
        let digest = protocol.digest(&set, d);
        let label = if attempt == 0 { "set digest (IBLT)" } else { "set digest (replica)" };
        Ok(Envelope::round(TAG_DIGEST, label, &digest))
    })
}

/// Bob's side of Corollary 2.2: decodes each digest against his set, requesting
/// a replica on detectable failures.
pub fn iblt_known_bob(
    set: &HashSet<u64>,
    config: &SessionConfig,
) -> impl Party<Output = HashSet<u64>> {
    let set = set.clone();
    let seed = config.seed;
    AmplifiedReceiver::new(
        config.amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let digest = envelope.decode_payload()?;
            let protocol = IbltSetProtocol::tuned(split_seed(seed, 0x2E0 + attempt));
            protocol.reconcile(&digest, &set)
        },
        retryable_iblt_failure,
        control_retry,
        Exhaust::LastError,
    )
}

/// Alice's side of Theorem 2.3 (one-round exact reconciliation via
/// characteristic polynomials). Exact protocols need no amplification.
pub fn charpoly_known_alice(
    set: &HashSet<u64>,
    d: usize,
    config: &SessionConfig,
) -> Result<impl Party<Output = ()>, ReconError> {
    let protocol = CharPolyProtocol::new(config.seed);
    let digest = protocol.digest(set, d)?;
    AmplifiedSender::new(1, move |_| {
        Ok(Envelope::round(TAG_DIGEST, "characteristic polynomial evaluations", &digest))
    })
}

/// Bob's side of Theorem 2.3.
pub fn charpoly_known_bob(
    set: &HashSet<u64>,
    config: &SessionConfig,
) -> impl Party<Output = HashSet<u64>> {
    let set = set.clone();
    let protocol = CharPolyProtocol::new(config.seed);
    AmplifiedReceiver::new(
        1,
        move |_, envelope: Envelope| {
            let digest = envelope.decode_payload()?;
            protocol.reconcile(&digest, &set)
        },
        |_| false,
        control_retry,
        Exhaust::LastError,
    )
}

/// Alice's side of Corollary 3.2 (two-round reconciliation, unknown `d`): she
/// waits for Bob's ℓ0 estimator, merges in her own elements, and sizes an
/// amplified IBLT digest from the estimate (doubling the bound on each retry).
pub fn unknown_alice(set: &HashSet<u64>, config: &SessionConfig) -> impl Party<Output = ()> {
    let set = set.clone();
    let seed = config.seed;
    let estimator_cfg = config.estimator.with_seed(split_seed(seed, 0xE57));
    let max_attempts = config.amplification.max_attempts;
    Deferred::new(move |envelope: Envelope| {
        let bob_estimator: L0Estimator = envelope.decode_payload()?;
        let mut alice_estimator = L0Estimator::new(&estimator_cfg);
        for &x in &set {
            alice_estimator.update(x, Side::A);
        }
        let estimate = alice_estimator.merge(&bob_estimator)?.estimate();
        // Constant-factor headroom over the estimate; retries double the bound.
        let base_bound = (estimate * 2).max(8);
        let protocol = IbltSetProtocol::tuned(split_seed(seed, 0x5E71));
        AmplifiedSender::new(max_attempts, move |attempt| {
            let bound = base_bound << attempt;
            let digest = protocol.digest(&set, bound);
            let label = if attempt == 0 { "set digest (IBLT)" } else { "set digest (retry)" };
            Ok(Envelope::round(TAG_DIGEST, label, &digest))
        })
    })
}

/// Bob's side of Corollary 3.2: sends his estimator first, then decodes digests.
pub fn unknown_bob(
    set: &HashSet<u64>,
    config: &SessionConfig,
) -> impl Party<Output = HashSet<u64>> {
    let estimator_cfg = config.estimator.with_seed(split_seed(config.seed, 0xE57));
    let mut bob_estimator = L0Estimator::new(&estimator_cfg);
    for &x in set {
        bob_estimator.update(x, Side::B);
    }
    let preamble = [Envelope::round(TAG_ESTIMATOR, "l0 difference estimator", &bob_estimator)];

    let set = set.clone();
    let protocol = IbltSetProtocol::tuned(split_seed(config.seed, 0x5E71));
    let receiver = AmplifiedReceiver::new(
        config.amplification.max_attempts,
        move |_, envelope: Envelope| {
            let digest = envelope.decode_payload()?;
            protocol.reconcile(&digest, &set)
        },
        retryable_iblt_failure,
        control_retry,
        Exhaust::RetriesExhausted,
    );
    WithPreamble::new(preamble, receiver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;
    use recon_protocol::{Amplification, SessionBuilder};

    fn random_sets(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 50)).collect();
        let mut bob = alice.clone();
        for _ in 0..d / 2 {
            alice.insert(rng.next_below(1 << 50));
        }
        for _ in 0..(d - d / 2) {
            bob.insert(rng.next_below(1 << 50));
        }
        (alice, bob)
    }

    #[test]
    fn session_driven_iblt_pair_recovers() {
        let (alice, bob) = random_sets(500, 12, 3);
        let builder = SessionBuilder::new(9).amplification(Amplification::replicate(3));
        let outcome = builder
            .run(
                iblt_known_alice(&alice, 16, builder.config()).unwrap(),
                iblt_known_bob(&bob, builder.config()),
            )
            .unwrap();
        assert_eq!(outcome.recovered, alice);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.bytes_bob_to_alice, 0);
    }

    #[test]
    fn session_driven_unknown_pair_recovers() {
        let (alice, bob) = random_sets(800, 24, 4);
        let builder = SessionBuilder::new(11).amplification(Amplification::replicate(6));
        let outcome = builder
            .run(unknown_alice(&alice, builder.config()), unknown_bob(&bob, builder.config()))
            .unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 2);
        assert!(outcome.stats.bytes_bob_to_alice > 0);
    }
}
