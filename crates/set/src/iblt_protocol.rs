//! IBLT-based set reconciliation with a known difference bound (Corollary 2.2).
//!
//! Alice encodes her whole set into an `O(d)`-cell IBLT and sends it (together with
//! her set's hash and cardinality) to Bob. Bob deletes his own elements from the
//! table, peels it, and applies the recovered difference to his set. The set hash
//! lets Bob detect the rare undetectable checksum failures (Section 2 of the paper).

use crate::diff::SetDiff;
use recon_base::hash::hash_u64_set;
use recon_base::rng::split_seed;
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_iblt::{Iblt, IbltConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of full `O(n)` digest builds ([`IbltSetProtocol::digest`]
/// calls). Incremental stores serve digests from maintained sketches instead of
/// rebuilding; their tests pin "never rebuilt from scratch" by asserting this
/// counter does not move across the serving path.
static FULL_DIGEST_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of full digest builds performed by this process so far.
pub fn full_digest_builds() -> u64 {
    FULL_DIGEST_BUILDS.load(Ordering::Relaxed)
}

/// Alice's one-round message: the IBLT of her set, plus verification metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SetDigest {
    /// The IBLT encoding of Alice's set, sized for the difference bound `d`.
    pub iblt: Iblt,
    /// Order-independent hash of Alice's entire set (guards against checksum
    /// failures during recovery).
    pub set_hash: u64,
    /// `|S_A|`, so Bob can sanity-check the recovered set size.
    pub cardinality: u64,
}

impl Encode for SetDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.iblt.encode(buf);
        self.set_hash.encode(buf);
        self.cardinality.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.iblt.encoded_len() + 8 + 8
    }
}

impl Decode for SetDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SetDigest {
            iblt: <Iblt as Decode>::decode(buf)?,
            set_hash: u64::decode(buf)?,
            cardinality: u64::decode(buf)?,
        })
    }
}

/// The one-round, known-`d` IBLT set reconciliation protocol (Corollary 2.2).
///
/// All hash functions are derived from the protocol seed (public coins); both
/// parties must construct the protocol with the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbltSetProtocol {
    seed: u64,
    iblt_cfg: IbltConfig,
}

impl IbltSetProtocol {
    /// Create a protocol instance from a shared seed with default IBLT sizing.
    pub fn new(seed: u64) -> Self {
        Self { seed, iblt_cfg: IbltConfig::for_u64_keys(split_seed(seed, 0x5E7)) }
    }

    /// Create a protocol instance with the retightened, rescue-backed sizing
    /// ([`IbltConfig::tuned_for_u64_keys`]): per-difference layout, a small
    /// stash, and roughly two-thirds of the classic digest bytes. The session
    /// builders use this; [`IbltSetProtocol::diff`] feeds Bob's own set to the
    /// decode-rescue solver, and the amplification loop covers the residual
    /// failure rate exactly as it covers peeling failures today.
    pub fn tuned(seed: u64) -> Self {
        Self::with_config(seed, IbltConfig::tuned_for_u64_keys(0))
    }

    /// Create a protocol instance with a custom IBLT configuration (ablation knob).
    pub fn with_config(seed: u64, mut cfg: IbltConfig) -> Self {
        cfg.seed = split_seed(seed, 0x5E7);
        cfg.key_bytes = 8;
        Self { seed, iblt_cfg: cfg }
    }

    /// The shared seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The IBLT configuration used for digests.
    pub fn iblt_config(&self) -> &IbltConfig {
        &self.iblt_cfg
    }

    /// The seed of the whole-set verification hash ([`hash_u64_set`]) derived from
    /// the protocol seed. Public so incremental stores can maintain the same hash
    /// with [`recon_base::hash::SetHasher`] and serve digests without rebuilding.
    pub fn set_hash_seed(&self) -> u64 {
        split_seed(self.seed, 0x5E8)
    }

    /// Alice's side: encode `set` into a digest sized for difference bound `d`.
    ///
    /// Runs in `O(n)` time and produces a message of `O(d log u)` bits.
    pub fn digest<'a, I>(&self, set: I, d: usize) -> SetDigest
    where
        I: IntoIterator<Item = &'a u64>,
    {
        FULL_DIGEST_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut iblt = Iblt::with_expected_diff(d.max(1), &self.iblt_cfg);
        let mut count = 0u64;
        let mut elements = Vec::new();
        for &x in set {
            iblt.insert_u64(x);
            elements.push(x);
            count += 1;
        }
        SetDigest {
            iblt,
            set_hash: hash_u64_set(elements, self.set_hash_seed()),
            cardinality: count,
        }
    }

    /// Bob's side: compute the set difference between Alice's digest and `local`.
    ///
    /// Fails with [`ReconError::PeelingFailure`] when the difference exceeded what
    /// the digest's table can decode.
    pub fn diff(&self, digest: &SetDigest, local: &HashSet<u64>) -> Result<SetDiff, ReconError> {
        let mut table = digest.iblt.clone();
        // A digest parsed off the wire carries no decode-side metadata;
        // re-bless it with this protocol's stash split and rescue budget.
        table.adopt_layout(&self.iblt_cfg)?;
        for &x in local {
            table.delete_u64(x);
        }
        // Decode in place: the clone above is the only copy on this path, and
        // on failure the table holds exactly the residual neither the peel nor
        // the rescue could clear. Every negative key in the difference is one
        // of Bob's own elements, so `local` is exactly the candidate set the
        // rescue solver wants (consumed only if the peel stalls).
        let decoded = table.decode_in_place_with_candidates_u64(local.iter().copied());
        if !decoded.complete {
            return Err(ReconError::PeelingFailure { remaining_cells: table.nonempty_cells() });
        }
        Ok(SetDiff { missing: decoded.positive_u64(), extra: decoded.negative_u64() })
    }

    /// Bob's side: fully recover Alice's set, verifying the result against the
    /// digest's set hash and cardinality.
    pub fn reconcile(
        &self,
        digest: &SetDigest,
        local: &HashSet<u64>,
    ) -> Result<HashSet<u64>, ReconError> {
        let diff = self.diff(digest, local)?;
        let recovered = diff.apply(local);
        if recovered.len() as u64 != digest.cardinality {
            return Err(ReconError::ChecksumFailure);
        }
        let hash = hash_u64_set(recovered.iter().copied(), self.set_hash_seed());
        if hash != digest.set_hash {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn random_sets(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let shared: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 2).collect();
        let mut alice: HashSet<u64> = shared.iter().copied().collect();
        let mut bob = alice.clone();
        for _ in 0..d / 2 {
            alice.insert(rng.next_u64() >> 2);
        }
        for _ in 0..(d - d / 2) {
            bob.insert(rng.next_u64() >> 2);
        }
        (alice, bob)
    }

    #[test]
    fn identical_sets_reconcile_trivially() {
        let (alice, _) = random_sets(500, 0, 1);
        let protocol = IbltSetProtocol::new(9);
        let digest = protocol.digest(&alice, 4);
        let diff = protocol.diff(&digest, &alice).unwrap();
        assert!(diff.is_empty());
        assert_eq!(protocol.reconcile(&digest, &alice).unwrap(), alice);
    }

    #[test]
    fn small_difference_reconciles() {
        let (alice, bob) = random_sets(2000, 12, 2);
        let protocol = IbltSetProtocol::new(7);
        let digest = protocol.digest(&alice, 16);
        assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice);
    }

    #[test]
    fn digest_size_scales_with_d_not_n() {
        let (small, _) = random_sets(100, 0, 3);
        let (large, _) = random_sets(50_000, 0, 4);
        let protocol = IbltSetProtocol::new(5);
        let digest_small = protocol.digest(&small, 20);
        let digest_large = protocol.digest(&large, 20);
        assert_eq!(digest_small.encoded_len(), digest_large.encoded_len());
        let d20 = protocol.digest(&large, 20).encoded_len();
        let d200 = protocol.digest(&large, 200).encoded_len();
        assert!(d200 > 5 * d20, "communication should grow linearly in d");
    }

    #[test]
    fn under_provisioned_digest_fails_detectably() {
        let (alice, bob) = random_sets(1000, 300, 6);
        let protocol = IbltSetProtocol::new(11);
        let digest = protocol.digest(&alice, 4); // way too small for 300 differences
        match protocol.reconcile(&digest, &bob) {
            Err(ReconError::PeelingFailure { .. }) | Err(ReconError::ChecksumFailure) => {}
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let (alice, bob) = random_sets(300, 8, 8);
        let protocol = IbltSetProtocol::new(3);
        let digest = protocol.digest(&alice, 8);
        let bytes = digest.to_bytes();
        assert_eq!(bytes.len(), digest.encoded_len());
        let decoded = SetDigest::from_bytes(&bytes).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &bob).unwrap(), alice);
    }

    #[test]
    fn asymmetric_differences_work() {
        // Bob has extra elements that Alice lacks; both directions must decode.
        let protocol = IbltSetProtocol::new(21);
        let alice: HashSet<u64> = (0..1000).collect();
        let bob: HashSet<u64> = (5..1020).collect();
        let digest = protocol.digest(&alice, 32);
        let diff = protocol.diff(&digest, &bob).unwrap().sorted();
        assert_eq!(diff.missing, (0..5).collect::<Vec<_>>());
        assert_eq!(diff.extra, (1000..1020).collect::<Vec<_>>());
        assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice);
    }

    #[test]
    fn different_seeds_produce_incompatible_tables() {
        let alice: HashSet<u64> = (0..100).collect();
        let bob: HashSet<u64> = (1..101).collect();
        let p1 = IbltSetProtocol::new(1);
        let p2 = IbltSetProtocol::new(2);
        let digest = p1.digest(&alice, 8);
        // Decoding with mismatched hash functions either errors or produces a result
        // that fails verification — it must never silently return a wrong set.
        if let Ok(recovered) = p2.reconcile(&digest, &bob) {
            assert_eq!(recovered, alice);
        }
    }

    #[test]
    fn reconciles_across_a_range_of_difference_sizes() {
        for d in [1usize, 2, 5, 17, 63, 128] {
            let (alice, bob) = random_sets(3000, d, 100 + d as u64);
            let protocol = IbltSetProtocol::new(500 + d as u64);
            let digest = protocol.digest(&alice, d.max(1));
            let recovered = protocol.reconcile(&digest, &bob);
            assert_eq!(recovered.unwrap(), alice, "failed at d = {d}");
        }
    }
}
