//! Sharded set reconciliation: partition the key space deterministically and
//! reconcile every shard concurrently through one multiplexed endpoint pair.
//!
//! Serving millions of users means amortizing transport cost across many
//! in-flight exchanges instead of optimizing one: a [`ShardedRunner`] maps each
//! key to a shard with a seeded hash both parties compute locally, each shard
//! becomes an independent session of the usual IBLT protocols under its own
//! derived public coins, and all sessions share a single framed link. The
//! per-shard [`CommStats`] are reported individually and merged (bytes sum,
//! rounds overlap) so the total cost of the fan-out stays measurable.
//!
//! [`CommStats`]: recon_base::CommStats

use crate::session;
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_protocol::{Amplification, Party, SessionConfig, ShardedOutcome, ShardedRunner};
use std::collections::HashSet;

/// Split `set` into `runner.num_shards()` disjoint shards by hashed key. Every
/// element lands in exactly one shard, both parties agree on the assignment
/// without communicating, and the union of the shards is the original set.
pub fn shard_set(set: &HashSet<u64>, runner: &ShardedRunner) -> Vec<HashSet<u64>> {
    let mut shards = vec![HashSet::new(); runner.num_shards()];
    for &key in set {
        shards[runner.shard_of_key(key)].insert(key);
    }
    shards
}

/// The per-shard session configuration: shard `i` runs under the runner's
/// derived seed so replicas across shards use independent hash functions.
fn shard_config(
    runner: &ShardedRunner,
    shard: usize,
    amplification: Amplification,
    estimator: L0Config,
) -> SessionConfig {
    SessionConfig { seed: runner.shard_seed(shard), amplification, estimator }
}

/// One shard's party pair: Alice's sender half and Bob's recovering half.
/// `Send` so the runner may execute shards on worker threads.
type ShardPair = (Box<dyn Party<Output = ()> + Send>, Box<dyn Party<Output = HashSet<u64>> + Send>);

fn reassemble(
    outcomes: Vec<recon_protocol::Outcome<HashSet<u64>>>,
) -> ShardedOutcome<HashSet<u64>> {
    let per_shard: Vec<_> = outcomes.iter().map(|o| o.stats).collect();
    let stats = ShardedRunner::merge_stats(&per_shard);
    let recovered = outcomes.into_iter().flat_map(|o| o.recovered).collect();
    ShardedOutcome { recovered, per_shard, stats }
}

/// Corollary 2.2, sharded: reconcile each shard with the one-round IBLT
/// protocol under a per-shard difference bound, all shards multiplexed over one
/// link. Bob recovers Alice's full set as the union of the shard recoveries.
pub fn reconcile_known_sharded(
    alice: &HashSet<u64>,
    bob: &HashSet<u64>,
    per_shard_d: usize,
    amplification: Amplification,
    runner: &ShardedRunner,
) -> Result<ShardedOutcome<HashSet<u64>>, ReconError> {
    let alice_shards = shard_set(alice, runner);
    let bob_shards = shard_set(bob, runner);
    let mut pairs: Vec<ShardPair> = Vec::with_capacity(runner.num_shards());
    for (shard, (alice_shard, bob_shard)) in alice_shards.iter().zip(&bob_shards).enumerate() {
        let config = shard_config(runner, shard, amplification, L0Config::default());
        pairs.push((
            Box::new(session::iblt_known_alice(alice_shard, per_shard_d, &config)?),
            Box::new(session::iblt_known_bob(bob_shard, &config)),
        ));
    }
    Ok(reassemble(runner.run_pairs(pairs)?))
}

/// Corollary 3.2, sharded: unknown per-shard differences, so every shard runs
/// its own ℓ0 estimator round before its IBLT exchange — the production shape,
/// where no global difference bound is known and each shard sizes itself.
pub fn reconcile_unknown_sharded(
    alice: &HashSet<u64>,
    bob: &HashSet<u64>,
    amplification: Amplification,
    estimator: L0Config,
    runner: &ShardedRunner,
) -> Result<ShardedOutcome<HashSet<u64>>, ReconError> {
    let alice_shards = shard_set(alice, runner);
    let bob_shards = shard_set(bob, runner);
    let mut pairs: Vec<ShardPair> = Vec::with_capacity(runner.num_shards());
    for (shard, (alice_shard, bob_shard)) in alice_shards.iter().zip(&bob_shards).enumerate() {
        let config = shard_config(runner, shard, amplification, estimator);
        pairs.push((
            Box::new(session::unknown_alice(alice_shard, &config)),
            Box::new(session::unknown_bob(bob_shard, &config)),
        ));
    }
    Ok(reassemble(runner.run_pairs(pairs)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn random_pair(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 48)).collect();
        let mut bob = alice.clone();
        for _ in 0..d / 2 {
            alice.insert(rng.next_below(1 << 48));
        }
        for _ in 0..d - d / 2 {
            bob.insert(rng.next_below(1 << 48));
        }
        (alice, bob)
    }

    #[test]
    fn shards_partition_the_set() {
        let (alice, _) = random_pair(500, 0, 3);
        let runner = ShardedRunner::new(8, 42);
        let shards = shard_set(&alice, &runner);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().map(HashSet::len).sum::<usize>(), alice.len());
        let union: HashSet<u64> = shards.iter().flatten().copied().collect();
        assert_eq!(union, alice);
        // Hash sharding keeps the split reasonably balanced on random keys.
        assert!(shards.iter().all(|s| s.len() > 20), "{:?}", shards.iter().map(HashSet::len));
    }

    #[test]
    fn sharded_known_reconciliation_recovers_alice() {
        let (alice, bob) = random_pair(600, 24, 11);
        let runner = ShardedRunner::new(6, 77);
        let outcome = reconcile_known_sharded(
            &alice,
            &bob,
            26, // generous per-shard bound: every shard's difference fits
            Amplification::replicate(3),
            &runner,
        )
        .unwrap();
        assert_eq!(outcome.recovered, alice);
        assert_eq!(outcome.per_shard.len(), 6);
        assert_eq!(
            outcome.stats.bytes_alice_to_bob,
            outcome.per_shard.iter().map(|s| s.bytes_alice_to_bob).sum::<usize>()
        );
    }

    #[test]
    fn sharded_unknown_reconciliation_sizes_each_shard_itself() {
        let (alice, bob) = random_pair(800, 30, 19);
        let runner = ShardedRunner::new(4, 5);
        let outcome = reconcile_unknown_sharded(
            &alice,
            &bob,
            Amplification::replicate(6),
            L0Config::default(),
            &runner,
        )
        .unwrap();
        assert_eq!(outcome.recovered, alice);
        // Each shard ran its own estimator round: at least 2 messages per shard.
        assert!(outcome.per_shard.iter().all(|s| s.messages >= 2));
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let (alice, bob) = random_pair(400, 16, 23);
        let runner = ShardedRunner::new(5, 99);
        let a = reconcile_known_sharded(&alice, &bob, 18, Amplification::replicate(3), &runner)
            .unwrap();
        let b = reconcile_known_sharded(&alice, &bob, 18, Amplification::replicate(3), &runner)
            .unwrap();
        assert_eq!(a, b);
    }
}
