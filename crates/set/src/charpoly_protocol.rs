//! Characteristic-polynomial set reconciliation (Theorem 2.3, after Minsky,
//! Trachtenberg & Zippel).
//!
//! Alice represents her set `S_A` by its characteristic polynomial
//! `χ_{S_A}(z) = ∏_{x ∈ S_A} (z − x)` over GF(2^61 − 1) and sends its evaluations at
//! `d + 1` agreed-upon points lying *outside the universe* (so they can never be
//! roots). Bob evaluates his own characteristic polynomial at the same points, forms
//! the ratios `f_i = χ_{S_A}(z_i) / χ_{S_B}(z_i)`, and interpolates the reduced
//! rational function `χ_{S_A \ S_B} / χ_{S_B \ S_A}`: the coefficients of monic
//! numerator and denominator of the right degrees satisfy a linear system
//! (`recon_field::solve_consistent`). Dividing out the common factor and finding the
//! roots of numerator and denominator yields the two one-sided differences exactly —
//! this protocol succeeds with probability 1 whenever the bound `d` is correct, which
//! is why Theorem 3.9 uses it for child sets with very small differences.

use crate::diff::SetDiff;
use recon_base::hash::hash_u64_set;
use recon_base::rng::split_seed;
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_field::{
    batch_invert, find_roots, interpolate, rational_reconstruct, solve_consistent_flat, Fp, Poly,
    MODULUS,
};
use std::collections::HashSet;

/// Alice's one-round message for the characteristic-polynomial protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharPolyDigest {
    /// Evaluations of `χ_{S_A}` at the first `d + 1` agreed evaluation points.
    pub evaluations: Vec<u64>,
    /// `|S_A|` (needed to determine the degrees of the interpolated numerator and
    /// denominator).
    pub cardinality: u64,
    /// Order-independent hash of Alice's set, for end-to-end verification.
    pub set_hash: u64,
}

impl Encode for CharPolyDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.evaluations.encode(buf);
        self.cardinality.encode(buf);
        self.set_hash.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.evaluations.encoded_len() + 8 + 8
    }
}

impl Decode for CharPolyDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CharPolyDigest {
            evaluations: Vec::<u64>::decode(buf)?,
            cardinality: u64::decode(buf)?,
            set_hash: u64::decode(buf)?,
        })
    }
}

/// The exact, one-round characteristic-polynomial reconciliation protocol
/// (Theorem 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharPolyProtocol {
    seed: u64,
    universe_bound: u64,
}

impl CharPolyProtocol {
    /// Default bound on universe elements: `2^60`, leaving plenty of field elements
    /// above the universe to serve as evaluation points.
    pub const DEFAULT_UNIVERSE_BOUND: u64 = 1 << 60;

    /// Create a protocol instance from a shared seed, using the default universe
    /// bound.
    pub fn new(seed: u64) -> Self {
        Self { seed, universe_bound: Self::DEFAULT_UNIVERSE_BOUND }
    }

    /// Create a protocol instance whose universe is `[0, universe_bound)`.
    /// `universe_bound` must leave room for evaluation points below the field
    /// modulus.
    pub fn with_universe_bound(seed: u64, universe_bound: u64) -> Self {
        assert!(
            universe_bound < MODULUS - (1 << 20),
            "universe bound must leave room for evaluation points below 2^61 - 1"
        );
        Self { seed, universe_bound }
    }

    /// The shared seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn set_hash_seed(&self) -> u64 {
        split_seed(self.seed, 0xC6A9)
    }

    /// The `i`-th agreed evaluation point (deterministic, outside the universe).
    fn point(&self, i: usize) -> Fp {
        Fp::new(self.universe_bound + i as u64)
    }

    fn check_element(&self, x: u64) -> Result<(), ReconError> {
        if x >= self.universe_bound {
            return Err(ReconError::InvalidInput(format!(
                "element {x} is outside the universe bound {}",
                self.universe_bound
            )));
        }
        Ok(())
    }

    /// Alice's side: evaluate her characteristic polynomial at `d + 1` points.
    ///
    /// Communication is `(d + 1)` field elements (`O(d log u)` bits); time is
    /// `O(n · d)` field operations (each point is a product over the set).
    pub fn digest<'a, I>(&self, set: I, d: usize) -> Result<CharPolyDigest, ReconError>
    where
        I: IntoIterator<Item = &'a u64>,
    {
        let elements: Vec<u64> = set.into_iter().copied().collect();
        for &x in &elements {
            self.check_element(x)?;
        }
        let points: Vec<Fp> = (0..=d).map(|i| self.point(i)).collect();
        let mut evals = vec![Fp::ONE; points.len()];
        for &x in &elements {
            let fx = Fp::new(x);
            for (e, &z) in evals.iter_mut().zip(&points) {
                *e *= z - fx;
            }
        }
        Ok(CharPolyDigest {
            evaluations: evals.into_iter().map(Fp::value).collect(),
            cardinality: elements.len() as u64,
            set_hash: hash_u64_set(elements, self.set_hash_seed()),
        })
    }

    /// Bob's side: compute the exact set difference from Alice's digest.
    pub fn diff(
        &self,
        digest: &CharPolyDigest,
        local: &HashSet<u64>,
    ) -> Result<SetDiff, ReconError> {
        for &x in local {
            self.check_element(x)?;
        }
        let d = digest.evaluations.len().saturating_sub(1);
        let delta = digest.cardinality as i64 - local.len() as i64;
        if delta.unsigned_abs() as usize > d {
            return Err(ReconError::DifferenceBoundTooSmall { bound: d });
        }
        // Choose the largest usable degree budget with the parity of `delta`
        // (|S_A \ S_B| + |S_B \ S_A| always has the parity of their difference).
        let d_use = if (d as i64 - delta.abs()) % 2 == 0 { d } else { d - 1 };
        let deg_missing = ((d_use as i64 + delta) / 2) as usize;
        let deg_extra = d_use - deg_missing;

        if d_use == 0 {
            // Bound says the sets are identical.
            return Ok(SetDiff::default());
        }

        // The digest carries `d + 1 ≥ d_use + 1` evaluations; use one more point
        // than the degree budget so the structured solve below has a uniqueness
        // margin (any two candidate fractions within the degree bounds agree on
        // `deg P + deg Q + 1` points only if they are equal).
        let points: Vec<Fp> = (0..=d_use).map(|i| self.point(i)).collect();
        // Bob's evaluations, then the ratios f_i = χ_{S_A}(z_i) / χ_{S_B}(z_i)
        // via one batched inversion.
        let mut local_evals = vec![Fp::ONE; points.len()];
        for &x in local {
            let fx = Fp::new(x);
            for (e, &z) in local_evals.iter_mut().zip(&points) {
                *e *= z - fx;
            }
        }
        let mut inverses = local_evals;
        let all_nonzero = batch_invert(&mut inverses);
        debug_assert!(all_nonzero, "evaluation points lie outside the universe");
        if !all_nonzero {
            return Err(ReconError::InterpolationFailure);
        }
        let ratios: Vec<Fp> = digest.evaluations[..points.len()]
            .iter()
            .zip(&inverses)
            .map(|(&a, &inv)| Fp::new(a) * inv)
            .collect();

        // Structured `O(d^2)` solve first; dense elimination over the first
        // `d_use` points as the fallback. Both find the same (unique) reduced
        // monic fraction whenever the bound is honest, so the choice of path is
        // invisible to callers.
        let (p_reduced, q_reduced) =
            match structured_reduced_fraction(&points, &ratios, deg_missing, deg_extra, delta) {
                Some(pair) => pair,
                None => dense_reduced_fraction(
                    &points[..d_use],
                    &ratios[..d_use],
                    deg_missing,
                    deg_extra,
                )?,
            };

        let missing_roots = find_roots(&p_reduced, split_seed(self.seed, 0xF00D));
        let extra_roots = find_roots(&q_reduced, split_seed(self.seed, 0xF00E));
        if missing_roots.len() != p_reduced.degree().unwrap_or(0)
            || extra_roots.len() != q_reduced.degree().unwrap_or(0)
        {
            return Err(ReconError::InterpolationFailure);
        }

        let missing: Vec<u64> = missing_roots.into_iter().map(Fp::value).collect();
        let extra: Vec<u64> = extra_roots.into_iter().map(Fp::value).collect();
        // Every recovered element must lie inside the universe.
        if missing.iter().chain(&extra).any(|&x| x >= self.universe_bound) {
            return Err(ReconError::InterpolationFailure);
        }
        Ok(SetDiff { missing, extra })
    }

    /// Bob's side: fully recover Alice's set and verify it against her set hash.
    pub fn reconcile(
        &self,
        digest: &CharPolyDigest,
        local: &HashSet<u64>,
    ) -> Result<HashSet<u64>, ReconError> {
        let diff = self.diff(digest, local)?;
        let recovered = diff.apply(local);
        if recovered.len() as u64 != digest.cardinality
            || hash_u64_set(recovered.iter().copied(), self.set_hash_seed()) != digest.set_hash
        {
            return Err(ReconError::DifferenceBoundTooSmall {
                bound: digest.evaluations.len().saturating_sub(1),
            });
        }
        Ok(recovered)
    }
}

/// Structured `O(d^2)` solve of the rational-interpolation system: interpolate
/// the ratio values into a single polynomial `N`, then run extended-Euclidean
/// rational reconstruction against `M = ∏(z − z_i)` and reduce.
///
/// `points` must have `deg_missing + deg_extra + 1` entries; with that margin a
/// reduced monic pair passing the degree/`delta` checks below is unique, so it
/// is exactly the fraction the dense elimination would find. Returns `None`
/// whenever the checks fail (e.g. the difference bound was violated), in which
/// case the caller falls back to the dense path.
fn structured_reduced_fraction(
    points: &[Fp],
    ratios: &[Fp],
    deg_missing: usize,
    deg_extra: usize,
    delta: i64,
) -> Option<(Poly, Poly)> {
    debug_assert_eq!(points.len(), deg_missing + deg_extra + 1);
    let modulus = Poly::from_roots(points);
    let interpolant = interpolate(points, ratios)?;
    let (r, t) = rational_reconstruct(&modulus, &interpolant, deg_missing)?;
    if r.is_zero() {
        return None;
    }
    let g = r.gcd(&t);
    let (p_reduced, rem_p) = r.divmod(&g);
    let (q_reduced, rem_q) = t.divmod(&g);
    debug_assert!(rem_p.is_zero() && rem_q.is_zero());
    let p_reduced = p_reduced.monic();
    let q_reduced = q_reduced.monic();
    let dp = p_reduced.degree()? as i64;
    let dq = q_reduced.degree().unwrap_or(0) as i64;
    // The true reduced fraction has deg P − deg Q = |S_A| − |S_B| and respects
    // both degree budgets; anything else means the bound was wrong.
    (dp - dq == delta && dp <= deg_missing as i64 && dq <= deg_extra as i64)
        .then_some((p_reduced, q_reduced))
}

/// Dense fallback: build the linear system for the coefficients of monic `P`
/// (deg `deg_missing`) and monic `Q` (deg `deg_extra`) with `P(z_i) = f_i
/// Q(z_i)` as a flat row-major bank, solve it by Gaussian elimination, and
/// divide out the common factor so only the true differences remain.
fn dense_reduced_fraction(
    points: &[Fp],
    ratios: &[Fp],
    deg_missing: usize,
    deg_extra: usize,
) -> Result<(Poly, Poly), ReconError> {
    let d_use = points.len();
    debug_assert_eq!(d_use, deg_missing + deg_extra);
    let mut matrix = Vec::with_capacity(d_use * d_use);
    let mut rhs = Vec::with_capacity(d_use);
    for (&z, &f) in points.iter().zip(ratios) {
        // Powers of z for P's unknown coefficients.
        let mut zp = Fp::ONE;
        for _ in 0..deg_missing {
            matrix.push(zp);
            zp *= z;
        }
        let z_pow_deg_missing = zp;
        // Powers of z for Q's unknown coefficients (negated, scaled by f).
        let mut zq = Fp::ONE;
        for _ in 0..deg_extra {
            matrix.push(-(f * zq));
            zq *= z;
        }
        let z_pow_deg_extra = zq;
        rhs.push(f * z_pow_deg_extra - z_pow_deg_missing);
    }

    let solution = solve_consistent_flat(&matrix, d_use, d_use, &rhs)
        .ok_or(ReconError::InterpolationFailure)?;

    let mut p_coeffs: Vec<Fp> = solution[..deg_missing].to_vec();
    p_coeffs.push(Fp::ONE);
    let mut q_coeffs: Vec<Fp> = solution[deg_missing..].to_vec();
    q_coeffs.push(Fp::ONE);
    let p = Poly::from_coeffs(p_coeffs);
    let q = Poly::from_coeffs(q_coeffs);

    let g = p.gcd(&q);
    let (p_reduced, rem_p) = p.divmod(&g);
    let (q_reduced, rem_q) = q.divmod(&g);
    debug_assert!(rem_p.is_zero() && rem_q.is_zero());
    Ok((p_reduced, q_reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn random_sets(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 50)).collect();
        let mut bob = alice.clone();
        for _ in 0..d / 2 {
            alice.insert(rng.next_below(1 << 50));
        }
        for _ in 0..(d - d / 2) {
            bob.insert(rng.next_below(1 << 50));
        }
        (alice, bob)
    }

    #[test]
    fn identical_sets_yield_empty_diff() {
        let (alice, _) = random_sets(200, 0, 1);
        let protocol = CharPolyProtocol::new(3);
        let digest = protocol.digest(&alice, 6).unwrap();
        assert!(protocol.diff(&digest, &alice).unwrap().is_empty());
        assert_eq!(protocol.reconcile(&digest, &alice).unwrap(), alice);
    }

    #[test]
    fn exact_recovery_for_small_differences() {
        for d in [1usize, 2, 3, 5, 8, 16] {
            let (alice, bob) = random_sets(400, d, 10 + d as u64);
            let protocol = CharPolyProtocol::new(77);
            let digest = protocol.digest(&alice, d).unwrap();
            assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice, "d = {d}");
        }
    }

    #[test]
    fn works_when_bound_exceeds_actual_difference() {
        // d is only an upper bound; the interpolated system is underdetermined and
        // the common-factor division must clean it up.
        let (alice, bob) = random_sets(300, 4, 5);
        let protocol = CharPolyProtocol::new(9);
        for bound in [4usize, 5, 9, 16, 31] {
            let digest = protocol.digest(&alice, bound).unwrap();
            assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice, "bound = {bound}");
        }
    }

    #[test]
    fn exact_recovery_for_larger_differences() {
        let (alice, bob) = random_sets(500, 96, 21);
        let protocol = CharPolyProtocol::new(13);
        let digest = protocol.digest(&alice, 110).unwrap();
        assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice);
    }

    #[test]
    fn bound_too_small_is_detected() {
        let (alice, bob) = random_sets(300, 40, 33);
        let protocol = CharPolyProtocol::new(5);
        let digest = protocol.digest(&alice, 6).unwrap();
        assert!(protocol.reconcile(&digest, &bob).is_err());
    }

    #[test]
    fn elements_outside_universe_are_rejected() {
        let protocol = CharPolyProtocol::with_universe_bound(1, 1 << 20);
        let bad: HashSet<u64> = [1u64 << 30].into_iter().collect();
        assert!(protocol.digest(&bad, 2).is_err());
        let good: HashSet<u64> = [5u64].into_iter().collect();
        let digest = protocol.digest(&good, 2).unwrap();
        assert!(protocol.diff(&digest, &bad).is_err());
    }

    #[test]
    fn one_sided_differences() {
        let protocol = CharPolyProtocol::new(17);
        let alice: HashSet<u64> = (0..100).collect();
        let bob: HashSet<u64> = (0..90).collect();
        let digest = protocol.digest(&alice, 10).unwrap();
        let diff = protocol.diff(&digest, &bob).unwrap().sorted();
        assert_eq!(diff.missing, (90..100).collect::<Vec<_>>());
        assert!(diff.extra.is_empty());
        let bob_superset: HashSet<u64> = (0..105).collect();
        let digest2 = protocol.digest(&alice, 5).unwrap();
        let diff2 = protocol.diff(&digest2, &bob_superset).unwrap().sorted();
        assert!(diff2.missing.is_empty());
        assert_eq!(diff2.extra, (100..105).collect::<Vec<_>>());
    }

    #[test]
    fn structured_path_solves_tight_and_loose_bounds() {
        // The structured solver must carry both the tight case (degree budget
        // exactly the true difference) and the loose case (budget padded, so
        // numerator and denominator share a spurious common factor) — otherwise
        // every reconciliation would quietly pay the dense fallback on top.
        let missing: Vec<Fp> = [3u64, 77, 1234].iter().map(|&x| Fp::new(x)).collect();
        let extra: Vec<Fp> = [500u64, 9000].iter().map(|&x| Fp::new(x)).collect();
        let p_true = Poly::from_roots(&missing);
        let q_true = Poly::from_roots(&extra);
        let delta = missing.len() as i64 - extra.len() as i64;
        for slack in [0usize, 2, 5] {
            let deg_missing = missing.len() + slack;
            let deg_extra = extra.len() + slack;
            let points: Vec<Fp> =
                (0..=(deg_missing + deg_extra) as u64).map(|i| Fp::new((1 << 60) + i)).collect();
            let ratios: Vec<Fp> = points.iter().map(|&z| p_true.eval(z) / q_true.eval(z)).collect();
            let (p_red, q_red) =
                structured_reduced_fraction(&points, &ratios, deg_missing, deg_extra, delta)
                    .unwrap_or_else(|| panic!("structured path must solve (slack {slack})"));
            assert_eq!(p_red, p_true, "slack {slack}");
            assert_eq!(q_red, q_true, "slack {slack}");
        }
    }

    #[test]
    fn structured_path_rejects_violated_bounds() {
        // Five genuine differences but a budget of two: the structured solver
        // must refuse (degree/delta check) rather than hand back garbage.
        let missing: Vec<Fp> = (0..5u64).map(|i| Fp::new(i * 13 + 2)).collect();
        let p_true = Poly::from_roots(&missing);
        let points: Vec<Fp> = (0..=3u64).map(|i| Fp::new((1 << 60) + i)).collect();
        let ratios: Vec<Fp> = points.iter().map(|&z| p_true.eval(z)).collect();
        assert_eq!(structured_reduced_fraction(&points, &ratios, 2, 1, 5), None);
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let (alice, bob) = random_sets(150, 6, 40);
        let protocol = CharPolyProtocol::new(2);
        let digest = protocol.digest(&alice, 8).unwrap();
        let bytes = digest.to_bytes();
        assert_eq!(bytes.len(), digest.encoded_len());
        let decoded = CharPolyDigest::from_bytes(&bytes).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &bob).unwrap(), alice);
    }

    #[test]
    fn digest_is_small_and_scales_with_d() {
        let (alice, _) = random_sets(5000, 0, 50);
        let protocol = CharPolyProtocol::new(4);
        let d8 = protocol.digest(&alice, 8).unwrap().encoded_len();
        let d64 = protocol.digest(&alice, 64).unwrap().encoded_len();
        assert!(d8 < 100, "digest for d=8 should be under 100 bytes, got {d8}");
        assert!(d64 > 4 * d8);
    }
}
