//! The result of a set reconciliation: a directed symmetric difference.

use std::collections::HashSet;

/// A decoded set difference, oriented from Bob's perspective.
///
/// `missing` are the elements Alice has and Bob lacks (`S_A \ S_B`); `extra` are the
/// elements Bob has and Alice lacks (`S_B \ S_A`). Applying the difference to Bob's
/// set yields Alice's set, which is the one-way reconciliation goal of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetDiff {
    /// Elements in Alice's set but not Bob's (`S_A \ S_B`).
    pub missing: Vec<u64>,
    /// Elements in Bob's set but not Alice's (`S_B \ S_A`).
    pub extra: Vec<u64>,
}

impl SetDiff {
    /// Total number of differing elements (`|S_A ⊕ S_B|`).
    pub fn len(&self) -> usize {
        self.missing.len() + self.extra.len()
    }

    /// `true` when the two sets were identical.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty()
    }

    /// Apply the difference to Bob's set, producing Alice's set.
    pub fn apply(&self, local: &HashSet<u64>) -> HashSet<u64> {
        let mut out = local.clone();
        for &x in &self.extra {
            out.remove(&x);
        }
        for &x in &self.missing {
            out.insert(x);
        }
        out
    }

    /// Normalize for comparisons in tests: sort both components.
    pub fn sorted(mut self) -> SetDiff {
        self.missing.sort_unstable();
        self.extra.sort_unstable();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_reconstructs_alice() {
        let bob: HashSet<u64> = [1, 2, 3, 4].into_iter().collect();
        let diff = SetDiff { missing: vec![10, 11], extra: vec![2, 4] };
        let alice = diff.apply(&bob);
        assert_eq!(alice, [1, 3, 10, 11].into_iter().collect());
    }

    #[test]
    fn empty_diff_is_identity() {
        let bob: HashSet<u64> = (0..50).collect();
        let diff = SetDiff::default();
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
        assert_eq!(diff.apply(&bob), bob);
    }

    #[test]
    fn sorted_orders_components() {
        let diff = SetDiff { missing: vec![3, 1], extra: vec![9, 2] }.sorted();
        assert_eq!(diff.missing, vec![1, 3]);
        assert_eq!(diff.extra, vec![2, 9]);
        assert_eq!(diff.len(), 4);
    }
}
