//! Multiset reconciliation (Section 3.4 of the paper).
//!
//! "We create a set from our multiset, where if an element x occurs in the multiset
//! k times, then (x, k) is an element of the set. After reconciling this set,
//! recovering the corresponding multiset is immediate. All of the bounds stay the
//! same (d can only decrease), except that u grows to u · n."
//!
//! [`Multiset`] is the counted-set type and [`MultisetProtocol`] the IBLT-based
//! reconciliation of the derived `(element, multiplicity)` pair set, using 16-byte
//! IBLT keys to hold the pair.

use crate::diff::SetDiff;
use recon_base::hash::hash_u64_set;
use recon_base::rng::split_seed;
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_iblt::{Iblt, IbltConfig};
use std::collections::HashMap;

/// A multiset of 64-bit elements (element → multiplicity, multiplicities ≥ 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Multiset {
    counts: HashMap<u64, u64>,
}

impl Multiset {
    /// The empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a multiset from an iterator of elements (counting repetitions).
    pub fn from_elements<I: IntoIterator<Item = u64>>(elements: I) -> Self {
        let mut ms = Self::new();
        for x in elements {
            ms.insert(x);
        }
        ms
    }

    /// Add one occurrence of `x`.
    pub fn insert(&mut self, x: u64) {
        *self.counts.entry(x).or_insert(0) += 1;
    }

    /// Add `k` occurrences of `x`.
    pub fn insert_n(&mut self, x: u64, k: u64) {
        if k > 0 {
            *self.counts.entry(x).or_insert(0) += k;
        }
    }

    /// Remove one occurrence of `x`; returns `false` if `x` was not present.
    pub fn remove(&mut self, x: u64) -> bool {
        match self.counts.get_mut(&x) {
            Some(c) if *c > 1 => {
                *c -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(&x);
                true
            }
            None => false,
        }
    }

    /// Multiplicity of `x` (0 if absent).
    pub fn count(&self, x: u64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// Number of distinct elements.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of occurrences.
    pub fn total_len(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `true` if the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(element, multiplicity)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&x, &c)| (x, c))
    }

    /// Size of the symmetric difference counted with multiplicity:
    /// `Σ_x |count_A(x) − count_B(x)|`.
    pub fn difference_size(&self, other: &Multiset) -> usize {
        let mut total = 0u64;
        for (&x, &c) in &self.counts {
            total += c.abs_diff(other.count(x));
        }
        for (&x, &c) in &other.counts {
            if !self.counts.contains_key(&x) {
                total += c;
            }
        }
        total as usize
    }

    /// The derived pair set `{(x, k) : x occurs k times}` described in Section 3.4.
    pub fn pair_set(&self) -> Vec<(u64, u64)> {
        self.iter().collect()
    }
}

impl FromIterator<u64> for Multiset {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_elements(iter)
    }
}

/// Alice's one-round multiset digest: an IBLT over `(element, multiplicity)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultisetDigest {
    /// IBLT over 16-byte `(element, multiplicity)` keys.
    pub iblt: Iblt,
    /// Hash of the pair set, for verification.
    pub pair_hash: u64,
    /// Number of distinct elements in Alice's multiset.
    pub distinct: u64,
}

impl Encode for MultisetDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.iblt.encode(buf);
        self.pair_hash.encode(buf);
        self.distinct.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.iblt.encoded_len() + 16
    }
}

impl Decode for MultisetDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(MultisetDigest {
            iblt: <Iblt as Decode>::decode(buf)?,
            pair_hash: u64::decode(buf)?,
            distinct: u64::decode(buf)?,
        })
    }
}

/// One-round multiset reconciliation with a known bound on the number of element
/// *changes* (Section 3.4: the pair-set difference is at most twice the number of
/// changed elements, never more).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultisetProtocol {
    seed: u64,
    iblt_cfg: IbltConfig,
}

fn pair_key(x: u64, count: u64) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&x.to_le_bytes());
    key[8..].copy_from_slice(&count.to_le_bytes());
    key
}

fn key_pair(key: &[u8]) -> (u64, u64) {
    let x = u64::from_le_bytes(key[..8].try_into().expect("16-byte key"));
    let c = u64::from_le_bytes(key[8..16].try_into().expect("16-byte key"));
    (x, c)
}

fn pair_hash_value(ms: &Multiset, seed: u64) -> u64 {
    hash_u64_set(ms.iter().map(|(x, c)| x.rotate_left(17) ^ c.wrapping_mul(0x9E37_79B9)), seed)
}

impl MultisetProtocol {
    /// Create a protocol instance from a shared seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, iblt_cfg: IbltConfig::for_key_bytes(16, split_seed(seed, 0x3517)) }
    }

    /// Alice's side: digest her multiset for a bound of `d` changed element slots.
    ///
    /// A single logical change (e.g. one multiplicity bumped) alters at most two
    /// pairs of the derived pair set, so the IBLT is sized for `2d` keys.
    pub fn digest(&self, multiset: &Multiset, d: usize) -> MultisetDigest {
        let mut iblt = Iblt::with_expected_diff((2 * d).max(1), &self.iblt_cfg);
        for (x, c) in multiset.iter() {
            iblt.insert(&pair_key(x, c));
        }
        MultisetDigest {
            iblt,
            pair_hash: pair_hash_value(multiset, split_seed(self.seed, 0x3518)),
            distinct: multiset.distinct_len() as u64,
        }
    }

    /// Bob's side: recover Alice's multiset.
    pub fn reconcile(
        &self,
        digest: &MultisetDigest,
        local: &Multiset,
    ) -> Result<Multiset, ReconError> {
        let mut table = digest.iblt.clone();
        for (x, c) in local.iter() {
            table.delete(&pair_key(x, c));
        }
        let decoded = table.decode_in_place();
        if !decoded.complete {
            return Err(ReconError::PeelingFailure { remaining_cells: table.nonempty_cells() });
        }
        let mut recovered = local.clone();
        for key in &decoded.negative {
            let (x, c) = key_pair(key);
            // Bob had (x, c) but Alice does not: drop that multiplicity record.
            if recovered.count(x) == c {
                recovered.counts.remove(&x);
            } else {
                return Err(ReconError::ChecksumFailure);
            }
        }
        for key in &decoded.positive {
            let (x, c) = key_pair(key);
            if c == 0 || recovered.counts.contains_key(&x) {
                return Err(ReconError::ChecksumFailure);
            }
            recovered.counts.insert(x, c);
        }
        if recovered.distinct_len() as u64 != digest.distinct
            || pair_hash_value(&recovered, split_seed(self.seed, 0x3518)) != digest.pair_hash
        {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(recovered)
    }

    /// Convenience: the exact symmetric difference of the derived pair sets as a
    /// [`SetDiff`] over hashed pair identities (used by the estimator-driven
    /// protocols that only need the difference *size*).
    pub fn pair_diff(
        &self,
        digest: &MultisetDigest,
        local: &Multiset,
    ) -> Result<SetDiff, ReconError> {
        let mut table = digest.iblt.clone();
        for (x, c) in local.iter() {
            table.delete(&pair_key(x, c));
        }
        let decoded = table.decode_in_place();
        if !decoded.complete {
            return Err(ReconError::PeelingFailure { remaining_cells: table.nonempty_cells() });
        }
        Ok(SetDiff {
            missing: decoded.positive.iter().map(|k| key_pair(k).0).collect(),
            extra: decoded.negative.iter().map(|k| key_pair(k).0).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_multiset() -> Multiset {
        let mut ms = Multiset::new();
        for x in 0..500u64 {
            ms.insert_n(x, 1 + x % 4);
        }
        ms
    }

    #[test]
    fn multiset_basic_operations() {
        let mut ms = Multiset::new();
        assert!(ms.is_empty());
        ms.insert(7);
        ms.insert(7);
        ms.insert(9);
        assert_eq!(ms.count(7), 2);
        assert_eq!(ms.count(9), 1);
        assert_eq!(ms.count(1), 0);
        assert_eq!(ms.distinct_len(), 2);
        assert_eq!(ms.total_len(), 3);
        assert!(ms.remove(7));
        assert_eq!(ms.count(7), 1);
        assert!(ms.remove(7));
        assert_eq!(ms.count(7), 0);
        assert!(!ms.remove(7));
    }

    #[test]
    fn from_elements_counts_repetitions() {
        let ms = Multiset::from_elements([1, 1, 1, 2, 3, 3]);
        assert_eq!(ms.count(1), 3);
        assert_eq!(ms.count(2), 1);
        assert_eq!(ms.count(3), 2);
        let collected: Multiset = [1u64, 1, 2].into_iter().collect();
        assert_eq!(collected.count(1), 2);
    }

    #[test]
    fn difference_size_counts_multiplicity() {
        let a = Multiset::from_elements([1, 1, 2, 3]);
        let b = Multiset::from_elements([1, 2, 2, 4]);
        // |2-1| + |1-2| + |1-0| + |0-1| = 4
        assert_eq!(a.difference_size(&b), 4);
        assert_eq!(b.difference_size(&a), 4);
        assert_eq!(a.difference_size(&a), 0);
    }

    #[test]
    fn identical_multisets_reconcile() {
        let ms = sample_multiset();
        let protocol = MultisetProtocol::new(4);
        let digest = protocol.digest(&ms, 4);
        assert_eq!(protocol.reconcile(&digest, &ms).unwrap(), ms);
    }

    #[test]
    fn multiplicity_changes_reconcile() {
        let alice = sample_multiset();
        let mut bob = alice.clone();
        // Change multiplicities of a few elements and add/remove some.
        bob.insert(3);
        bob.insert(3);
        bob.remove(10);
        bob.counts.remove(&20);
        bob.insert_n(100_000, 5);
        let d = 8;
        let protocol = MultisetProtocol::new(11);
        let digest = protocol.digest(&alice, d);
        assert_eq!(protocol.reconcile(&digest, &bob).unwrap(), alice);
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let alice = sample_multiset();
        let protocol = MultisetProtocol::new(2);
        let digest = protocol.digest(&alice, 6);
        let bytes = digest.to_bytes();
        assert_eq!(bytes.len(), digest.encoded_len());
        let decoded = MultisetDigest::from_bytes(&bytes).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &alice).unwrap(), alice);
    }

    #[test]
    fn undersized_digest_fails_detectably() {
        let alice = sample_multiset();
        let mut bob = Multiset::new();
        for x in 1000..1400u64 {
            bob.insert(x);
        }
        let protocol = MultisetProtocol::new(8);
        let digest = protocol.digest(&alice, 2);
        assert!(protocol.reconcile(&digest, &bob).is_err());
    }

    #[test]
    fn pair_diff_reports_changed_elements() {
        let alice = Multiset::from_elements([1, 1, 2, 3]);
        let bob = Multiset::from_elements([1, 2, 3]);
        let protocol = MultisetProtocol::new(5);
        let digest = protocol.digest(&alice, 4);
        let diff = protocol.pair_diff(&digest, &bob).unwrap();
        // Element 1 changed multiplicity: its pair appears on both sides.
        assert!(diff.missing.contains(&1));
        assert!(diff.extra.contains(&1));
    }
}
