//! One-shot drivers for the plain-set protocols, as thin wrappers over the
//! sans-I/O session layer.
//!
//! Each driver builds the two [`recon_protocol::Party`] state machines from
//! [`crate::session`] and runs them through a [`SessionBuilder`] over an
//! in-memory link, so the exact bytes and rounds are recorded the same way the
//! paper accounts for communication. Callers that want to separate the parties
//! (different processes, real transports) use [`crate::session`] directly.

use crate::session;
use recon_base::ReconError;
use recon_protocol::{Amplification, Outcome, SessionBuilder};
use std::collections::HashSet;

/// The result of a locally-driven reconciliation: Bob's recovered copy of Alice's
/// set plus the measured communication.
pub type ReconcileOutcome = Outcome<HashSet<u64>>;

/// Corollary 2.2: one-round set reconciliation with a known difference bound `d`.
///
/// Returns Bob's recovered set and the measured communication (one Alice→Bob
/// message of `O(d log u)` bits). The underlying IBLT decode fails with probability
/// `1/poly(d)`; per the paper's replication amplification, up to two additional
/// attempts with independent hash functions are made (their messages are charged to
/// the transcript), so the driver's failure probability is negligible.
pub fn reconcile_known(
    alice: &HashSet<u64>,
    bob: &HashSet<u64>,
    d: usize,
    seed: u64,
) -> Result<ReconcileOutcome, ReconError> {
    let builder = SessionBuilder::new(seed).amplification(Amplification::replicate(3));
    builder.run(
        session::iblt_known_alice(alice, d, builder.config())?,
        session::iblt_known_bob(bob, builder.config()),
    )
}

/// Theorem 2.3: one-round *exact* set reconciliation via characteristic polynomials.
pub fn reconcile_known_charpoly(
    alice: &HashSet<u64>,
    bob: &HashSet<u64>,
    d: usize,
    seed: u64,
) -> Result<ReconcileOutcome, ReconError> {
    let builder = SessionBuilder::new(seed).amplification(Amplification::single());
    builder.run(
        session::charpoly_known_alice(alice, d, builder.config())?,
        session::charpoly_known_bob(bob, builder.config()),
    )
}

/// Corollary 3.2: two-round set reconciliation when `d` is unknown.
///
/// Round 1: Bob sends Alice an ℓ0 set difference estimator populated with his set.
/// Round 2: Alice merges in her own elements, queries the estimate, inflates it by a
/// constant safety factor, and replies with an IBLT digest sized accordingly. If the
/// estimate was still too small (the estimator only promises a constant-factor
/// approximation), the parties retry with a doubled bound, which models the paper's
/// replication-based amplification while keeping the expected round count at 2.
pub fn reconcile_unknown(
    alice: &HashSet<u64>,
    bob: &HashSet<u64>,
    seed: u64,
) -> Result<ReconcileOutcome, ReconError> {
    let builder = SessionBuilder::new(seed).amplification(Amplification::replicate(6));
    builder.run(
        session::unknown_alice(alice, builder.config()),
        session::unknown_bob(bob, builder.config()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn random_sets(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let mut alice: HashSet<u64> = (0..n).map(|_| rng.next_below(1 << 50)).collect();
        let mut bob = alice.clone();
        for _ in 0..d / 2 {
            alice.insert(rng.next_below(1 << 50));
        }
        for _ in 0..(d - d / 2) {
            bob.insert(rng.next_below(1 << 50));
        }
        (alice, bob)
    }

    #[test]
    fn known_d_driver_recovers_and_uses_one_round() {
        let (alice, bob) = random_sets(2000, 20, 1);
        let outcome = reconcile_known(&alice, &bob, 24, 7).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.bytes_bob_to_alice, 0);
        assert!(outcome.stats.bytes_alice_to_bob > 0);
    }

    #[test]
    fn charpoly_driver_recovers_exactly() {
        let (alice, bob) = random_sets(300, 10, 2);
        let outcome = reconcile_known_charpoly(&alice, &bob, 12, 9).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert_eq!(outcome.stats.rounds, 1);
    }

    #[test]
    fn charpoly_uses_less_communication_than_iblt_for_same_d() {
        let (alice, bob) = random_sets(500, 8, 3);
        let iblt = reconcile_known(&alice, &bob, 8, 5).unwrap();
        let poly = reconcile_known_charpoly(&alice, &bob, 8, 5).unwrap();
        assert!(
            poly.stats.total_bytes() < iblt.stats.total_bytes(),
            "charpoly {} bytes should undercut IBLT {} bytes",
            poly.stats.total_bytes(),
            iblt.stats.total_bytes()
        );
    }

    #[test]
    fn unknown_d_driver_uses_two_rounds_typically() {
        let (alice, bob) = random_sets(3000, 16, 4);
        let outcome = reconcile_unknown(&alice, &bob, 11).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 2);
        assert!(outcome.stats.bytes_bob_to_alice > 0, "estimator must be transmitted");
    }

    #[test]
    fn unknown_d_driver_handles_zero_difference() {
        let (alice, _) = random_sets(1000, 0, 5);
        let outcome = reconcile_unknown(&alice, &alice, 3).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn unknown_d_driver_handles_large_difference() {
        let (alice, bob) = random_sets(5000, 800, 6);
        let outcome = reconcile_unknown(&alice, &bob, 13).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn known_d_communication_grows_with_d_not_n() {
        let (alice_small, bob_small) = random_sets(500, 8, 7);
        let (alice_large, bob_large) = random_sets(50_000, 8, 8);
        let small = reconcile_known(&alice_small, &bob_small, 8, 1).unwrap();
        let large = reconcile_known(&alice_large, &bob_large, 8, 1).unwrap();
        assert_eq!(small.stats.total_bytes(), large.stats.total_bytes());
    }
}
