//! # recon-set
//!
//! Set and multiset reconciliation — the building block the set-of-sets protocols of
//! *"Reconciling Graphs and Sets of Sets"* (Mitzenmacher & Morgan, PODS 2018) are
//! assembled from.
//!
//! Alice holds a set `S_A`, Bob a set `S_B`, both over a universe of `w`-bit words,
//! and their symmetric difference has size at most `d`. At the end of a (one-way)
//! protocol Bob holds `S_A`. Three protocols are implemented:
//!
//! | Protocol | Paper reference | Rounds | Communication | Time |
//! |----------|-----------------|--------|---------------|------|
//! | [`IbltSetProtocol`] | Corollary 2.2 | 1 | `O(d log u)` bits | `O(n)` |
//! | [`CharPolyProtocol`] | Theorem 2.3 | 1 | `O(d log u)` bits | `O(n·min(d, log² n) + d³)` |
//! | [`reconcile_unknown`] | Corollary 3.2 | 2 | `O(d log u)` bits | `O(n log d)` |
//!
//! plus multiset reconciliation (Section 3.4) in [`multiset`].
//!
//! The IBLT protocol is fast and succeeds with probability `1 − 1/poly(d)`; the
//! characteristic-polynomial protocol is slower but exact (it fails only if the
//! difference bound was wrong), which is why the multi-round set-of-sets protocol of
//! Theorem 3.9 uses it for child sets with very small differences.
//!
//! ```
//! use std::collections::HashSet;
//! use recon_set::IbltSetProtocol;
//!
//! let alice: HashSet<u64> = (0..1000).collect();
//! let bob: HashSet<u64> = (10..1010).collect();
//!
//! let protocol = IbltSetProtocol::new(42);
//! let digest = protocol.digest(&alice, 32);          // Alice → Bob, one message
//! let recovered = protocol.reconcile(&digest, &bob).unwrap();
//! assert_eq!(recovered, alice);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charpoly_protocol;
pub mod diff;
pub mod iblt_protocol;
pub mod multiset;
pub mod protocol;
pub mod session;
pub mod sharded;

pub use charpoly_protocol::{CharPolyDigest, CharPolyProtocol};
pub use diff::SetDiff;
pub use iblt_protocol::{full_digest_builds, IbltSetProtocol, SetDigest};
pub use multiset::{Multiset, MultisetProtocol};
pub use protocol::{
    reconcile_known, reconcile_known_charpoly, reconcile_unknown, ReconcileOutcome,
};
pub use sharded::{reconcile_known_sharded, reconcile_unknown_sharded, shard_set};
