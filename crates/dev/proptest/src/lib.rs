//! A small, dependency-free, offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so this
//! crate provides the subset of proptest's API the workspace's property tests
//! actually use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`Strategy`] with `prop_map`, [`any`], integer/float range strategies and
//! [`collection`] strategies.
//!
//! Semantics are simplified but deterministic: every test case is generated from a
//! seed derived from the test's module path, name and case index, so failures are
//! reproducible run-to-run. There is no shrinking; the failing inputs are printed
//! via the assertion message instead.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Deterministic per-case random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the generator for one test case from the test identity and index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a generated test case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; generate another one.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type threaded through a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit()
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
            type Value = $t;
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A collection size specification: either an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.0.sample(rng)
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self(range)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            Self(*range.start()..range.end() + 1)
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate hash sets whose elements come from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Duplicates shrink the set below the target size, mirroring proptest's
            // own size semantics closely enough for these tests.
            for _ in 0..n {
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

// Re-exported so the macros can reference them unambiguously.
#[doc(hidden)]
pub use collection::vec as __vec;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Assert two values differ inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Reject the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each function's arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let budget = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases && attempts < budget {
                    attempts += 1;
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(attempts),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed on case {attempts}: {msg}", stringify!($name));
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest {}: every generated case was rejected",
                    stringify!($name)
                );
            }
        )*
    };
}

// Keep the top-level `HashSet`/`Hash` imports referenced (they document the shim's
// surface and are used by the collection module through `super`).
#[allow(dead_code)]
fn _assert_imports(set: HashSet<u64>) -> impl Hash {
    set.len()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::for_case("x", 1);
        let mut b = super::TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in any::<u64>()) {
            prop_assert!((10..20).contains(&x), "x = {}", x);
            let _ = y;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(any::<u64>(), 0..5)) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn tuple_strategies_compose(pairs in crate::collection::vec((any::<bool>(), 0u64..7), 1..4)) {
            for (_, x) in &pairs {
                prop_assert!(*x < 7);
            }
        }
    }
}
