//! A small, dependency-free, offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this crate
//! provides the subset of criterion's API the workspace benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple timing loop
//! instead of criterion's statistical machinery. Each benchmark runs a short
//! warm-up followed by a fixed measurement window and prints the mean iteration
//! time.
//!
//! Passing `--smoke` after `--` (`cargo bench -p recon-bench --bench iblt --
//! --smoke`) shrinks the measurement window to a few milliseconds and caps the
//! iteration count, so CI can execute every benchmark body end to end as a
//! regression smoke test without paying full measurement time.
//!
//! Passing `--json <path>` additionally writes a machine-readable report of
//! every measurement (benchmark id, mean nanoseconds per iteration, iteration
//! count, and whether smoke mode was active) when the run finishes — the input
//! of the workspace's `bench-check` perf-regression gate. The file is written
//! by the `criterion_main!`-generated `main` after all groups have run.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the benchmark binary was invoked with `--smoke`: run every
/// routine, but with a minimal measurement window.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|arg| arg == "--smoke"))
}

/// The path given after `--json`, if any.
fn json_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        let mut args = std::env::args();
        while let Some(arg) = args.next() {
            if arg == "--json" {
                return args.next();
            }
        }
        None
    })
    .as_deref()
}

/// One finished measurement, queued for the JSON report.
struct JsonRecord {
    id: String,
    mean_ns: f64,
    iterations: u64,
    /// Median latency, for benches that measure a distribution (load
    /// generators) rather than a homogeneous `iter` loop.
    p50_ns: Option<f64>,
    /// 99th-percentile latency, same provenance as `p50_ns`.
    p99_ns: Option<f64>,
}

fn json_records() -> &'static Mutex<Vec<JsonRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<JsonRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize the queued measurements to the canonical report format.
fn render_json(records: &[JsonRecord], smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    out.push_str("  \"benches\": [\n");
    for (i, record) in records.iter().enumerate() {
        let mut fields = format!(
            "\"id\": \"{}\", \"mean_ns\": {:.3}, \"iters\": {}",
            escape_json(&record.id),
            record.mean_ns,
            record.iterations,
        );
        if let Some(p50) = record.p50_ns {
            fields.push_str(&format!(", \"p50_ns\": {p50:.3}"));
        }
        if let Some(p99) = record.p99_ns {
            fields.push_str(&format!(", \"p99_ns\": {p99:.3}"));
        }
        out.push_str(&format!(
            "    {{{fields}}}{}\n",
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON report if `--json <path>` was given. Called by the
/// `criterion_main!`-generated `main` once every group has run; harmless to
/// call when no path was requested.
#[doc(hidden)]
pub fn write_json_report() {
    let Some(path) = json_path() else { return };
    let records = json_records().lock().expect("bench report lock");
    let body = render_json(&records, smoke_mode());
    if let Err(error) = std::fs::write(path, body) {
        eprintln!("failed to write bench JSON to {path}: {error}");
        std::process::exit(2);
    }
    println!("wrote {} bench measurements to {path}", records.len());
}

/// Record an externally measured result into the report, alongside the
/// `iter`-driven measurements.
///
/// Benchmarks that drive their own measurement loop — a load generator timing
/// thousands of concurrent sessions, say — compute a latency *distribution*
/// that a mean alone misrepresents. They call this with the mean plus optional
/// p50/p99 nanosecond latencies; the percentiles flow into the `--json` report
/// as optional fields and through the `bench-check` baseline comparison.
pub fn record_measurement(
    id: &str,
    mean_ns: f64,
    iterations: u64,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
) {
    let tail = match (p50_ns, p99_ns) {
        (Some(p50), Some(p99)) => format!("  p50 {:.2?} p99 {:.2?}", ns(p50), ns(p99)),
        (Some(p50), None) => format!("  p50 {:.2?}", ns(p50)),
        (None, Some(p99)) => format!("  p99 {:.2?}", ns(p99)),
        (None, None) => String::new(),
    };
    println!("{id:<60} {:>12.2?} / iter  ({iterations} iters){tail}", ns(mean_ns));
    json_records().lock().expect("bench report lock").push(JsonRecord {
        id: id.to_string(),
        mean_ns,
        iterations,
        p50_ns,
        p99_ns,
    });
}

fn ns(nanos: f64) -> Duration {
    Duration::from_nanos(nanos.max(0.0) as u64)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the benchmark closure; drives the measured iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    mean: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Measure `routine` over a warm-up pass and a short measurement window
    /// (or a near-instant one under [`smoke_mode`]).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also gives a scale for the window).
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed();

        let (window, max_iterations) = if smoke_mode() {
            (Duration::from_millis(5), 10)
        } else {
            (Duration::from_millis(200).max(first), 1_000_000)
        };
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < window && iterations < max_iterations {
            black_box(routine());
            iterations += 1;
        }
        self.mean = Some(start.elapsed() / iterations.max(1) as u32);
        self.iterations = iterations;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            println!("{label:<60} {mean:>12.2?} / iter  ({} iters)", bencher.iterations);
            json_records().lock().expect("bench report lock").push(JsonRecord {
                id: label.to_string(),
                mean_ns: mean.as_secs_f64() * 1e9,
                iterations: bencher.iterations,
                p50_ns: None,
                p99_ns: None,
            });
        }
        None => println!("{label:<60} (no measurement: closure never called iter)"),
    }
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's fixed measurement window ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups (and writes the `--json` report
/// once they finish, when one was requested).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let records = vec![
            JsonRecord {
                id: "group/8".into(),
                mean_ns: 1234.5678,
                iterations: 42,
                p50_ns: None,
                p99_ns: None,
            },
            JsonRecord {
                id: "quo\"te".into(),
                mean_ns: 0.25,
                iterations: 1,
                p50_ns: Some(0.2),
                p99_ns: Some(1.75),
            },
        ];
        let body = render_json(&records, true);
        assert!(body.contains("\"schema\": 1"));
        assert!(body.contains("\"mode\": \"smoke\""));
        assert!(body.contains("{\"id\": \"group/8\", \"mean_ns\": 1234.568, \"iters\": 42},"));
        assert!(body.contains(
            "{\"id\": \"quo\\\"te\", \"mean_ns\": 0.250, \"iters\": 1, \
             \"p50_ns\": 0.200, \"p99_ns\": 1.750}"
        ));
        assert!(body.ends_with("  ]\n}\n"));
        let empty = render_json(&[], false);
        assert!(empty.contains("\"mode\": \"full\""));
        assert!(empty.contains("\"benches\": [\n  ]"));
    }
}
