//! Sets of multisets and multisets of multisets (Section 3.4).
//!
//! "All of our protocols can be adapted to reconciling sets of multisets or multisets
//! of multisets in a similar way": replace each multiset element `x` with multiplicity
//! `k` by the pair `(x, k)`, reconcile the resulting sets of sets, and read the
//! multiplicities back off. The universe grows from `u` to `u·n`, which here means the
//! pair is packed into a single 64-bit word (`element_bits` bits of element,
//! `64 − element_bits` bits of multiplicity).
//!
//! This adapter is what the graph protocols build on: the degree-neighborhood scheme
//! (Theorem 5.6) reconciles a *set of multisets* of neighbor degrees, and forest
//! reconciliation (Theorem 6.1) reconciles a *multiset of multisets* of vertex
//! signatures. A multiset of child multisets is handled by attaching the child's
//! multiplicity as one extra packed element, keeping the parent a plain set.

use crate::types::{ChildSet, SetOfSets, SosParams};
use recon_base::ReconError;
use recon_protocol::{Amplification, SessionBuilder};
use recon_set::Multiset;

/// A parent collection of child multisets (possibly itself with repeated children).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetOfMultisets {
    children: Vec<Multiset>,
}

/// Packing parameters for `(element, multiplicity)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairPacking {
    /// Bits reserved for the element value (the rest hold the multiplicity).
    pub element_bits: u32,
}

impl Default for PairPacking {
    fn default() -> Self {
        Self { element_bits: 44 }
    }
}

impl PairPacking {
    /// Maximum representable element value.
    pub fn max_element(&self) -> u64 {
        (1u64 << self.element_bits) - 1
    }

    /// Maximum representable multiplicity.
    pub fn max_count(&self) -> u64 {
        (1u64 << (63 - self.element_bits)) - 1
    }

    /// Pack `(element, multiplicity)` into a single word.
    pub fn pack(&self, element: u64, count: u64) -> Result<u64, ReconError> {
        if element > self.max_element() {
            return Err(ReconError::InvalidInput(format!(
                "element {element} exceeds the {}-bit packing budget",
                self.element_bits
            )));
        }
        if count == 0 || count > self.max_count() {
            return Err(ReconError::InvalidInput(format!(
                "multiplicity {count} outside [1, {}]",
                self.max_count()
            )));
        }
        Ok((count << self.element_bits) | element)
    }

    /// Unpack a word into `(element, multiplicity)`.
    pub fn unpack(&self, packed: u64) -> (u64, u64) {
        (packed & self.max_element(), (packed >> self.element_bits) & self.max_count())
    }
}

impl SetOfMultisets {
    /// Create an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of child multisets (duplicates are kept: the parent is
    /// allowed to be a multiset of multisets).
    pub fn from_children<I: IntoIterator<Item = Multiset>>(children: I) -> Self {
        Self { children: children.into_iter().collect() }
    }

    /// Add a child multiset.
    pub fn push(&mut self, child: Multiset) {
        self.children.push(child);
    }

    /// The child multisets.
    pub fn children(&self) -> &[Multiset] {
        &self.children
    }

    /// Number of child multisets.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    /// Largest number of distinct elements in any child.
    pub fn max_child_distinct(&self) -> usize {
        self.children.iter().map(Multiset::distinct_len).max().unwrap_or(0)
    }

    /// Convert to a plain set of sets by packing `(element, multiplicity)` pairs and
    /// appending the child's own repetition count (so that repeated child multisets
    /// remain distinguishable). Children that are exact duplicates of one another are
    /// collapsed into one child carrying an occurrence-count marker element.
    pub fn to_set_of_sets(&self, packing: &PairPacking) -> Result<SetOfSets, ReconError> {
        use std::collections::BTreeMap;
        // Count identical children.
        let mut groups: BTreeMap<Vec<(u64, u64)>, u64> = BTreeMap::new();
        for child in &self.children {
            let mut key: Vec<(u64, u64)> = child.iter().collect();
            key.sort_unstable();
            *groups.entry(key).or_insert(0) += 1;
        }
        let mut children = Vec::with_capacity(groups.len());
        for (pairs, occurrences) in groups {
            let mut set = ChildSet::new();
            for (x, c) in pairs {
                set.insert(packing.pack(x, c)?);
            }
            // The occurrence marker uses the reserved top bit so it can never collide
            // with a packed pair.
            set.insert((1u64 << 63) | occurrences);
            children.push(set);
        }
        Ok(SetOfSets::from_children(children))
    }

    /// Inverse of [`SetOfMultisets::to_set_of_sets`].
    pub fn from_set_of_sets(sos: &SetOfSets, packing: &PairPacking) -> Result<Self, ReconError> {
        let mut children = Vec::new();
        for child in sos.children() {
            let mut multiset = Multiset::new();
            let mut occurrences = 1u64;
            for &packed in child {
                if packed >> 63 == 1 {
                    occurrences = packed & !(1u64 << 63);
                    continue;
                }
                let (x, c) = packing.unpack(packed);
                if c == 0 {
                    return Err(ReconError::ChecksumFailure);
                }
                multiset.insert_n(x, c);
            }
            for _ in 0..occurrences {
                children.push(multiset.clone());
            }
        }
        Ok(Self { children })
    }

    /// Canonical form for equality checks in tests: children sorted by their pair
    /// lists.
    pub fn canonicalized(&self) -> Vec<Vec<(u64, u64)>> {
        let mut canon: Vec<Vec<(u64, u64)>> = self
            .children
            .iter()
            .map(|c| {
                let mut pairs: Vec<(u64, u64)> = c.iter().collect();
                pairs.sort_unstable();
                pairs
            })
            .collect();
        canon.sort();
        canon
    }
}

/// The shared parameters the two parties of a Section 3.4 session must agree on:
/// the cascading protocol's `SosParams` with a `max_child_size` covering both
/// parties' *packed* children. The legacy driver derives it from both inputs;
/// separated parties agree on it out of band like any other universe bound.
pub fn resolved_params(
    alice: &SetOfMultisets,
    bob: &SetOfMultisets,
    params: &SosParams,
    packing: &PairPacking,
) -> Result<SosParams, ReconError> {
    let alice_sos = alice.to_set_of_sets(packing)?;
    let bob_sos = bob.to_set_of_sets(packing)?;
    let max_child =
        alice_sos.max_child_size().max(bob_sos.max_child_size()).max(params.max_child_size).max(1);
    Ok(SosParams::new(params.seed, max_child))
}

/// Reconcile two collections of multisets with a known bound `d` on the number of
/// element-level changes, by packing into a set of sets and running the cascading
/// protocol (Theorem 3.7 with the Section 3.4 transformation). Delegates to the
/// sans-I/O parties of [`crate::session`] driven over an in-memory link.
///
/// Returns Bob's recovered copy of Alice's collection and the measured communication.
pub fn reconcile_known(
    alice: &SetOfMultisets,
    bob: &SetOfMultisets,
    d: usize,
    params: &SosParams,
    packing: &PairPacking,
) -> Result<(SetOfMultisets, recon_base::CommStats), ReconError> {
    let sos_params = resolved_params(alice, bob, params, packing)?;
    let builder = SessionBuilder::new(sos_params.seed).amplification(Amplification::replicate(4));
    let amplification = builder.config().amplification;
    let outcome = builder.run(
        crate::session::mom_known_alice(alice, d, &sos_params, packing, amplification)?,
        crate::session::mom_known_bob(bob, &sos_params, packing, amplification)?,
    )?;
    Ok((outcome.recovered, outcome.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(pairs: &[(u64, u64)]) -> Multiset {
        let mut m = Multiset::new();
        for &(x, c) in pairs {
            m.insert_n(x, c);
        }
        m
    }

    #[test]
    fn packing_roundtrips_and_enforces_bounds() {
        let packing = PairPacking::default();
        for (x, c) in [(0u64, 1u64), (12345, 7), (packing.max_element(), packing.max_count())] {
            let packed = packing.pack(x, c).unwrap();
            assert_eq!(packing.unpack(packed), (x, c));
        }
        assert!(packing.pack(packing.max_element() + 1, 1).is_err());
        assert!(packing.pack(1, 0).is_err());
        assert!(packing.pack(1, packing.max_count() + 1).is_err());
    }

    #[test]
    fn set_of_sets_conversion_roundtrips() {
        let packing = PairPacking::default();
        let collection = SetOfMultisets::from_children(vec![
            ms(&[(1, 2), (5, 1)]),
            ms(&[(9, 3)]),
            ms(&[(9, 3)]), // duplicate child multiset
            Multiset::new(),
        ]);
        let sos = collection.to_set_of_sets(&packing).unwrap();
        let back = SetOfMultisets::from_set_of_sets(&sos, &packing).unwrap();
        assert_eq!(back.canonicalized(), collection.canonicalized());
        assert_eq!(back.num_children(), 4);
    }

    #[test]
    fn identical_collections_reconcile() {
        let packing = PairPacking::default();
        let collection =
            SetOfMultisets::from_children((0..40u64).map(|i| ms(&[(i, 1 + i % 3), (i + 100, 2)])));
        let params = SosParams::new(5, 8);
        let (recovered, stats) =
            reconcile_known(&collection, &collection, 2, &params, &packing).unwrap();
        assert_eq!(recovered.canonicalized(), collection.canonicalized());
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn multiplicity_and_element_changes_reconcile() {
        let packing = PairPacking::default();
        let alice = SetOfMultisets::from_children(
            (0..60u64).map(|i| ms(&[(i, 1 + i % 4), (i * 7 + 1000, 2), (i + 5000, 1)])),
        );
        let mut bob_children: Vec<Multiset> = alice.children().to_vec();
        // A multiplicity bump, an element swap and a removed element: 4 logical changes.
        bob_children[3].insert(3);
        bob_children[10].remove(10);
        bob_children[10].insert(999_999);
        bob_children[20].remove(20 * 7 + 1000);
        let bob = SetOfMultisets::from_children(bob_children);
        let params = SosParams::new(11, 8);
        let (recovered, _) = reconcile_known(&alice, &bob, 6, &params, &packing).unwrap();
        assert_eq!(recovered.canonicalized(), alice.canonicalized());
    }

    #[test]
    fn duplicate_children_with_different_counts_reconcile() {
        let packing = PairPacking::default();
        let shared: Vec<Multiset> = (0..30u64).map(|i| ms(&[(i, 2)])).collect();
        let mut alice_children = shared.clone();
        alice_children.push(ms(&[(7, 2)])); // now two copies of the child {7:2}
        let alice = SetOfMultisets::from_children(alice_children);
        let bob = SetOfMultisets::from_children(shared);
        let params = SosParams::new(21, 8);
        let (recovered, _) = reconcile_known(&alice, &bob, 3, &params, &packing).unwrap();
        assert_eq!(recovered.canonicalized(), alice.canonicalized());
    }
}
