//! The IBLT-of-IBLTs protocol — Algorithm 1, Theorem 3.5 (known `d`) and
//! Corollary 3.6 (unknown `d` via repeated doubling).
//!
//! Each child set is encoded as a *child IBLT* with `O(d)` cells plus a short hash of
//! the child set; these fixed-width encodings are then themselves inserted as keys
//! into an *outer IBLT* sized for `d̂` differing children. Bob subtracts his own
//! encodings, peels the outer table to learn which child encodings differ, and then
//! decodes each of Alice's differing child IBLTs against each of his own differing
//! child IBLTs (at most `d̂²` pairs, each `O(d)` work) to recover Alice's child sets.
//! Communication: `O(d̂ d log u + d̂ log s)` bits in one round.

use crate::session;
use crate::types::{ChildSet, SetOfSets, SosOutcome, SosParams};
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use recon_iblt::{Iblt, IbltConfig};
use recon_protocol::{Amplification, SessionBuilder};

/// Alice's one-round message: the outer IBLT over child encodings.
#[derive(Debug, Clone, PartialEq)]
pub struct IbltOfIbltsDigest {
    /// Outer IBLT; each key is `serialize(child IBLT) || child hash`.
    pub outer: Iblt,
    /// The per-child difference bound `d` the child IBLTs were sized for.
    pub child_diff_bound: usize,
    /// Hash of Alice's whole parent set, for end-to-end verification.
    pub parent_hash: u64,
    /// Number of child sets Alice holds.
    pub num_children: u64,
}

impl Encode for IbltOfIbltsDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.outer.encode(buf);
        write_uvarint(buf, self.child_diff_bound as u64);
        self.parent_hash.encode(buf);
        self.num_children.encode(buf);
    }
}

impl Decode for IbltOfIbltsDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(IbltOfIbltsDigest {
            outer: <Iblt as Decode>::decode(buf)?,
            child_diff_bound: read_uvarint(buf)? as usize,
            parent_hash: u64::decode(buf)?,
            num_children: u64::decode(buf)?,
        })
    }
}

/// The IBLT-of-IBLTs protocol (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbltOfIbltsProtocol {
    params: SosParams,
}

impl IbltOfIbltsProtocol {
    /// Create a protocol instance from shared parameters.
    pub fn new(params: SosParams) -> Self {
        Self { params }
    }

    /// Configuration of the child IBLTs (u64 element keys). Child tables use a
    /// smaller minimum size than stand-alone IBLTs: a child decode failure is caught
    /// by the hash check and surfaces as a retryable error rather than silent
    /// corruption, so the communication savings are worth the slightly higher
    /// failure rate.
    fn child_config(&self) -> IbltConfig {
        IbltConfig::for_u64_keys(self.params.role_seed(0xB1))
            .with_cells_per_diff(2.0)
            .with_min_cells(8)
    }

    /// Number of cells each child IBLT uses for a per-child difference bound `d`.
    pub fn child_cells(&self, d: usize) -> usize {
        self.child_config().cells_for(d.max(1))
    }

    /// Width in bytes of a child encoding (serialized child IBLT plus 8-byte hash).
    pub fn encoding_bytes(&self, d: usize) -> usize {
        self.child_config().serialized_len(self.child_cells(d)) + 8
    }

    fn outer_config(&self, d: usize) -> IbltConfig {
        // Retightened sizing backed by the decode-rescue pipeline: Bob's own
        // child encodings are the candidate pool in `reconcile`, and each
        // outer cell costs a whole serialized child table, so the tighter
        // layout saves O(d log u) bits per cell shaved.
        IbltConfig::tuned_for_key_bytes(self.encoding_bytes(d), self.params.role_seed(0xB2))
    }

    /// An empty child table of the right geometry for bound `d`, reusable across
    /// children via [`Iblt::clear`].
    fn child_scratch(&self, d: usize) -> Iblt {
        Iblt::with_cells(self.child_cells(d), &self.child_config())
    }

    /// Encode one child set into `out` using `scratch` as the child table — both
    /// are cleared and reused, so bulk encoders allocate nothing per child.
    fn encode_child_into(&self, child: &ChildSet, scratch: &mut Iblt, out: &mut Vec<u8>) {
        scratch.clear();
        for &x in child {
            scratch.insert_u64(x);
        }
        out.clear();
        scratch.encode(out);
        out.extend_from_slice(&SetOfSets::child_hash(child, self.params.seed).to_le_bytes());
    }

    fn split_encoding(encoding: &[u8]) -> Result<(Iblt, u64), ReconError> {
        if encoding.len() < 8 {
            return Err(ReconError::ChecksumFailure);
        }
        let (iblt_bytes, hash_bytes) = encoding.split_at(encoding.len() - 8);
        let table = Iblt::from_bytes(iblt_bytes).map_err(ReconError::Wire)?;
        let hash = u64::from_le_bytes(hash_bytes.try_into().expect("8 bytes"));
        Ok((table, hash))
    }

    /// Alice's side: build the digest for per-child bound `d` and differing-children
    /// bound `d_hat`.
    pub fn digest(&self, sos: &SetOfSets, d: usize, d_hat: usize) -> IbltOfIbltsDigest {
        let d = d.max(1);
        let mut outer = Iblt::with_expected_diff((2 * d_hat).max(2), &self.outer_config(d));
        let mut scratch = self.child_scratch(d);
        let mut encoding = Vec::with_capacity(self.encoding_bytes(d));
        for child in sos.children() {
            self.encode_child_into(child, &mut scratch, &mut encoding);
            outer.insert(&encoding);
        }
        IbltOfIbltsDigest {
            outer,
            child_diff_bound: d,
            parent_hash: sos.parent_hash(self.params.seed),
            num_children: sos.num_children() as u64,
        }
    }

    /// Bob's side: recover Alice's parent set.
    pub fn reconcile(
        &self,
        digest: &IbltOfIbltsDigest,
        local: &SetOfSets,
    ) -> Result<SetOfSets, ReconError> {
        let d = digest.child_diff_bound.max(1);
        let mut table = digest.outer.clone();
        table.adopt_layout(&self.outer_config(d))?;
        let mut scratch = self.child_scratch(d);
        let mut encoding = Vec::with_capacity(self.encoding_bytes(d));
        for child in local.children() {
            self.encode_child_into(child, &mut scratch, &mut encoding);
            table.delete(&encoding);
        }
        // Bob's own child encodings are exactly the candidate pool for the
        // outer decode's rescue (materialized only if the peel stalls).
        let decoded = table.decode_in_place_with_candidates(local.children().iter().map(|child| {
            let mut scratch = self.child_scratch(d);
            let mut encoding = Vec::with_capacity(self.encoding_bytes(d));
            self.encode_child_into(child, &mut scratch, &mut encoding);
            encoding
        }));
        if !decoded.complete {
            return Err(ReconError::PeelingFailure { remaining_cells: table.nonempty_cells() });
        }

        // D_B: Bob's child sets whose encodings appeared on the negative side.
        let mut differing_local: Vec<(u64, &ChildSet, Iblt)> = Vec::new();
        for encoding in &decoded.negative {
            let (table_b, hash_b) = Self::split_encoding(encoding)?;
            let child =
                local.child_by_hash(hash_b, self.params.seed).ok_or(ReconError::ChecksumFailure)?;
            differing_local.push((hash_b, child, table_b));
        }

        // D_A: Alice's differing child sets, recovered by pairing each of her child
        // IBLTs with one of Bob's differing child IBLTs. A child with no counterpart
        // on Bob's side (e.g. a brand-new document in the collections application) is
        // additionally tried against the empty set, which succeeds whenever the whole
        // child fits within the per-child difference bound — consistent with the
        // relaxed difference metric, where an unmatched child costs its full size.
        let empty_child = ChildSet::new();
        let empty_table = self.child_scratch(d);
        let mut candidates: Vec<(&ChildSet, &Iblt)> =
            differing_local.iter().map(|(_, c, t)| (*c, t)).collect();
        candidates.push((&empty_child, &empty_table));
        let mut recovered_children: Vec<ChildSet> = Vec::new();
        for encoding in &decoded.positive {
            let (table_a, hash_a) = Self::split_encoding(encoding)?;
            let mut matched = false;
            for (child_b, table_b) in &candidates {
                let Ok(mut diff_table) = table_a.subtract(table_b) else { continue };
                // The negative side of a child difference comes from Bob's own
                // child set — hand it to the rescue solver as candidates.
                let peeled =
                    diff_table.decode_in_place_with_candidates_u64(child_b.iter().copied());
                if !peeled.complete {
                    continue;
                }
                let mut candidate: ChildSet = (*child_b).clone();
                for x in peeled.negative_u64() {
                    candidate.remove(&x);
                }
                for x in peeled.positive_u64() {
                    candidate.insert(x);
                }
                if SetOfSets::child_hash(&candidate, self.params.seed) == hash_a {
                    recovered_children.push(candidate);
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Err(ReconError::NoMatchingChild { child_hash: hash_a });
            }
        }

        let mut recovered = local.clone();
        for (_, child_b, _) in &differing_local {
            recovered.remove(child_b);
        }
        for child in recovered_children {
            recovered.insert(child);
        }
        if recovered.num_children() as u64 != digest.num_children
            || recovered.parent_hash(self.params.seed) != digest.parent_hash
        {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(recovered)
    }
}

/// Theorem 3.5 driver: one-round SSRK with known bounds `d` (total element changes)
/// and `d_hat` (differing child sets), with up to two replicated attempts counted
/// against the communication budget. Delegates to the sans-I/O parties of
/// [`crate::session`] driven over an in-memory link.
pub fn run_known(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let builder = SessionBuilder::new(params.seed).amplification(Amplification::replicate(3));
    let amplification = builder.config().amplification;
    builder.run(
        session::ioi_known_alice(alice, d, d_hat, params, amplification)?,
        session::ioi_known_bob(bob, params, amplification),
    )
}

/// Corollary 3.6 driver: SSRU by repeated doubling of the difference bound
/// (`d = 1, 2, 4, …`), using `O(log d)` rounds. Bob acknowledges each failed attempt
/// with a one-byte NACK so the doubling is an explicit round of communication, as in
/// the paper's accounting.
pub fn run_unknown(
    alice: &SetOfSets,
    bob: &SetOfSets,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let max_possible = alice.total_elements() + bob.total_elements() + 2;
    let children_cap = alice.num_children().max(bob.num_children()).max(1);
    let builder = SessionBuilder::new(params.seed)
        .amplification(Amplification::doubling(1, 2 * max_possible));
    let amplification = builder.config().amplification;
    builder.run(
        session::ioi_unknown_alice(alice, params, children_cap, amplification)?,
        session::ioi_unknown_bob(bob, params, amplification),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::workload::{generate_pair, WorkloadParams};

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(64, 16, 1 << 30);
        (w, SosParams::new(0xD0D0, w.max_child_size))
    }

    #[test]
    fn identical_parent_sets_reconcile() {
        let (w, p) = params();
        let (alice, _) = generate_pair(&w, 0, 1);
        let protocol = IbltOfIbltsProtocol::new(p);
        let digest = protocol.digest(&alice, 2, 2);
        assert_eq!(protocol.reconcile(&digest, &alice).unwrap(), alice);
    }

    #[test]
    fn perturbed_parent_sets_reconcile() {
        let (w, p) = params();
        for d in [1usize, 3, 8, 16] {
            let (alice, bob) = generate_pair(&w, d, 50 + d as u64);
            let outcome = run_known(&alice, &bob, d, d, &p).unwrap();
            assert_eq!(outcome.recovered, alice, "d = {d}");
            assert_eq!(outcome.stats.rounds, 1);
        }
    }

    #[test]
    fn unknown_difference_doubles_until_success() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 9, 77);
        let outcome = run_unknown(&alice, &bob, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 1);
    }

    #[test]
    fn beats_naive_communication_when_children_are_large() {
        // Table 1's ordering: for large h the IBLT-of-IBLTs protocol transmits far
        // less than the naive protocol at the same d.
        let w = WorkloadParams::new(48, 64, 1 << 30);
        let p = SosParams::new(3, w.max_child_size);
        let (alice, bob) = generate_pair(&w, 4, 5);
        let smart = run_known(&alice, &bob, 4, 4, &p).unwrap();
        let naive_run = naive::run_known(&alice, &bob, 4, &p).unwrap();
        assert_eq!(smart.recovered, alice);
        assert_eq!(naive_run.recovered, alice);
        assert!(
            smart.stats.total_bytes() < naive_run.stats.total_bytes(),
            "IBLT-of-IBLTs {} bytes should undercut naive {} bytes",
            smart.stats.total_bytes(),
            naive_run.stats.total_bytes()
        );
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 5, 13);
        let protocol = IbltOfIbltsProtocol::new(p);
        let digest = protocol.digest(&alice, 5, 5);
        let decoded = IbltOfIbltsDigest::from_bytes(&digest.to_bytes()).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &bob).unwrap(), alice);
    }

    #[test]
    fn undersized_bounds_fail_detectably() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 30, 21);
        let protocol = IbltOfIbltsProtocol::new(p);
        let digest = protocol.digest(&alice, 1, 1);
        assert!(protocol.reconcile(&digest, &bob).is_err());
    }

    #[test]
    fn whole_child_replacements_are_recovered() {
        // A child set with no close match still reconciles: its IBLT decodes against
        // some differing child of Bob's as long as the per-child bound covers the
        // full symmetric difference.
        let (w, p) = params();
        let (alice, mut_bob) = generate_pair(&w, 0, 31);
        let mut bob = mut_bob;
        let removed = alice.children()[0].clone();
        bob.remove(&removed);
        let replacement: ChildSet = (1_000_000u64..1_000_000 + removed.len() as u64).collect();
        bob.insert(replacement.clone());
        let d = removed.len() + replacement.len();
        let outcome = run_known(&alice, &bob, d, 2, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }
}
