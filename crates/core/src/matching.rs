//! Difference metrics between two sets of sets.
//!
//! The paper defines `d` as "the value of the minimum cost matching between Alice and
//! Bob's child sets, where the cost of matching two sets is equal to their set
//! difference", and notes that all of its protocols actually solve the slightly
//! relaxed problem where `d` is "the sum over each of Alice and Bob's child sets of
//! their minimum set difference with one of the other party's child sets" (each child
//! set must be mapped to *at least* one child of the other party, not exactly one).
//!
//! Both metrics are implemented here — the exact matching via the Hungarian algorithm
//! (used by tests and workload generators to characterize instances) and the relaxed
//! metric (cheap, and the quantity the protocol bounds are stated against) — plus
//! the count of differing child sets (`d̂`).

use crate::types::{ChildSet, SetOfSets};
use std::collections::BTreeSet;

/// Size of the symmetric difference between two child sets.
pub fn child_difference(a: &ChildSet, b: &ChildSet) -> usize {
    a.symmetric_difference(b).count()
}

/// Number of child sets of `a` that do not appear (exactly) in `b`, plus the number
/// of child sets of `b` that do not appear in `a` — the quantity the paper calls the
/// number of *differing child sets*, bounded by `d̂`.
pub fn differing_children(a: &SetOfSets, b: &SetOfSets) -> usize {
    let a_set: BTreeSet<&ChildSet> = a.children().iter().collect();
    let b_set: BTreeSet<&ChildSet> = b.children().iter().collect();
    a_set.difference(&b_set).count() + b_set.difference(&a_set).count()
}

/// The relaxed total difference of Section 3.1: "the sum over each of Alice and
/// Bob's child sets of their minimum set difference with one of the other party's
/// child sets" — each child set must be mapped to *at least* one child of the other
/// party, but not exactly one. The paper's protocols solve this (slightly stronger)
/// formulation; a changed element therefore contributes to both directions of the
/// sum, so `relaxed_difference ≤ 2 · matching_difference` always holds.
///
/// Empty parent sets are handled by treating a missing counterpart as the empty set,
/// so inserting a whole child set of size `k` costs `k` per direction.
pub fn relaxed_difference(a: &SetOfSets, b: &SetOfSets) -> usize {
    fn one_direction(from: &SetOfSets, to: &SetOfSets) -> usize {
        let to_children: BTreeSet<&ChildSet> = to.children().iter().collect();
        from.children()
            .iter()
            .filter(|c| !to_children.contains(*c))
            .map(|c| {
                to.children()
                    .iter()
                    .map(|other| child_difference(c, other))
                    .min()
                    .unwrap_or(c.len())
            })
            .sum()
    }
    one_direction(a, b) + one_direction(b, a)
}

/// The exact minimum-cost matching difference between the two parent sets.
///
/// Child sets are matched one-to-one (padding the smaller side with empty sets, so
/// unmatched children cost their full size); the cost of matching two children is
/// their symmetric difference. Runs the Hungarian algorithm in `O(s^3)` time, so it
/// is intended for workload characterization and tests, not for the protocols
/// themselves (which never need to compute `d`, only to receive a bound on it).
pub fn matching_difference(a: &SetOfSets, b: &SetOfSets) -> usize {
    let n = a.num_children().max(b.num_children());
    if n == 0 {
        return 0;
    }
    let empty = ChildSet::new();
    let row_child = |i: usize| a.children().get(i).unwrap_or(&empty);
    let col_child = |j: usize| b.children().get(j).unwrap_or(&empty);
    let cost: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| child_difference(row_child(i), col_child(j)) as i64).collect())
        .collect();
    hungarian_min_cost(&cost) as usize
}

/// Minimum-cost perfect matching on a square cost matrix (Jonker–Volgenant style
/// potentials; the classic O(n^3) shortest augmenting path formulation).
fn hungarian_min_cost(cost: &[Vec<i64>]) -> i64 {
    let n = cost.len();
    if n == 0 {
        return 0;
    }
    const INF: i64 = i64::MAX / 4;
    // 1-indexed potentials and matching arrays, as in the standard formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut total = 0i64;
    for j in 1..=n {
        if p[j] != 0 {
            total += cost[p[j] - 1][j - 1];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn child(values: &[u64]) -> ChildSet {
        values.iter().copied().collect()
    }

    fn sos(children: &[&[u64]]) -> SetOfSets {
        SetOfSets::from_children(children.iter().map(|c| child(c)))
    }

    #[test]
    fn child_difference_counts_symmetric_difference() {
        assert_eq!(child_difference(&child(&[1, 2, 3]), &child(&[2, 3, 4])), 2);
        assert_eq!(child_difference(&child(&[]), &child(&[1, 2])), 2);
        assert_eq!(child_difference(&child(&[5]), &child(&[5])), 0);
    }

    #[test]
    fn identical_sets_of_sets_have_zero_difference() {
        let a = sos(&[&[1, 2], &[3, 4, 5]]);
        assert_eq!(differing_children(&a, &a), 0);
        assert_eq!(relaxed_difference(&a, &a), 0);
        assert_eq!(matching_difference(&a, &a), 0);
    }

    #[test]
    fn single_element_change_costs_one_per_direction() {
        let a = sos(&[&[1, 2], &[3, 4]]);
        let b = sos(&[&[1, 2], &[3, 4, 5]]);
        assert_eq!(differing_children(&a, &b), 2);
        // The changed child differs by one element from its counterpart in each
        // direction of the relaxed sum.
        assert_eq!(relaxed_difference(&a, &b), 2);
        assert_eq!(matching_difference(&a, &b), 1);
    }

    #[test]
    fn disjoint_children_cost_their_sizes() {
        let a = sos(&[&[1, 2, 3]]);
        let b = sos(&[&[10, 20, 30]]);
        assert_eq!(matching_difference(&a, &b), 6);
        assert_eq!(relaxed_difference(&a, &b), 12);
    }

    #[test]
    fn unbalanced_parent_sets_pad_with_empty_children() {
        let a = sos(&[&[1, 2], &[7, 8, 9]]);
        let b = sos(&[&[1, 2]]);
        // The extra child {7,8,9} must be created from scratch: cost 3.
        assert_eq!(matching_difference(&a, &b), 3);
        assert_eq!(matching_difference(&b, &a), 3);
        // In the relaxed metric the extra child maps to its nearest counterpart
        // {1,2} at cost 5, and only the Alice→Bob direction pays it.
        assert_eq!(relaxed_difference(&a, &b), 5);
    }

    #[test]
    fn matching_picks_the_cheaper_assignment() {
        // a1={1,2} is close to b2={1,2,3}, a2={10} is close to b1={10,11}.
        let a = sos(&[&[1, 2], &[10]]);
        let b = sos(&[&[10, 11], &[1, 2, 3]]);
        assert_eq!(matching_difference(&a, &b), 2);
    }

    #[test]
    fn relaxed_is_at_most_twice_matching_when_balanced() {
        // Each direction of the relaxed sum is bounded by the exact matching cost,
        // so the relaxed metric never exceeds twice the matching cost when both
        // parties have the same number of children.
        let cases = [
            (sos(&[&[1, 2], &[2, 3], &[9]]), sos(&[&[1, 2, 4], &[2, 5], &[8, 9]])),
            (sos(&[&[1], &[2], &[3]]), sos(&[&[1, 7], &[2], &[3, 9]])),
            (sos(&[&[5, 6, 7]]), sos(&[&[5, 6, 8]])),
        ];
        for (a, b) in cases {
            assert!(relaxed_difference(&a, &b) <= 2 * matching_difference(&a, &b));
        }
    }

    #[test]
    fn empty_parent_sets() {
        let empty = SetOfSets::new();
        let a = sos(&[&[1, 2]]);
        assert_eq!(matching_difference(&empty, &empty), 0);
        assert_eq!(relaxed_difference(&empty, &empty), 0);
        assert_eq!(matching_difference(&a, &empty), 2);
        assert_eq!(relaxed_difference(&a, &empty), 2);
        assert_eq!(differing_children(&a, &empty), 1);
    }

    #[test]
    fn hungarian_solves_textbook_instance() {
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        assert_eq!(hungarian_min_cost(&cost), 5);
        let cost2 = vec![vec![1, 2], vec![3, 1]];
        assert_eq!(hungarian_min_cost(&cost2), 2);
        assert_eq!(hungarian_min_cost(&[]), 0);
    }
}
