//! The naive set-of-sets protocol (Theorems 3.3 and 3.4).
//!
//! "The simplest approach to reconciling sets of sets is to ignore the fact that the
//! items are sets": each child set is treated as one opaque item from the huge
//! universe of all possible child sets, encoded as a fixed-width byte string of
//! `O(h log u)` bits, and the parent sets are reconciled with ordinary IBLT set
//! reconciliation (Corollary 2.2 / 3.2). Communication is `O(d̂ · h log u)` bits —
//! the baseline every smarter protocol in this crate is compared against in Table 1.

use crate::session;
use crate::types::{SetOfSets, SosOutcome, SosParams};
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_iblt::{Iblt, IbltConfig};
use recon_protocol::{Amplification, SessionBuilder};

/// Alice's one-round message for the naive protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveDigest {
    /// Outer IBLT whose keys are fixed-width encodings of entire child sets.
    pub outer: Iblt,
    /// Hash of Alice's whole parent set, for end-to-end verification.
    pub parent_hash: u64,
    /// Number of child sets Alice holds.
    pub num_children: u64,
}

impl Encode for NaiveDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.outer.encode(buf);
        self.parent_hash.encode(buf);
        self.num_children.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.outer.encoded_len() + 16
    }
}

impl Decode for NaiveDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(NaiveDigest {
            outer: <Iblt as Decode>::decode(buf)?,
            parent_hash: u64::decode(buf)?,
            num_children: u64::decode(buf)?,
        })
    }
}

/// The naive protocol: child sets as opaque fixed-width items (Theorem 3.3/3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveProtocol {
    params: SosParams,
}

impl NaiveProtocol {
    /// Create a protocol instance from shared parameters.
    pub fn new(params: SosParams) -> Self {
        Self { params }
    }

    /// Width in bytes of the fixed child-set encoding (`O(h log u)` bits).
    pub fn key_bytes(&self) -> usize {
        2 + 8 * self.params.max_child_size
    }

    fn outer_config(&self) -> IbltConfig {
        // Retightened sizing backed by the decode-rescue pipeline: Bob feeds
        // his own child encodings to the solver in `reconcile`, and the
        // session drivers amplify residual failures. At O(h log u) bits per
        // outer cell the tighter layout is where the savings are largest.
        IbltConfig::tuned_for_key_bytes(self.key_bytes(), self.params.role_seed(0xA1))
    }

    /// Alice's side: encode her parent set for a bound of `d_hat` differing child
    /// sets.
    pub fn digest(&self, sos: &SetOfSets, d_hat: usize) -> NaiveDigest {
        let cfg = self.outer_config();
        // Both parties' differing children end up in the subtracted table, so size
        // for twice the bound.
        let mut outer = Iblt::with_expected_diff((2 * d_hat).max(2), &cfg);
        let mut key = Vec::with_capacity(self.key_bytes());
        for child in sos.children() {
            SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
            outer.insert(&key);
        }
        NaiveDigest {
            outer,
            parent_hash: sos.parent_hash(self.params.seed),
            num_children: sos.num_children() as u64,
        }
    }

    /// Bob's side: recover Alice's parent set from her digest.
    pub fn reconcile(
        &self,
        digest: &NaiveDigest,
        local: &SetOfSets,
    ) -> Result<SetOfSets, ReconError> {
        let mut table = digest.outer.clone();
        table.adopt_layout(&self.outer_config())?;
        let mut key = Vec::with_capacity(self.key_bytes());
        for child in local.children() {
            SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
            table.delete(&key);
        }
        // Every negative key is one of Bob's own child encodings, so they are
        // exactly the candidates the rescue solver wants (materialized only if
        // the peel stalls).
        let decoded = table.decode_in_place_with_candidates(local.children().iter().map(|child| {
            let mut key = Vec::with_capacity(self.key_bytes());
            SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
            key
        }));
        if !decoded.complete {
            return Err(ReconError::PeelingFailure { remaining_cells: table.nonempty_cells() });
        }
        let mut recovered = local.clone();
        for key in &decoded.negative {
            let child = SetOfSets::decode_child_fixed(key).ok_or(ReconError::ChecksumFailure)?;
            if !recovered.remove(&child) {
                return Err(ReconError::ChecksumFailure);
            }
        }
        for key in &decoded.positive {
            let child = SetOfSets::decode_child_fixed(key).ok_or(ReconError::ChecksumFailure)?;
            if !recovered.insert(child) {
                return Err(ReconError::ChecksumFailure);
            }
        }
        if recovered.num_children() as u64 != digest.num_children
            || recovered.parent_hash(self.params.seed) != digest.parent_hash
        {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(recovered)
    }
}

/// Theorem 3.3 driver: one-round SSRK (known bound `d_hat` on differing child sets),
/// with up to two replicated attempts (Section 3.2's amplification) counted against
/// the communication budget. Delegates to the sans-I/O parties of
/// [`crate::session`] driven over an in-memory link.
pub fn run_known(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d_hat: usize,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let builder = SessionBuilder::new(params.seed).amplification(Amplification::replicate(3));
    let amplification = builder.config().amplification;
    builder.run(
        session::naive_known_alice(alice, d_hat, params, amplification)?,
        session::naive_known_bob(bob, params, amplification),
    )
}

/// Theorem 3.4 driver: two-round SSRU (unknown difference). Bob first sends an ℓ0
/// estimator over his child-set hashes so Alice can bound the number of differing
/// children, then the known-`d̂` protocol runs (doubling the bound on retries).
pub fn run_unknown(
    alice: &SetOfSets,
    bob: &SetOfSets,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let builder = SessionBuilder::new(params.seed)
        .amplification(Amplification::replicate(5))
        .estimator(L0Config::default());
    let amplification = builder.config().amplification;
    let estimator = builder.config().estimator;
    builder.run(
        session::naive_unknown_alice(alice, params, amplification, estimator),
        session::naive_unknown_bob(bob, params, amplification, estimator),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_pair, WorkloadParams};

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(64, 12, 1 << 20);
        (w, SosParams::new(0xBEEF, w.max_child_size))
    }

    #[test]
    fn identical_parent_sets_reconcile() {
        let (w, p) = params();
        let (alice, _) = generate_pair(&w, 0, 1);
        let protocol = NaiveProtocol::new(p);
        let digest = protocol.digest(&alice, 2);
        assert_eq!(protocol.reconcile(&digest, &alice).unwrap(), alice);
    }

    #[test]
    fn small_perturbations_reconcile() {
        let (w, p) = params();
        for d in [1usize, 2, 5, 10] {
            let (alice, bob) = generate_pair(&w, d, 10 + d as u64);
            let outcome = run_known(&alice, &bob, d, &p).unwrap();
            assert_eq!(outcome.recovered, alice, "d = {d}");
            assert_eq!(outcome.stats.rounds, 1);
        }
    }

    #[test]
    fn unknown_difference_reconciles_in_two_or_more_rounds() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 6, 3);
        let outcome = run_unknown(&alice, &bob, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 2);
        assert!(outcome.stats.bytes_bob_to_alice > 0);
    }

    #[test]
    fn communication_scales_with_child_size() {
        // The whole point of Theorem 3.5/3.7: the naive protocol pays O(h log u) per
        // differing child. Verify the digest grows with h.
        let w_small = WorkloadParams::new(32, 4, 1 << 20);
        let w_large = WorkloadParams::new(32, 32, 1 << 20);
        let (alice_small, _) = generate_pair(&w_small, 2, 5);
        let (alice_large, _) = generate_pair(&w_large, 2, 5);
        let proto_small = NaiveProtocol::new(SosParams::new(1, w_small.max_child_size));
        let proto_large = NaiveProtocol::new(SosParams::new(1, w_large.max_child_size));
        let bytes_small = proto_small.digest(&alice_small, 4).encoded_len();
        let bytes_large = proto_large.digest(&alice_large, 4).encoded_len();
        assert!(bytes_large > 4 * bytes_small, "{bytes_large} vs {bytes_small}");
    }

    #[test]
    fn undersized_bound_is_detected() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 40, 9);
        let protocol = NaiveProtocol::new(p);
        let digest = protocol.digest(&alice, 1);
        assert!(protocol.reconcile(&digest, &bob).is_err());
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 3, 11);
        let protocol = NaiveProtocol::new(p);
        let digest = protocol.digest(&alice, 4);
        let decoded = NaiveDigest::from_bytes(&digest.to_bytes()).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &bob).unwrap(), alice);
    }
}
