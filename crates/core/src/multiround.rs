//! The multi-round set-of-sets protocol — Theorem 3.9 (known `d`, 3 rounds) and
//! Theorem 3.10 (unknown `d`, 4 rounds).
//!
//! Instead of nesting IBLTs, this protocol spends extra rounds to avoid paying
//! `log min(d, h)` factors:
//!
//! 1. *(unknown `d` only)* Bob sends an ℓ0 difference estimator over his child-set
//!    hashes so Alice can size the next step.
//! 2. **Alice → Bob**: an IBLT of her child-set hashes (`O(d̂)` cells). Bob subtracts
//!    his own hashes, learns which child sets differ on each side, and
//! 3. **Bob → Alice**: sends back his hash IBLT together with one small set
//!    difference estimator per differing child set.
//! 4. **Alice → Bob**: Alice identifies her own differing children, pairs each with
//!    the most similar of Bob's differing children (smallest estimated difference),
//!    and sends a per-child patch: an IBLT digest for children with larger estimated
//!    differences, or characteristic-polynomial evaluations for very small ones
//!    (Theorem 2.3 is exact, so tiny patches never need retries). Bob applies each
//!    patch to his matched child and swaps the results into his parent set.
//!
//! The driver adds a safety fallback the paper handles by replication: if a per-child
//! patch fails to verify (the estimator under-estimated), the child set is re-sent
//! verbatim. This keeps the driver always-correct; the extra bytes are charged to the
//! transcript so the measured communication honestly reflects the retry.

use crate::types::{ChildSet, SetOfSets, SosOutcome, SosParams};
use recon_base::comm::{Direction, Transcript};
use recon_base::rng::split_seed;
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_estimator::{L0Config, L0Estimator, Side};
use recon_iblt::{Iblt, IbltConfig};
use recon_set::{CharPolyDigest, CharPolyProtocol, IbltSetProtocol, SetDigest};
use std::collections::BTreeMap;

/// Compact estimator configuration used for the per-child estimators of round 3
/// (`O(log(d̂/δ) log h)` bits per differing child).
fn child_estimator_config(seed: u64) -> L0Config {
    L0Config { reps: 5, levels: 20, buckets: 16, threshold: 8, seed }
}

/// A per-child patch sent by Alice in the final round.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildPatch {
    /// An IBLT set digest for the child (used when the estimated difference is
    /// large, Corollary 2.2).
    Iblt {
        /// Hash of Alice's child set (identifies the patch, lets Bob verify).
        alice_hash: u64,
        /// Hash of Bob's child set the patch should be applied to.
        target_hash: u64,
        /// The IBLT digest of Alice's child set.
        digest: SetDigest,
    },
    /// Characteristic-polynomial evaluations for the child (used for very small
    /// estimated differences, Theorem 2.3).
    CharPoly {
        /// Hash of Alice's child set.
        alice_hash: u64,
        /// Hash of Bob's child set the patch should be applied to.
        target_hash: u64,
        /// The characteristic-polynomial digest of Alice's child set.
        digest: CharPolyDigest,
    },
    /// The full child set, sent verbatim (fallback when an estimator badly
    /// under-estimated; also used for children with no plausible match).
    Full {
        /// Hash of Alice's child set.
        alice_hash: u64,
        /// The child set itself.
        child: Vec<u64>,
    },
}

impl Encode for ChildPatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ChildPatch::Iblt { alice_hash, target_hash, digest } => {
                buf.push(0);
                alice_hash.encode(buf);
                target_hash.encode(buf);
                digest.encode(buf);
            }
            ChildPatch::CharPoly { alice_hash, target_hash, digest } => {
                buf.push(1);
                alice_hash.encode(buf);
                target_hash.encode(buf);
                digest.encode(buf);
            }
            ChildPatch::Full { alice_hash, child } => {
                buf.push(2);
                alice_hash.encode(buf);
                child.encode(buf);
            }
        }
    }
}

impl Decode for ChildPatch {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ChildPatch::Iblt {
                alice_hash: u64::decode(buf)?,
                target_hash: u64::decode(buf)?,
                digest: SetDigest::decode(buf)?,
            }),
            1 => Ok(ChildPatch::CharPoly {
                alice_hash: u64::decode(buf)?,
                target_hash: u64::decode(buf)?,
                digest: CharPolyDigest::decode(buf)?,
            }),
            2 => Ok(ChildPatch::Full {
                alice_hash: u64::decode(buf)?,
                child: Vec::<u64>::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("child patch tag")),
        }
    }
}

fn hash_iblt_config(params: &SosParams) -> IbltConfig {
    IbltConfig::for_u64_keys(params.role_seed(0xD1))
}

fn hash_table(sos: &SetOfSets, d_hat: usize, params: &SosParams) -> Iblt {
    let mut table = Iblt::with_expected_diff((2 * d_hat).max(2), &hash_iblt_config(params));
    for h in sos.child_hashes(params.seed) {
        table.insert_u64(h);
    }
    table
}

/// Run the known-`d` multi-round protocol (Theorem 3.9): 3 rounds.
pub fn run_known(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let mut transcript = Transcript::new();
    drive(alice, bob, d, d_hat, params, &mut transcript)
}

/// Run the unknown-`d` multi-round protocol (Theorem 3.10): 4 rounds, the first of
/// which estimates the number of differing child sets.
pub fn run_unknown(
    alice: &SetOfSets,
    bob: &SetOfSets,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let mut transcript = Transcript::new();

    // Round 0 (Bob → Alice): estimator over Bob's child hashes.
    let est_cfg = L0Config::default().with_seed(params.role_seed(0xD0));
    let mut bob_est = L0Estimator::new(&est_cfg);
    for h in bob.child_hashes(params.seed) {
        bob_est.update(h, Side::B);
    }
    transcript.record(Direction::BobToAlice, "child-hash difference estimator", &bob_est);

    let mut alice_est = L0Estimator::new(&est_cfg);
    for h in alice.child_hashes(params.seed) {
        alice_est.update(h, Side::A);
    }
    let d_hat = (alice_est.merge(&bob_est)?.estimate() * 2).max(4);
    // With d unknown, use the generous per-child budget d = d̂ · h as the switch
    // point between the IBLT and charpoly branches; the per-child estimators of
    // round 3 provide the real per-child bounds.
    let d = d_hat * params.max_child_size;
    drive(alice, bob, d, d_hat, params, &mut transcript)
}

/// Shared rounds 1–3 of Theorems 3.9/3.10, appending to an existing transcript.
fn drive(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
    transcript: &mut Transcript,
) -> Result<SosOutcome, ReconError> {
    let seed = params.seed;

    // ----- Round 1 (Alice → Bob): IBLT of Alice's child hashes + parent hash. -----
    let alice_hash_table = hash_table(alice, d_hat, params);
    let parent_hash = alice.parent_hash(seed);
    transcript.record(
        Direction::AliceToBob,
        "child-hash IBLT",
        &(alice_hash_table.clone(), parent_hash),
    );

    // ----- Round 2 (Bob → Alice): his hash IBLT + per-differing-child estimators. --
    let bob_hash_table = hash_table(bob, d_hat, params);
    let hash_diff = alice_hash_table.subtract(&bob_hash_table)?.decode();
    if !hash_diff.complete {
        return Err(ReconError::PeelingFailure { remaining_cells: 0 });
    }
    // Bob's differing children (hashes only his side has).
    let bob_differing: Vec<u64> = hash_diff.negative_u64();
    let alice_differing: Vec<u64> = hash_diff.positive_u64();

    let mut bob_children: BTreeMap<u64, ChildSet> = BTreeMap::new();
    let mut bob_estimators: Vec<(u64, L0Estimator)> = Vec::new();
    for &h in &bob_differing {
        let child = bob
            .child_by_hash(h, seed)
            .ok_or(ReconError::ChecksumFailure)?
            .clone();
        let cfg = child_estimator_config(split_seed(params.role_seed(0xD2), h));
        let mut est = L0Estimator::new(&cfg);
        for &x in &child {
            est.update(x, Side::B);
        }
        bob_estimators.push((h, est));
        bob_children.insert(h, child);
    }
    transcript.record(
        Direction::BobToAlice,
        "child-hash IBLT + per-child estimators",
        &(bob_hash_table, bob_estimators.clone()),
    );

    // ----- Round 3 (Alice → Bob): per-child patches. ------------------------------
    let charpoly_threshold = (d as f64).sqrt().ceil() as usize;
    let charpoly = CharPolyProtocol::new(params.role_seed(0xD4));
    let mut patches: Vec<ChildPatch> = Vec::new();
    for &ah in &alice_differing {
        let child = alice
            .child_by_hash(ah, seed)
            .ok_or(ReconError::ChecksumFailure)?;
        // Find the most similar of Bob's differing children by merged estimate.
        let mut best: Option<(u64, usize)> = None;
        for (bh, best_est) in &bob_estimators {
            let cfg = child_estimator_config(split_seed(params.role_seed(0xD2), *bh));
            let mut alice_side = L0Estimator::new(&cfg);
            for &x in child {
                alice_side.update(x, Side::A);
            }
            let estimate = alice_side.merge(best_est)?.estimate();
            if best.map_or(true, |(_, e)| estimate < e) {
                best = Some((*bh, estimate));
            }
        }
        let patch = match best {
            None => ChildPatch::Full { alice_hash: ah, child: child.iter().copied().collect() },
            Some((target_hash, estimate)) => {
                let bound = (2 * estimate + 2).min(2 * child.len() + 2);
                let elements_fit_charpoly =
                    child.iter().all(|&x| x < CharPolyProtocol::DEFAULT_UNIVERSE_BOUND);
                if estimate < charpoly_threshold && elements_fit_charpoly {
                    ChildPatch::CharPoly {
                        alice_hash: ah,
                        target_hash,
                        digest: charpoly.digest(child, bound)?,
                    }
                } else {
                    let protocol = IbltSetProtocol::new(params.role_seed(0xD5));
                    ChildPatch::Iblt {
                        alice_hash: ah,
                        target_hash,
                        digest: protocol.digest(child, bound),
                    }
                }
            }
        };
        patches.push(patch);
    }
    transcript.record(Direction::AliceToBob, "per-child set reconciliation payloads", &patches);

    // ----- Bob applies the patches. ------------------------------------------------
    let iblt_protocol = IbltSetProtocol::new(params.role_seed(0xD5));
    let mut recovered_children: Vec<ChildSet> = Vec::new();
    let mut fallback_needed: Vec<u64> = Vec::new();
    for patch in &patches {
        match patch {
            ChildPatch::Full { child, .. } => {
                recovered_children.push(child.iter().copied().collect());
            }
            ChildPatch::Iblt { alice_hash, target_hash, digest } => {
                let target = bob_children
                    .get(target_hash)
                    .ok_or(ReconError::ChecksumFailure)?;
                let target_set = target.iter().copied().collect();
                match iblt_protocol.reconcile(digest, &target_set) {
                    Ok(rec)
                        if SetOfSets::child_hash(&rec.iter().copied().collect(), seed)
                            == *alice_hash =>
                    {
                        recovered_children.push(rec.into_iter().collect());
                    }
                    _ => fallback_needed.push(*alice_hash),
                }
            }
            ChildPatch::CharPoly { alice_hash, target_hash, digest } => {
                let target = bob_children
                    .get(target_hash)
                    .ok_or(ReconError::ChecksumFailure)?;
                let target_set = target.iter().copied().collect();
                match charpoly.reconcile(digest, &target_set) {
                    Ok(rec)
                        if SetOfSets::child_hash(&rec.iter().copied().collect(), seed)
                            == *alice_hash =>
                    {
                        recovered_children.push(rec.into_iter().collect());
                    }
                    _ => fallback_needed.push(*alice_hash),
                }
            }
        }
    }

    // Fallback round for any patch that failed verification (estimator under-shot):
    // Bob asks for those children verbatim. Rare, but counted honestly.
    if !fallback_needed.is_empty() {
        transcript.record(Direction::BobToAlice, "patch failure report", &fallback_needed);
        let mut full: Vec<(u64, Vec<u64>)> = Vec::new();
        for &h in &fallback_needed {
            let child = alice.child_by_hash(h, seed).ok_or(ReconError::ChecksumFailure)?;
            full.push((h, child.iter().copied().collect()));
        }
        transcript.record(Direction::AliceToBob, "full child sets (fallback)", &full);
        for (_, child) in full {
            recovered_children.push(child.into_iter().collect());
        }
    }

    // Assemble Bob's new parent set.
    let mut result = bob.clone();
    for child in bob_children.values() {
        result.remove(child);
    }
    for child in recovered_children {
        result.insert(child);
    }
    if result.parent_hash(seed) != parent_hash {
        return Err(ReconError::ChecksumFailure);
    }
    Ok(SosOutcome { recovered: result, stats: transcript.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_pair, WorkloadParams};

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(80, 20, 1 << 40);
        (w, SosParams::new(0xABCD, w.max_child_size))
    }

    #[test]
    fn identical_parent_sets_reconcile_in_one_round_of_hashes() {
        let (w, p) = params();
        let (alice, _) = generate_pair(&w, 0, 1);
        let outcome = run_known(&alice, &alice, 4, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn perturbed_parent_sets_reconcile_known_d() {
        let (w, p) = params();
        for d in [1usize, 4, 10, 24] {
            let (alice, bob) = generate_pair(&w, d, 60 + d as u64);
            let outcome = run_known(&alice, &bob, d, d, &p).unwrap();
            assert_eq!(outcome.recovered, alice, "d = {d}");
            assert!(outcome.stats.rounds >= 3, "d = {d}: {}", outcome.stats.rounds);
        }
    }

    #[test]
    fn unknown_d_adds_an_estimation_round() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 8, 5);
        let outcome = run_unknown(&alice, &bob, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 4);
    }

    #[test]
    fn child_patch_wire_roundtrip() {
        let charpoly = CharPolyProtocol::new(1);
        let set: std::collections::HashSet<u64> = (0..20).collect();
        let patches = vec![
            ChildPatch::Full { alice_hash: 7, child: vec![1, 2, 3] },
            ChildPatch::CharPoly {
                alice_hash: 9,
                target_hash: 11,
                digest: charpoly.digest(&set, 3).unwrap(),
            },
            ChildPatch::Iblt {
                alice_hash: 13,
                target_hash: 17,
                digest: IbltSetProtocol::new(2).digest(&set, 4),
            },
        ];
        let bytes = patches.to_bytes();
        assert_eq!(Vec::<ChildPatch>::from_bytes(&bytes).unwrap(), patches);
    }

    #[test]
    fn communication_is_dominated_by_small_per_child_payloads() {
        // For small d the per-child payloads are characteristic polynomials of a few
        // words each; the bulk of the cost is the hash IBLTs and estimators, so the
        // total should be well under what the naive protocol would pay (s·h words).
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 4, 17);
        let outcome = run_known(&alice, &bob, 4, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        let naive = crate::naive::run_known(&alice, &bob, 4, &p).unwrap();
        assert!(outcome.stats.total_bytes() < naive.stats.total_bytes());
    }

    #[test]
    fn whole_child_replacement_falls_back_to_full_transmission() {
        let (w, p) = params();
        let (alice, mut bob) = generate_pair(&w, 0, 29);
        let removed = bob.children()[0].clone();
        bob.remove(&removed);
        let replacement: ChildSet = (900_000_000u64..900_000_000 + 16).collect();
        bob.insert(replacement);
        let d = 40;
        let outcome = run_known(&alice, &bob, d, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }
}
