//! The multi-round set-of-sets protocol — Theorem 3.9 (known `d`, 3 rounds) and
//! Theorem 3.10 (unknown `d`, 4 rounds).
//!
//! Instead of nesting IBLTs, this protocol spends extra rounds to avoid paying
//! `log min(d, h)` factors:
//!
//! 1. *(unknown `d` only)* Bob sends an ℓ0 difference estimator over his child-set
//!    hashes so Alice can size the next step.
//! 2. **Alice → Bob**: an IBLT of her child-set hashes (`O(d̂)` cells). Bob subtracts
//!    his own hashes, learns which child sets differ on each side, and
//! 3. **Bob → Alice**: sends back his hash IBLT together with one small set
//!    difference estimator per differing child set.
//! 4. **Alice → Bob**: Alice identifies her own differing children, pairs each with
//!    the most similar of Bob's differing children (smallest estimated difference),
//!    and sends a per-child patch: an IBLT digest for children with larger estimated
//!    differences, or characteristic-polynomial evaluations for very small ones
//!    (Theorem 2.3 is exact, so tiny patches never need retries). Bob applies each
//!    patch to his matched child and swaps the results into his parent set.
//!
//! The driver adds a safety fallback the paper handles by replication: if a per-child
//! patch fails to verify (the estimator under-estimated), the child set is re-sent
//! verbatim. This keeps the driver always-correct; the extra bytes are charged to the
//! transcript so the measured communication honestly reflects the retry.

use crate::session;
use crate::types::{SetOfSets, SosOutcome, SosParams};
use recon_base::wire::{Decode, Encode, WireError};
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_protocol::SessionBuilder;
use recon_set::{CharPolyDigest, SetDigest};

/// A per-child patch sent by Alice in the final round.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildPatch {
    /// An IBLT set digest for the child (used when the estimated difference is
    /// large, Corollary 2.2).
    Iblt {
        /// Hash of Alice's child set (identifies the patch, lets Bob verify).
        alice_hash: u64,
        /// Hash of Bob's child set the patch should be applied to.
        target_hash: u64,
        /// The IBLT digest of Alice's child set.
        digest: SetDigest,
    },
    /// Characteristic-polynomial evaluations for the child (used for very small
    /// estimated differences, Theorem 2.3).
    CharPoly {
        /// Hash of Alice's child set.
        alice_hash: u64,
        /// Hash of Bob's child set the patch should be applied to.
        target_hash: u64,
        /// The characteristic-polynomial digest of Alice's child set.
        digest: CharPolyDigest,
    },
    /// The full child set, sent verbatim (fallback when an estimator badly
    /// under-estimated; also used for children with no plausible match).
    Full {
        /// Hash of Alice's child set.
        alice_hash: u64,
        /// The child set itself.
        child: Vec<u64>,
    },
}

impl Encode for ChildPatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ChildPatch::Iblt { alice_hash, target_hash, digest } => {
                buf.push(0);
                alice_hash.encode(buf);
                target_hash.encode(buf);
                digest.encode(buf);
            }
            ChildPatch::CharPoly { alice_hash, target_hash, digest } => {
                buf.push(1);
                alice_hash.encode(buf);
                target_hash.encode(buf);
                digest.encode(buf);
            }
            ChildPatch::Full { alice_hash, child } => {
                buf.push(2);
                alice_hash.encode(buf);
                child.encode(buf);
            }
        }
    }
}

impl Decode for ChildPatch {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ChildPatch::Iblt {
                alice_hash: u64::decode(buf)?,
                target_hash: u64::decode(buf)?,
                digest: SetDigest::decode(buf)?,
            }),
            1 => Ok(ChildPatch::CharPoly {
                alice_hash: u64::decode(buf)?,
                target_hash: u64::decode(buf)?,
                digest: CharPolyDigest::decode(buf)?,
            }),
            2 => Ok(ChildPatch::Full {
                alice_hash: u64::decode(buf)?,
                child: Vec::<u64>::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("child patch tag")),
        }
    }
}

/// Run the known-`d` multi-round protocol (Theorem 3.9): 3 rounds. Delegates to
/// the sans-I/O party pair of [`crate::session`] driven over an in-memory link.
pub fn run_known(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    SessionBuilder::new(params.seed).run(
        session::multiround_known_alice(alice, d, d_hat, params),
        session::multiround_known_bob(bob, params),
    )
}

/// Run the unknown-`d` multi-round protocol (Theorem 3.10): 4 rounds, the first of
/// which estimates the number of differing child sets.
pub fn run_unknown(
    alice: &SetOfSets,
    bob: &SetOfSets,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let builder = SessionBuilder::new(params.seed).estimator(L0Config::default());
    let estimator = builder.config().estimator;
    builder.run(
        session::multiround_unknown_alice(alice, params, estimator),
        session::multiround_unknown_bob(bob, params, estimator),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ChildSet;
    use crate::workload::{generate_pair, WorkloadParams};
    use recon_set::{CharPolyProtocol, IbltSetProtocol};

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(80, 20, 1 << 40);
        (w, SosParams::new(0xABCD, w.max_child_size))
    }

    #[test]
    fn identical_parent_sets_reconcile_in_one_round_of_hashes() {
        let (w, p) = params();
        let (alice, _) = generate_pair(&w, 0, 1);
        let outcome = run_known(&alice, &alice, 4, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn perturbed_parent_sets_reconcile_known_d() {
        let (w, p) = params();
        for d in [1usize, 4, 10, 24] {
            let (alice, bob) = generate_pair(&w, d, 60 + d as u64);
            let outcome = run_known(&alice, &bob, d, d, &p).unwrap();
            assert_eq!(outcome.recovered, alice, "d = {d}");
            assert!(outcome.stats.rounds >= 3, "d = {d}: {}", outcome.stats.rounds);
        }
    }

    #[test]
    fn unknown_d_adds_an_estimation_round() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 8, 5);
        let outcome = run_unknown(&alice, &bob, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        assert!(outcome.stats.rounds >= 4);
    }

    #[test]
    fn child_patch_wire_roundtrip() {
        let charpoly = CharPolyProtocol::new(1);
        let set: std::collections::HashSet<u64> = (0..20).collect();
        let patches = vec![
            ChildPatch::Full { alice_hash: 7, child: vec![1, 2, 3] },
            ChildPatch::CharPoly {
                alice_hash: 9,
                target_hash: 11,
                digest: charpoly.digest(&set, 3).unwrap(),
            },
            ChildPatch::Iblt {
                alice_hash: 13,
                target_hash: 17,
                digest: IbltSetProtocol::new(2).digest(&set, 4),
            },
        ];
        let bytes = patches.to_bytes();
        assert_eq!(Vec::<ChildPatch>::from_bytes(&bytes).unwrap(), patches);
    }

    #[test]
    fn communication_is_dominated_by_small_per_child_payloads() {
        // For small d the per-child payloads are characteristic polynomials of a few
        // words each; the bulk of the cost is the hash IBLTs and estimators, so the
        // total should be well under what the naive protocol would pay (s·h words).
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 4, 17);
        let outcome = run_known(&alice, &bob, 4, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
        let naive = crate::naive::run_known(&alice, &bob, 4, &p).unwrap();
        assert!(outcome.stats.total_bytes() < naive.stats.total_bytes());
    }

    #[test]
    fn whole_child_replacement_falls_back_to_full_transmission() {
        let (w, p) = params();
        let (alice, mut bob) = generate_pair(&w, 0, 29);
        let removed = bob.children()[0].clone();
        bob.remove(&removed);
        let replacement: ChildSet = (900_000_000u64..900_000_000 + 16).collect();
        bob.insert(replacement);
        let d = 40;
        let outcome = run_known(&alice, &bob, d, 4, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }
}
