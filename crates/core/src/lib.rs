//! # recon-sos — set-of-sets reconciliation
//!
//! The core contribution of *"Reconciling Graphs and Sets of Sets"* (Mitzenmacher &
//! Morgan, PODS 2018): Alice and Bob each hold a parent set of `s` child sets, each
//! child set has at most `h` elements from a universe of size `u`, the total size is
//! `n`, and the total number of element-level differences under the minimum
//! difference matching between their child sets is `d`. At the end of a (one-way)
//! protocol Bob holds Alice's set of sets.
//!
//! Four protocols are implemented, matching the paper's Section 3 and Table 1:
//!
//! | Module | Paper result | Rounds | Communication (bits) |
//! |--------|--------------|--------|-----------------------|
//! | [`naive`] | Thm 3.3 / 3.4 | 1 / 2 | `O(d̂ · min(h log u, u))` |
//! | [`iblt_of_iblts`] | Thm 3.5 / Cor 3.6 (Algorithm 1) | 1 / `O(log d)` | `O(d̂ d log u + d̂ log s)` |
//! | [`cascading`] | Thm 3.7 / Cor 3.8 (Algorithm 2) | 1 / `O(log d)` | `O(d log min(d,h) log u + d log s)` |
//! | [`multiround`] | Thm 3.9 / 3.10 | 3 / 4 | `O(d log u + d̂ log s + d̂ log h)` (up to log(1/δ) factors) |
//!
//! plus:
//!
//! * [`types`] — the [`SetOfSets`] data model, child hashes and parent hashes,
//! * [`matching`] — the exact (minimum-cost matching) and relaxed difference metrics
//!   the bounds are stated against,
//! * [`workload`] — random instance generation with ground-truth difference bounds,
//! * [`multiset_of_multisets`] — the Section 3.4 transformation to sets/multisets of
//!   multisets, used by the graph and forest protocols of `recon-graph`.
//!
//! ```
//! use recon_sos::{cascading, SosParams};
//! use recon_sos::workload::{generate_pair, WorkloadParams};
//!
//! // A database-like workload: 64 child sets of up to 16 elements, 6 changed cells.
//! let workload = WorkloadParams::new(64, 16, 1 << 30);
//! let (alice, bob) = generate_pair(&workload, 6, 42);
//!
//! let params = SosParams::new(7, workload.max_child_size);
//! let outcome = cascading::run_known(&alice, &bob, 6, &params).unwrap();
//! assert_eq!(outcome.recovered, alice);
//! println!("reconciled with {}", outcome.stats);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascading;
pub mod iblt_of_iblts;
pub mod matching;
pub mod multiround;
pub mod multiset_of_multisets;
pub mod naive;
pub mod session;
pub mod sharded;
pub mod types;
pub mod workload;

pub use matching::{child_difference, differing_children, matching_difference, relaxed_difference};
pub use multiset_of_multisets::{PairPacking, SetOfMultisets};
pub use recon_estimator::L0Config;
pub use sharded::{shard_set_of_sets, ShardedSosFamily};
pub use types::{ChildSet, SetOfSets, SosOutcome, SosParams};
