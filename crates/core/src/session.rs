//! Sans-I/O [`Party`] implementations of the set-of-sets protocols.
//!
//! Every protocol family of Section 3 is expressed as a pair of party state
//! machines: the one-round families (naive, IBLT-of-IBLTs, cascading) through the
//! generic amplification combinators of `recon-protocol`, the multi-round family
//! (Theorems 3.9/3.10) as bespoke machines. The pairs reproduce, message for
//! message, the transcripts of the legacy `run_known`/`run_unknown` drivers —
//! which now delegate here — and are what the graph schemes embed via
//! [`recon_protocol::Nested`].

use crate::cascading::CascadingProtocol;
use crate::iblt_of_iblts::IbltOfIbltsProtocol;
use crate::multiround::ChildPatch;
use crate::multiset_of_multisets::{PairPacking, SetOfMultisets};
use crate::naive::NaiveProtocol;
use crate::types::{ChildSet, SetOfSets, SosParams};
use recon_base::rng::split_seed;
use recon_base::ReconError;
use recon_estimator::{L0Config, L0Estimator, Side};
use recon_iblt::{Iblt, IbltConfig};
use recon_protocol::{
    Amplification, AmplifiedReceiver, AmplifiedSender, Deferred, Envelope, Exhaust, Party, Step,
    WithPreamble,
};
use recon_set::{CharPolyProtocol, IbltSetProtocol};
use std::collections::{BTreeMap, VecDeque};

/// Envelope tag: a one-round set-of-sets digest (any of the three families).
pub const TAG_SOS_DIGEST: u16 = 0x5051;
/// Envelope tag: an uncharged replica request.
pub const TAG_SOS_RETRY: u16 = 0x5052;
/// Envelope tag: the metered 1-byte NACK of the doubling protocols (Cor 3.6/3.8).
pub const TAG_SOS_NACK: u16 = 0x5053;
/// Envelope tag: a child-hash difference estimator (Theorems 3.4/3.10).
pub const TAG_SOS_ESTIMATOR: u16 = 0x5054;
/// Envelope tag: multi-round round 1, Alice's child-hash IBLT + parent hash.
pub const TAG_MR_HASHES: u16 = 0x5055;
/// Envelope tag: multi-round round 2, Bob's hash IBLT + per-child estimators.
pub const TAG_MR_ESTIMATORS: u16 = 0x5056;
/// Envelope tag: multi-round round 3, Alice's per-child patches.
pub const TAG_MR_PATCHES: u16 = 0x5057;
/// Envelope tag: multi-round fallback, Bob's patch failure report.
pub const TAG_MR_FAILURES: u16 = 0x5058;
/// Envelope tag: multi-round fallback, Alice's verbatim child sets.
pub const TAG_MR_FULL: u16 = 0x5059;

fn retry_all(_: &ReconError) -> bool {
    true
}

fn control_retry(_attempt: u64) -> Envelope {
    Envelope::control(TAG_SOS_RETRY, "retry request", &())
}

fn metered_nack(_attempt: u64) -> Envelope {
    Envelope::round(TAG_SOS_NACK, "NACK (double d)", &1u8)
}

// ---------------------------------------------------------------------------
// Naive protocol (Theorems 3.3 / 3.4)
// ---------------------------------------------------------------------------

/// Alice's side of Theorem 3.3 (naive SSRK, known bound on differing children).
pub fn naive_known_alice(
    sos: &SetOfSets,
    d_hat: usize,
    params: &SosParams,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedSender::new(amplification.max_attempts, move |attempt| {
        let attempt_params = SosParams { seed: params.role_seed(0xAA00 + attempt), ..params };
        let digest = NaiveProtocol::new(attempt_params).digest(&sos, d_hat);
        Ok(Envelope::round(TAG_SOS_DIGEST, "naive outer IBLT", &digest))
    })
}

/// Bob's side of Theorem 3.3.
pub fn naive_known_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> impl Party<Output = SetOfSets> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xAA00 + attempt), ..params };
            NaiveProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        control_retry,
        Exhaust::LastError,
    )
}

/// Alice's side of Theorem 3.4 (naive SSRU): waits for Bob's child-hash
/// estimator, then runs the known-bound protocol with a doubled-on-retry bound.
pub fn naive_unknown_alice(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
    estimator: L0Config,
) -> impl Party<Output = ()> {
    let sos = sos.clone();
    let params = *params;
    let estimator_cfg = estimator.with_seed(params.role_seed(0xAB));
    Deferred::new(move |envelope: Envelope| {
        let bob_estimator: L0Estimator = envelope.decode_payload()?;
        let mut alice_estimator = L0Estimator::new(&estimator_cfg);
        for h in sos.child_hashes(params.seed) {
            alice_estimator.update(h, Side::A);
        }
        let estimate = alice_estimator.merge(&bob_estimator)?.estimate();
        let base_d_hat = (estimate * 2).max(4);
        AmplifiedSender::new(amplification.max_attempts, move |attempt| {
            let attempt_params = SosParams { seed: params.role_seed(0xAC00 + attempt), ..params };
            let d_hat = base_d_hat << attempt;
            let digest = NaiveProtocol::new(attempt_params).digest(&sos, d_hat);
            Ok(Envelope::round(TAG_SOS_DIGEST, "naive outer IBLT", &digest))
        })
    })
}

/// Bob's side of Theorem 3.4: sends his estimator, then decodes digests.
pub fn naive_unknown_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
    estimator: L0Config,
) -> impl Party<Output = SetOfSets> {
    let estimator_cfg = estimator.with_seed(params.role_seed(0xAB));
    let mut bob_estimator = L0Estimator::new(&estimator_cfg);
    for h in sos.child_hashes(params.seed) {
        bob_estimator.update(h, Side::B);
    }
    let preamble =
        [Envelope::round(TAG_SOS_ESTIMATOR, "child-hash difference estimator", &bob_estimator)];

    let sos = sos.clone();
    let params = *params;
    let receiver = AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xAC00 + attempt), ..params };
            NaiveProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        control_retry,
        Exhaust::LastError,
    );
    WithPreamble::new(preamble, receiver)
}

// ---------------------------------------------------------------------------
// IBLT-of-IBLTs protocol (Theorem 3.5 / Corollary 3.6)
// ---------------------------------------------------------------------------

/// Alice's side of Theorem 3.5 (one-round SSRK, known `d` and `d_hat`).
pub fn ioi_known_alice(
    sos: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedSender::new(amplification.max_attempts, move |attempt| {
        let attempt_params = SosParams { seed: params.role_seed(0xBB00 + attempt), ..params };
        let digest = IbltOfIbltsProtocol::new(attempt_params).digest(&sos, d, d_hat);
        Ok(Envelope::round(TAG_SOS_DIGEST, "IBLT of child-IBLT encodings", &digest))
    })
}

/// Bob's side of Theorem 3.5.
pub fn ioi_known_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> impl Party<Output = SetOfSets> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xBB00 + attempt), ..params };
            IbltOfIbltsProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        control_retry,
        Exhaust::LastError,
    )
}

/// Alice's side of Corollary 3.6 (SSRU by repeated doubling `d = 1, 2, 4, …`).
/// `children_cap` bounds `d_hat` by the larger parent-set size — a universe
/// parameter both parties agree on out of band (the legacy driver computes it
/// from both inputs).
pub fn ioi_unknown_alice(
    sos: &SetOfSets,
    params: &SosParams,
    children_cap: usize,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedSender::new(amplification.max_attempts, move |attempt| {
        let attempt_params = SosParams { seed: params.role_seed(0xBC00 + attempt), ..params };
        let d = 1usize << attempt;
        let d_hat = d.min(children_cap.max(1));
        let digest = IbltOfIbltsProtocol::new(attempt_params).digest(&sos, d, d_hat);
        Ok(Envelope::round(TAG_SOS_DIGEST, "IBLT of child-IBLT encodings", &digest))
    })
}

/// Bob's side of Corollary 3.6: each failure is acknowledged with a metered
/// 1-byte NACK so the doubling is an explicit round of communication.
pub fn ioi_unknown_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> impl Party<Output = SetOfSets> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xBC00 + attempt), ..params };
            IbltOfIbltsProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        metered_nack,
        Exhaust::RetriesExhausted,
    )
}

// ---------------------------------------------------------------------------
// Cascading protocol (Theorem 3.7 / Corollary 3.8)
// ---------------------------------------------------------------------------

/// Alice's side of Theorem 3.7 (one-round SSRK via cascading IBLTs of IBLTs).
pub fn cascading_known_alice(
    sos: &SetOfSets,
    d: usize,
    params: &SosParams,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedSender::new(amplification.max_attempts, move |attempt| {
        let attempt_params = SosParams { seed: params.role_seed(0xCC00 + attempt), ..params };
        let digest = CascadingProtocol::new(attempt_params).digest(&sos, d);
        Ok(Envelope::round(TAG_SOS_DIGEST, "cascading IBLTs of IBLTs", &digest))
    })
}

/// Bob's side of Theorem 3.7.
pub fn cascading_known_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> impl Party<Output = SetOfSets> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xCC00 + attempt), ..params };
            CascadingProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        control_retry,
        Exhaust::LastError,
    )
}

/// Alice's side of Corollary 3.8 (SSRU by repeated doubling `d = 2, 4, 8, …`).
pub fn cascading_unknown_alice(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedSender::new(amplification.max_attempts, move |attempt| {
        let attempt_params = SosParams { seed: params.role_seed(0xCD00 + attempt), ..params };
        let d = 2usize << attempt;
        let digest = CascadingProtocol::new(attempt_params).digest(&sos, d);
        Ok(Envelope::round(TAG_SOS_DIGEST, "cascading IBLTs of IBLTs", &digest))
    })
}

/// Bob's side of Corollary 3.8.
pub fn cascading_unknown_bob(
    sos: &SetOfSets,
    params: &SosParams,
    amplification: Amplification,
) -> impl Party<Output = SetOfSets> {
    let sos = sos.clone();
    let params = *params;
    AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xCD00 + attempt), ..params };
            CascadingProtocol::new(attempt_params).reconcile(&envelope.decode_payload()?, &sos)
        },
        retry_all,
        metered_nack,
        Exhaust::RetriesExhausted,
    )
}

// ---------------------------------------------------------------------------
// Sets/multisets of multisets (Section 3.4)
// ---------------------------------------------------------------------------

/// Alice's side of the Section 3.4 adapter: pack the collection into a plain set
/// of sets and run the cascading protocol on it. `resolved_params` must carry the
/// agreed-on `max_child_size` covering both parties' *packed* children (the
/// legacy driver computes it from both inputs; see
/// [`crate::multiset_of_multisets::reconcile_known`]).
pub fn mom_known_alice(
    collection: &SetOfMultisets,
    d: usize,
    resolved_params: &SosParams,
    packing: &PairPacking,
    amplification: Amplification,
) -> Result<impl Party<Output = ()>, ReconError> {
    let packed = collection.to_set_of_sets(packing)?;
    let packed_d = 4 * d.max(1);
    cascading_known_alice(&packed, packed_d, resolved_params, amplification)
}

/// Bob's side of the Section 3.4 adapter: reconcile the packed set of sets, then
/// unpack the recovered collection.
pub fn mom_known_bob(
    collection: &SetOfMultisets,
    resolved_params: &SosParams,
    packing: &PairPacking,
    amplification: Amplification,
) -> Result<impl Party<Output = SetOfMultisets>, ReconError> {
    let packed = collection.to_set_of_sets(packing)?;
    let packing = *packing;
    let params = *resolved_params;
    Ok(AmplifiedReceiver::new(
        amplification.max_attempts,
        move |attempt, envelope: Envelope| {
            let attempt_params = SosParams { seed: params.role_seed(0xCC00 + attempt), ..params };
            let recovered = CascadingProtocol::new(attempt_params)
                .reconcile(&envelope.decode_payload()?, &packed)?;
            SetOfMultisets::from_set_of_sets(&recovered, &packing)
        },
        retry_all,
        control_retry,
        Exhaust::LastError,
    ))
}

// ---------------------------------------------------------------------------
// Multi-round protocol (Theorems 3.9 / 3.10)
// ---------------------------------------------------------------------------

/// Compact estimator configuration used for the per-child estimators of round 3
/// (`O(log(d̂/δ) log h)` bits per differing child).
fn child_estimator_config(seed: u64) -> L0Config {
    L0Config { reps: 5, levels: 20, buckets: 16, threshold: 8, seed }
}

fn hash_iblt_config(params: &SosParams) -> IbltConfig {
    IbltConfig::for_u64_keys(params.role_seed(0xD1))
}

fn hash_table(sos: &SetOfSets, d_hat: usize, params: &SosParams) -> Iblt {
    let mut table = Iblt::with_expected_diff((2 * d_hat).max(2), &hash_iblt_config(params));
    for h in sos.child_hashes(params.seed) {
        table.insert_u64(h);
    }
    table
}

/// Alice's state machine for Theorem 3.9 (the known-`d` multi-round protocol).
pub struct MultiroundAlice {
    sos: SetOfSets,
    params: SosParams,
    d: usize,
    alice_hash_table: Iblt,
    outbox: VecDeque<Envelope>,
}

/// Build Alice's side of Theorem 3.9.
pub fn multiround_known_alice(
    sos: &SetOfSets,
    d: usize,
    d_hat: usize,
    params: &SosParams,
) -> MultiroundAlice {
    let alice_hash_table = hash_table(sos, d_hat, params);
    let parent_hash = sos.parent_hash(params.seed);
    let mut outbox = VecDeque::new();
    outbox.push_back(Envelope::round(
        TAG_MR_HASHES,
        "child-hash IBLT",
        &(alice_hash_table.clone(), parent_hash),
    ));
    MultiroundAlice { sos: sos.clone(), params: *params, d, alice_hash_table, outbox }
}

impl Party for MultiroundAlice {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        let seed = self.params.seed;
        match envelope.tag {
            TAG_MR_ESTIMATORS => {
                let (bob_hash_table, bob_estimators): (Iblt, Vec<(u64, L0Estimator)>) =
                    envelope.decode_payload()?;
                let hash_diff = self.alice_hash_table.subtract(&bob_hash_table)?.into_decode();
                if !hash_diff.complete {
                    return Err(ReconError::PeelingFailure { remaining_cells: 0 });
                }
                let alice_differing: Vec<u64> = hash_diff.positive_u64();

                let charpoly_threshold = (self.d as f64).sqrt().ceil() as usize;
                let charpoly = CharPolyProtocol::new(self.params.role_seed(0xD4));
                let mut patches: Vec<ChildPatch> = Vec::new();
                for &ah in &alice_differing {
                    let child =
                        self.sos.child_by_hash(ah, seed).ok_or(ReconError::ChecksumFailure)?;
                    // Find the most similar of Bob's differing children by merged
                    // estimate.
                    let mut best: Option<(u64, usize)> = None;
                    for (bh, bob_est) in &bob_estimators {
                        let cfg =
                            child_estimator_config(split_seed(self.params.role_seed(0xD2), *bh));
                        let mut alice_side = L0Estimator::new(&cfg);
                        for &x in child {
                            alice_side.update(x, Side::A);
                        }
                        let estimate = alice_side.merge(bob_est)?.estimate();
                        if best.is_none_or(|(_, e)| estimate < e) {
                            best = Some((*bh, estimate));
                        }
                    }
                    let patch = match best {
                        None => ChildPatch::Full {
                            alice_hash: ah,
                            child: child.iter().copied().collect(),
                        },
                        Some((target_hash, estimate)) => {
                            let bound = (2 * estimate + 2).min(2 * child.len() + 2);
                            let elements_fit_charpoly =
                                child.iter().all(|&x| x < CharPolyProtocol::DEFAULT_UNIVERSE_BOUND);
                            if estimate < charpoly_threshold && elements_fit_charpoly {
                                ChildPatch::CharPoly {
                                    alice_hash: ah,
                                    target_hash,
                                    digest: charpoly.digest(child, bound)?,
                                }
                            } else {
                                let protocol = IbltSetProtocol::new(self.params.role_seed(0xD5));
                                ChildPatch::Iblt {
                                    alice_hash: ah,
                                    target_hash,
                                    digest: protocol.digest(child, bound),
                                }
                            }
                        }
                    };
                    patches.push(patch);
                }
                self.outbox.push_back(Envelope::round(
                    TAG_MR_PATCHES,
                    "per-child set reconciliation payloads",
                    &patches,
                ));
                Ok(Step::Continue)
            }
            TAG_MR_FAILURES => {
                let fallback_needed: Vec<u64> = envelope.decode_payload()?;
                let mut full: Vec<(u64, Vec<u64>)> = Vec::new();
                for &h in &fallback_needed {
                    let child =
                        self.sos.child_by_hash(h, seed).ok_or(ReconError::ChecksumFailure)?;
                    full.push((h, child.iter().copied().collect()));
                }
                self.outbox.push_back(Envelope::round(
                    TAG_MR_FULL,
                    "full child sets (fallback)",
                    &full,
                ));
                Ok(Step::Continue)
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for multi-round Alice",
                envelope.tag
            ))),
        }
    }
}

/// Bob's state machine for Theorem 3.9.
pub struct MultiroundBob {
    sos: SetOfSets,
    params: SosParams,
    parent_hash: u64,
    bob_children: BTreeMap<u64, ChildSet>,
    recovered_children: Vec<ChildSet>,
    outbox: VecDeque<Envelope>,
}

/// Build Bob's side of Theorem 3.9. Bob sizes his child-hash IBLT to mirror the
/// table Alice sends, so he needs no prior difference bound of his own.
pub fn multiround_known_bob(sos: &SetOfSets, params: &SosParams) -> MultiroundBob {
    MultiroundBob {
        sos: sos.clone(),
        params: *params,
        parent_hash: 0,
        bob_children: BTreeMap::new(),
        recovered_children: Vec::new(),
        outbox: VecDeque::new(),
    }
}

impl MultiroundBob {
    fn finish(&mut self) -> Result<SetOfSets, ReconError> {
        let mut result = self.sos.clone();
        for child in self.bob_children.values() {
            result.remove(child);
        }
        for child in self.recovered_children.drain(..) {
            result.insert(child);
        }
        if result.parent_hash(self.params.seed) != self.parent_hash {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(result)
    }
}

impl Party for MultiroundBob {
    type Output = SetOfSets;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<SetOfSets>, ReconError> {
        let seed = self.params.seed;
        match envelope.tag {
            TAG_MR_HASHES => {
                let (alice_hash_table, parent_hash): (Iblt, u64) = envelope.decode_payload()?;
                self.parent_hash = parent_hash;
                // Mirror Alice's table size so the tables subtract cell-for-cell.
                let cfg = hash_iblt_config(&self.params);
                let mut bob_hash_table = Iblt::with_cells(alice_hash_table.cells(), &cfg);
                for h in self.sos.child_hashes(seed) {
                    bob_hash_table.insert_u64(h);
                }
                let hash_diff = alice_hash_table.subtract(&bob_hash_table)?.into_decode();
                if !hash_diff.complete {
                    return Err(ReconError::PeelingFailure { remaining_cells: 0 });
                }
                let bob_differing: Vec<u64> = hash_diff.negative_u64();

                let mut bob_estimators: Vec<(u64, L0Estimator)> = Vec::new();
                for &h in &bob_differing {
                    let child =
                        self.sos.child_by_hash(h, seed).ok_or(ReconError::ChecksumFailure)?.clone();
                    let cfg = child_estimator_config(split_seed(self.params.role_seed(0xD2), h));
                    let mut est = L0Estimator::new(&cfg);
                    for &x in &child {
                        est.update(x, Side::B);
                    }
                    bob_estimators.push((h, est));
                    self.bob_children.insert(h, child);
                }
                self.outbox.push_back(Envelope::round(
                    TAG_MR_ESTIMATORS,
                    "child-hash IBLT + per-child estimators",
                    &(bob_hash_table, bob_estimators),
                ));
                Ok(Step::Continue)
            }
            TAG_MR_PATCHES => {
                let patches: Vec<ChildPatch> = envelope.decode_payload()?;
                let iblt_protocol = IbltSetProtocol::new(self.params.role_seed(0xD5));
                let charpoly = CharPolyProtocol::new(self.params.role_seed(0xD4));
                let mut fallback_needed: Vec<u64> = Vec::new();
                for patch in &patches {
                    match patch {
                        ChildPatch::Full { child, .. } => {
                            self.recovered_children.push(child.iter().copied().collect());
                        }
                        ChildPatch::Iblt { alice_hash, target_hash, digest } => {
                            let target = self
                                .bob_children
                                .get(target_hash)
                                .ok_or(ReconError::ChecksumFailure)?;
                            let target_set = target.iter().copied().collect();
                            match iblt_protocol.reconcile(digest, &target_set) {
                                Ok(rec)
                                    if SetOfSets::child_hash(
                                        &rec.iter().copied().collect(),
                                        seed,
                                    ) == *alice_hash =>
                                {
                                    self.recovered_children.push(rec.into_iter().collect());
                                }
                                _ => fallback_needed.push(*alice_hash),
                            }
                        }
                        ChildPatch::CharPoly { alice_hash, target_hash, digest } => {
                            let target = self
                                .bob_children
                                .get(target_hash)
                                .ok_or(ReconError::ChecksumFailure)?;
                            let target_set = target.iter().copied().collect();
                            match charpoly.reconcile(digest, &target_set) {
                                Ok(rec)
                                    if SetOfSets::child_hash(
                                        &rec.iter().copied().collect(),
                                        seed,
                                    ) == *alice_hash =>
                                {
                                    self.recovered_children.push(rec.into_iter().collect());
                                }
                                _ => fallback_needed.push(*alice_hash),
                            }
                        }
                    }
                }
                if fallback_needed.is_empty() {
                    return Ok(Step::Done(self.finish()?));
                }
                // Rare: an estimator under-shot and a patch failed verification. Ask
                // for those children verbatim; counted honestly against the budget.
                self.outbox.push_back(Envelope::round(
                    TAG_MR_FAILURES,
                    "patch failure report",
                    &fallback_needed,
                ));
                Ok(Step::Continue)
            }
            TAG_MR_FULL => {
                let full: Vec<(u64, Vec<u64>)> = envelope.decode_payload()?;
                for (_, child) in full {
                    self.recovered_children.push(child.into_iter().collect());
                }
                Ok(Step::Done(self.finish()?))
            }
            _ => Err(ReconError::InvalidInput(format!(
                "unexpected envelope tag {:#x} for multi-round Bob",
                envelope.tag
            ))),
        }
    }
}

/// Alice's side of Theorem 3.10 (unknown `d`): round 0 receives Bob's child-hash
/// estimator, from which `d_hat` (and the per-child budget `d = d_hat · h`) is
/// derived before the Theorem 3.9 machine starts.
pub fn multiround_unknown_alice(
    sos: &SetOfSets,
    params: &SosParams,
    estimator: L0Config,
) -> impl Party<Output = ()> {
    let sos = sos.clone();
    let params = *params;
    let estimator_cfg = estimator.with_seed(params.role_seed(0xD0));
    Deferred::new(move |envelope: Envelope| {
        let bob_estimator: L0Estimator = envelope.decode_payload()?;
        let mut alice_estimator = L0Estimator::new(&estimator_cfg);
        for h in sos.child_hashes(params.seed) {
            alice_estimator.update(h, Side::A);
        }
        let d_hat = (alice_estimator.merge(&bob_estimator)?.estimate() * 2).max(4);
        // With d unknown, use the generous per-child budget d = d̂ · h as the switch
        // point between the IBLT and charpoly branches; the per-child estimators of
        // round 3 provide the real per-child bounds.
        let d = d_hat * params.max_child_size;
        Ok(multiround_known_alice(&sos, d, d_hat, &params))
    })
}

/// Bob's side of Theorem 3.10: sends his child-hash estimator, then runs the
/// Theorem 3.9 machine.
pub fn multiround_unknown_bob(
    sos: &SetOfSets,
    params: &SosParams,
    estimator: L0Config,
) -> impl Party<Output = SetOfSets> {
    let estimator_cfg = estimator.with_seed(params.role_seed(0xD0));
    let mut bob_estimator = L0Estimator::new(&estimator_cfg);
    for h in sos.child_hashes(params.seed) {
        bob_estimator.update(h, Side::B);
    }
    let preamble =
        [Envelope::round(TAG_SOS_ESTIMATOR, "child-hash difference estimator", &bob_estimator)];
    WithPreamble::new(preamble, multiround_known_bob(sos, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_pair, WorkloadParams};
    use recon_protocol::SessionBuilder;

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(64, 12, 1 << 20);
        (w, SosParams::new(0x5E55, w.max_child_size))
    }

    #[test]
    fn all_known_d_families_recover_through_a_session() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 6, 7);
        let builder = SessionBuilder::new(p.seed);

        let naive = builder
            .run(
                naive_known_alice(&alice, 6, &p, Amplification::replicate(3)).unwrap(),
                naive_known_bob(&bob, &p, Amplification::replicate(3)),
            )
            .unwrap();
        assert_eq!(naive.recovered, alice);
        assert_eq!(naive.stats.rounds, 1);

        let ioi = builder
            .run(
                ioi_known_alice(&alice, 6, 6, &p, Amplification::replicate(3)).unwrap(),
                ioi_known_bob(&bob, &p, Amplification::replicate(3)),
            )
            .unwrap();
        assert_eq!(ioi.recovered, alice);

        let cascade = builder
            .run(
                cascading_known_alice(&alice, 6, &p, Amplification::replicate(4)).unwrap(),
                cascading_known_bob(&bob, &p, Amplification::replicate(4)),
            )
            .unwrap();
        assert_eq!(cascade.recovered, alice);

        let multi = builder
            .run(multiround_known_alice(&alice, 6, 6, &p), multiround_known_bob(&bob, &p))
            .unwrap();
        assert_eq!(multi.recovered, alice);
        assert!(multi.stats.rounds >= 3);
    }

    #[test]
    fn unknown_d_families_recover_through_a_session() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 5, 11);
        let builder = SessionBuilder::new(p.seed);
        let est = L0Config::default();

        let naive = builder
            .run(
                naive_unknown_alice(&alice, &p, Amplification::replicate(5), est),
                naive_unknown_bob(&bob, &p, Amplification::replicate(5), est),
            )
            .unwrap();
        assert_eq!(naive.recovered, alice);
        assert!(naive.stats.rounds >= 2);

        let max_possible = alice.total_elements() + bob.total_elements() + 2;
        let doubling = Amplification::doubling(1, 2 * max_possible);
        let cap = alice.num_children().max(bob.num_children()).max(1);
        let ioi = builder
            .run(
                ioi_unknown_alice(&alice, &p, cap, doubling).unwrap(),
                ioi_unknown_bob(&bob, &p, doubling),
            )
            .unwrap();
        assert_eq!(ioi.recovered, alice);

        let doubling2 = Amplification::doubling(2, 2 * max_possible);
        let cascade = builder
            .run(
                cascading_unknown_alice(&alice, &p, doubling2).unwrap(),
                cascading_unknown_bob(&bob, &p, doubling2),
            )
            .unwrap();
        assert_eq!(cascade.recovered, alice);

        let multi = builder
            .run(multiround_unknown_alice(&alice, &p, est), multiround_unknown_bob(&bob, &p, est))
            .unwrap();
        assert_eq!(multi.recovered, alice);
        assert!(multi.stats.rounds >= 4);
    }
}
