//! The set-of-sets data model shared by every protocol in this crate.
//!
//! Alice and Bob each hold a *parent set* of at most `s` *child sets*, each child set
//! containing at most `h` elements from a universe of size `u`; the total size is
//! `n = Σ |child|` (Section 3 of the paper). [`SetOfSets`] is that object, with the
//! helpers the protocols need: canonical child encodings, per-child hashes, and the
//! parent hash used to verify end-to-end recovery.

use recon_base::hash::hash_u64_set;
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use std::collections::BTreeSet;

/// A child set: a set of 64-bit universe elements, stored sorted so that encodings
/// and hashes are canonical.
pub type ChildSet = BTreeSet<u64>;

/// A parent set of child sets.
///
/// The paper treats the parent as a *set* of child sets; this type therefore assumes
/// the child sets are pairwise distinct (duplicates are deduplicated on
/// construction). Child order carries no meaning — all hashes and encodings are
/// order-independent — but a deterministic iteration order (sorted) is kept so runs
/// are reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SetOfSets {
    children: Vec<ChildSet>,
}

impl SetOfSets {
    /// Create an empty parent set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of child sets (deduplicating and sorting for a
    /// canonical representation).
    pub fn from_children<I>(children: I) -> Self
    where
        I: IntoIterator<Item = ChildSet>,
    {
        let set: BTreeSet<ChildSet> = children.into_iter().collect();
        Self { children: set.into_iter().collect() }
    }

    /// Add a child set (ignored if an identical child set is already present).
    pub fn insert(&mut self, child: ChildSet) -> bool {
        match self.children.binary_search(&child) {
            Ok(_) => false,
            Err(pos) => {
                self.children.insert(pos, child);
                true
            }
        }
    }

    /// Remove a child set; returns `true` if it was present.
    pub fn remove(&mut self, child: &ChildSet) -> bool {
        match self.children.binary_search(child) {
            Ok(pos) => {
                self.children.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// `true` if the given child set is present.
    pub fn contains(&self, child: &ChildSet) -> bool {
        self.children.binary_search(child).is_ok()
    }

    /// Number of child sets (`s`).
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    /// Maximum child-set size (`h`); 0 for an empty parent set.
    pub fn max_child_size(&self) -> usize {
        self.children.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Total number of elements across all child sets (`n`).
    pub fn total_elements(&self) -> usize {
        self.children.iter().map(BTreeSet::len).sum()
    }

    /// `true` when there are no child sets.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Iterate over the child sets in canonical (sorted) order.
    pub fn children(&self) -> &[ChildSet] {
        &self.children
    }

    /// Hash of one child set under the shared seed (the `O(log s)`-bit pairwise
    /// independent child hash of Algorithms 1 and 2, realized as 64 bits).
    pub fn child_hash(child: &ChildSet, seed: u64) -> u64 {
        hash_u64_set(child.iter().copied(), split_seed(seed, 0xC41D))
    }

    /// Hashes of all child sets, in the same order as [`SetOfSets::children`].
    pub fn child_hashes(&self, seed: u64) -> Vec<u64> {
        self.children.iter().map(|c| Self::child_hash(c, seed)).collect()
    }

    /// Order-independent hash of the whole parent set, used by the multi-attempt
    /// protocols to verify that Bob recovered Alice's set of sets exactly
    /// ("Alice can send Bob a hash of her whole set of sets", Section 3.2).
    pub fn parent_hash(&self, seed: u64) -> u64 {
        hash_u64_set(self.child_hashes(seed), split_seed(seed, 0xFA7E))
    }

    /// Find a child set by its hash (linear scan; the protocols only do this for the
    /// `O(d̂)` differing children).
    pub fn child_by_hash(&self, hash: u64, seed: u64) -> Option<&ChildSet> {
        self.children.iter().find(|c| Self::child_hash(c, seed) == hash)
    }

    /// Canonical fixed-width byte encoding of a child set: element count followed by
    /// the sorted elements, zero-padded to `max_size` element slots. This is the
    /// "treat each child set as an item from a universe of size `Σ C(u, i)`" encoding
    /// of the naive protocol (Theorem 3.3) and of the fallback table `T_*` in
    /// Algorithm 2.
    pub fn encode_child_fixed(child: &ChildSet, max_size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 8 * max_size);
        Self::encode_child_fixed_into(child, max_size, &mut out);
        out
    }

    /// [`SetOfSets::encode_child_fixed`] into a caller-provided buffer (cleared
    /// first), so bulk encoders can reuse one allocation across all children.
    pub fn encode_child_fixed_into(child: &ChildSet, max_size: usize, out: &mut Vec<u8>) {
        assert!(
            child.len() <= max_size,
            "child set of size {} exceeds the fixed encoding width {max_size}",
            child.len()
        );
        out.clear();
        out.extend_from_slice(&(child.len() as u16).to_le_bytes());
        for &x in child {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.resize(2 + 8 * max_size, 0);
    }

    /// Inverse of [`SetOfSets::encode_child_fixed`].
    pub fn decode_child_fixed(bytes: &[u8]) -> Option<ChildSet> {
        if bytes.len() < 2 {
            return None;
        }
        let count = u16::from_le_bytes(bytes[..2].try_into().ok()?) as usize;
        if bytes.len() < 2 + 8 * count {
            return None;
        }
        let mut child = ChildSet::new();
        for i in 0..count {
            let start = 2 + 8 * i;
            let x = u64::from_le_bytes(bytes[start..start + 8].try_into().ok()?);
            child.insert(x);
        }
        // Padding must be all zeros, otherwise the bytes were not a valid encoding.
        if bytes[2 + 8 * count..].iter().any(|&b| b != 0) {
            return None;
        }
        if child.len() != count {
            return None;
        }
        Some(child)
    }
}

impl FromIterator<ChildSet> for SetOfSets {
    fn from_iter<T: IntoIterator<Item = ChildSet>>(iter: T) -> Self {
        Self::from_children(iter)
    }
}

impl Encode for SetOfSets {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.children.len() as u64);
        for child in &self.children {
            write_uvarint(buf, child.len() as u64);
            for &x in child {
                x.encode(buf);
            }
        }
    }
}

impl Decode for SetOfSets {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let s = read_uvarint(buf)? as usize;
        if s > buf.len() {
            return Err(WireError::Invalid("set-of-sets child count"));
        }
        let mut children = Vec::with_capacity(s);
        for _ in 0..s {
            let len = read_uvarint(buf)? as usize;
            if len.saturating_mul(8) > buf.len() {
                return Err(WireError::Invalid("child set length"));
            }
            let mut child = ChildSet::new();
            for _ in 0..len {
                child.insert(u64::decode(buf)?);
            }
            children.push(child);
        }
        Ok(SetOfSets::from_children(children))
    }
}

/// Shared protocol parameters for the set-of-sets protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SosParams {
    /// Public-coin seed shared by Alice and Bob.
    pub seed: u64,
    /// Maximum child-set size `h` the encodings must accommodate (a universe
    /// parameter both parties know).
    pub max_child_size: usize,
}

impl SosParams {
    /// Create parameters from a seed and the universe bound on child-set size.
    pub fn new(seed: u64, max_child_size: usize) -> Self {
        Self { seed, max_child_size: max_child_size.max(1) }
    }

    /// Derive a sub-seed for a protocol role.
    pub fn role_seed(&self, role: u64) -> u64 {
        split_seed(self.seed, role)
    }
}

/// The result of a locally-driven set-of-sets reconciliation: Bob's recovered copy
/// of Alice's parent set plus the measured communication.
pub type SosOutcome = recon_protocol::Outcome<SetOfSets>;

#[cfg(test)]
mod tests {
    use super::*;

    fn child(values: &[u64]) -> ChildSet {
        values.iter().copied().collect()
    }

    #[test]
    fn construction_deduplicates_and_sorts() {
        let sos = SetOfSets::from_children([child(&[3, 1]), child(&[1, 3]), child(&[5])]);
        assert_eq!(sos.num_children(), 2);
        assert!(sos.contains(&child(&[1, 3])));
        assert!(sos.contains(&child(&[5])));
    }

    #[test]
    fn insert_and_remove() {
        let mut sos = SetOfSets::new();
        assert!(sos.insert(child(&[1, 2])));
        assert!(!sos.insert(child(&[2, 1])), "duplicate must be rejected");
        assert_eq!(sos.num_children(), 1);
        assert!(sos.remove(&child(&[1, 2])));
        assert!(!sos.remove(&child(&[1, 2])));
        assert!(sos.is_empty());
    }

    #[test]
    fn size_accessors() {
        let sos = SetOfSets::from_children([child(&[1, 2, 3]), child(&[9]), child(&[4, 5])]);
        assert_eq!(sos.num_children(), 3);
        assert_eq!(sos.max_child_size(), 3);
        assert_eq!(sos.total_elements(), 6);
    }

    #[test]
    fn child_hash_is_content_based() {
        let a = child(&[1, 2, 3]);
        let b = child(&[3, 2, 1]);
        let c = child(&[1, 2, 4]);
        assert_eq!(SetOfSets::child_hash(&a, 7), SetOfSets::child_hash(&b, 7));
        assert_ne!(SetOfSets::child_hash(&a, 7), SetOfSets::child_hash(&c, 7));
        assert_ne!(SetOfSets::child_hash(&a, 7), SetOfSets::child_hash(&a, 8));
    }

    #[test]
    fn parent_hash_detects_any_change() {
        let sos = SetOfSets::from_children([child(&[1, 2]), child(&[3])]);
        let mut changed = sos.clone();
        changed.remove(&child(&[3]));
        changed.insert(child(&[3, 4]));
        assert_ne!(sos.parent_hash(5), changed.parent_hash(5));
        assert_eq!(sos.parent_hash(5), sos.clone().parent_hash(5));
    }

    #[test]
    fn child_by_hash_finds_children() {
        let sos = SetOfSets::from_children([child(&[1, 2]), child(&[3])]);
        let h = SetOfSets::child_hash(&child(&[3]), 9);
        assert_eq!(sos.child_by_hash(h, 9), Some(&child(&[3])));
        assert_eq!(sos.child_by_hash(h ^ 1, 9), None);
    }

    #[test]
    fn fixed_encoding_roundtrips() {
        for c in [child(&[]), child(&[7]), child(&[1, 2, 3, u64::MAX])] {
            let bytes = SetOfSets::encode_child_fixed(&c, 6);
            assert_eq!(bytes.len(), 2 + 8 * 6);
            assert_eq!(SetOfSets::decode_child_fixed(&bytes), Some(c));
        }
    }

    #[test]
    fn fixed_encoding_rejects_garbage() {
        assert_eq!(SetOfSets::decode_child_fixed(&[]), None);
        // Claims 3 elements but provides bytes for only 1.
        let mut bytes = vec![3, 0];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(SetOfSets::decode_child_fixed(&bytes), None);
        // Non-zero padding.
        let mut bytes = SetOfSets::encode_child_fixed(&child(&[1]), 4);
        *bytes.last_mut().unwrap() = 1;
        assert_eq!(SetOfSets::decode_child_fixed(&bytes), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the fixed encoding width")]
    fn fixed_encoding_enforces_max_size() {
        let _ = SetOfSets::encode_child_fixed(&child(&[1, 2, 3]), 2);
    }

    #[test]
    fn wire_roundtrip() {
        let sos = SetOfSets::from_children([child(&[1, 2]), child(&[3, 4, 5]), child(&[])]);
        let bytes = sos.to_bytes();
        assert_eq!(SetOfSets::from_bytes(&bytes).unwrap(), sos);
    }

    #[test]
    fn params_derive_distinct_role_seeds() {
        let p = SosParams::new(3, 10);
        assert_ne!(p.role_seed(1), p.role_seed(2));
        assert_eq!(p.max_child_size, 10);
        assert_eq!(SosParams::new(3, 0).max_child_size, 1);
    }
}
