//! The cascading IBLTs-of-IBLTs protocol — Algorithm 2, Theorem 3.7 (known `d`) and
//! Corollary 3.8 (unknown `d`).
//!
//! The plain IBLT-of-IBLTs protocol sizes *every* child IBLT for the full per-child
//! bound `d`, even though only `O(1)` child sets can actually have `Ω(d)` changes,
//! `O(√d)` can have `Ω(√d)` changes, and so on. Algorithm 2 exploits this by sending
//! a *cascade* of outer tables `T_1, …, T_t` (`t = log₂ min(d, h)`): level `i` uses
//! child IBLTs with `O(2^i)` cells but an outer table with only `O(d / 2^i)` cells.
//! Children with small differences are recovered at the cheap early levels and
//! *deleted* from the later tables, so each level only has to carry the children
//! whose differences are too large for the previous levels. If `d ≥ h` a final table
//! `T_*` of full fixed-width child encodings catches the stragglers. Communication
//! drops to `O(d log min(d, h) log u + d log s)` bits, still in one round.

use crate::session;
use crate::types::{ChildSet, SetOfSets, SosOutcome, SosParams};
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use recon_iblt::{Iblt, IbltConfig};
use recon_protocol::{Amplification, SessionBuilder};
use std::collections::BTreeMap;

/// Alice's one-round message: the cascade of outer tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadingDigest {
    /// The total element-difference bound `d` the cascade was sized for.
    pub diff_bound: usize,
    /// Outer tables `T_1, …, T_t`; level `i` (1-based) carries child IBLTs with
    /// `O(2^i)` cells.
    pub levels: Vec<Iblt>,
    /// The fallback table `T_*` of full child encodings, present when `d ≥ h`.
    pub fallback: Option<Iblt>,
    /// Hash of Alice's whole parent set, for end-to-end verification.
    pub parent_hash: u64,
    /// Number of child sets Alice holds.
    pub num_children: u64,
}

impl Encode for CascadingDigest {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.diff_bound as u64);
        self.levels.encode(buf);
        self.fallback.encode(buf);
        self.parent_hash.encode(buf);
        self.num_children.encode(buf);
    }
}

impl Decode for CascadingDigest {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CascadingDigest {
            diff_bound: read_uvarint(buf)? as usize,
            levels: Vec::<Iblt>::decode(buf)?,
            fallback: Option::<Iblt>::decode(buf)?,
            parent_hash: u64::decode(buf)?,
            num_children: u64::decode(buf)?,
        })
    }
}

/// The cascading IBLTs-of-IBLTs protocol (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadingProtocol {
    params: SosParams,
}

impl CascadingProtocol {
    /// Create a protocol instance from shared parameters.
    pub fn new(params: SosParams) -> Self {
        Self { params }
    }

    /// Number of cascade levels for a difference bound `d`:
    /// `t = max(1, ceil(log₂ min(d, h)))`.
    pub fn num_levels(&self, d: usize) -> usize {
        let cap = d.min(self.params.max_child_size).max(2);
        (usize::BITS - (cap - 1).leading_zeros()) as usize
    }

    /// `true` if the cascade needs the fallback table `T_*` (the levels stop at `h`
    /// because `d ≥ h`).
    pub fn needs_fallback(&self, d: usize) -> bool {
        d >= self.params.max_child_size
    }

    fn child_config(&self, level: usize) -> IbltConfig {
        IbltConfig::for_u64_keys(self.params.role_seed(0xC100 + level as u64))
            .with_cells_per_diff(2.0)
            .with_min_cells(8)
    }

    fn level_child_cells(&self, level: usize) -> usize {
        self.child_config(level).cells_for(1usize << level)
    }

    fn level_encoding_bytes(&self, level: usize) -> usize {
        self.child_config(level).serialized_len(self.level_child_cells(level)) + 8
    }

    fn level_outer_config(&self, level: usize) -> IbltConfig {
        IbltConfig::for_key_bytes(
            self.level_encoding_bytes(level),
            self.params.role_seed(0xC200 + level as u64),
        )
        .with_min_cells(12)
    }

    fn fallback_config(&self) -> IbltConfig {
        IbltConfig::for_key_bytes(2 + 8 * self.params.max_child_size, self.params.role_seed(0xC300))
            .with_min_cells(12)
    }

    /// An empty child table of level `level`'s geometry, reusable across children
    /// via [`Iblt::clear`].
    fn level_scratch(&self, level: usize) -> Iblt {
        Iblt::with_cells(self.level_child_cells(level), &self.child_config(level))
    }

    /// Encode one child set at a cascade level into `out`, reusing `scratch` as
    /// the child table (both are cleared first; no per-child allocation).
    fn encode_child_at_level_into(&self, child: &ChildSet, scratch: &mut Iblt, out: &mut Vec<u8>) {
        scratch.clear();
        for &x in child {
            scratch.insert_u64(x);
        }
        out.clear();
        scratch.encode(out);
        out.extend_from_slice(&SetOfSets::child_hash(child, self.params.seed).to_le_bytes());
    }

    fn split_encoding(encoding: &[u8]) -> Result<(Iblt, u64), ReconError> {
        if encoding.len() < 8 {
            return Err(ReconError::ChecksumFailure);
        }
        let (iblt_bytes, hash_bytes) = encoding.split_at(encoding.len() - 8);
        let table = Iblt::from_bytes(iblt_bytes).map_err(ReconError::Wire)?;
        let hash = u64::from_le_bytes(hash_bytes.try_into().expect("8 bytes"));
        Ok((table, hash))
    }

    /// Number of outer cells at cascade level `i` (1-based): `O(d / 2^i)`, with the
    /// first level sized for all `≤ 2d` differing encodings.
    fn level_outer_cells(&self, d: usize, level: usize) -> usize {
        let expected = if level == 1 { 2 * d } else { (2 * d) >> (level - 1) };
        self.level_outer_config(level).cells_for(expected.max(4))
    }

    /// Alice's side: build the cascade digest for total element-difference bound `d`.
    pub fn digest(&self, sos: &SetOfSets, d: usize) -> CascadingDigest {
        let d = d.max(1);
        let t = self.num_levels(d);
        let mut levels = Vec::with_capacity(t);
        for level in 1..=t {
            let mut outer =
                Iblt::with_cells(self.level_outer_cells(d, level), &self.level_outer_config(level));
            let mut scratch = self.level_scratch(level);
            let mut encoding = Vec::with_capacity(self.level_encoding_bytes(level));
            for child in sos.children() {
                self.encode_child_at_level_into(child, &mut scratch, &mut encoding);
                outer.insert(&encoding);
            }
            levels.push(outer);
        }
        let fallback = if self.needs_fallback(d) {
            let expected = (2 * d / self.params.max_child_size).max(4);
            let mut table = Iblt::with_expected_diff(expected, &self.fallback_config());
            let mut key = Vec::with_capacity(2 + 8 * self.params.max_child_size);
            for child in sos.children() {
                SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
                table.insert(&key);
            }
            Some(table)
        } else {
            None
        };
        CascadingDigest {
            diff_bound: d,
            levels,
            fallback,
            parent_hash: sos.parent_hash(self.params.seed),
            num_children: sos.num_children() as u64,
        }
    }

    /// Bob's side: recover Alice's parent set from the cascade.
    pub fn reconcile(
        &self,
        digest: &CascadingDigest,
        local: &SetOfSets,
    ) -> Result<SetOfSets, ReconError> {
        let t = digest.levels.len();
        if t == 0 {
            return Err(ReconError::InvalidInput("cascade with no levels".to_string()));
        }

        // D_B: Bob's differing children, keyed by hash. Discovered at level 1.
        let mut differing_local: BTreeMap<u64, ChildSet> = BTreeMap::new();
        // D_A: Alice's recovered children, keyed by their child hash.
        let mut recovered: BTreeMap<u64, ChildSet> = BTreeMap::new();
        // Alice's differing child hashes seen so far but not yet recovered.
        let mut pending: BTreeMap<u64, ()> = BTreeMap::new();

        for (idx, outer) in digest.levels.iter().enumerate() {
            let level = idx + 1;
            let mut table = outer.clone();
            let mut scratch = self.level_scratch(level);
            let mut encoding = Vec::with_capacity(self.level_encoding_bytes(level));
            for child in local.children() {
                let hash = SetOfSets::child_hash(child, self.params.seed);
                if level > 1 && differing_local.contains_key(&hash) {
                    continue; // keep D_B out of the later tables (Algorithm 2, step i>1)
                }
                self.encode_child_at_level_into(child, &mut scratch, &mut encoding);
                table.delete(&encoding);
            }
            if level > 1 {
                for child in recovered.values() {
                    self.encode_child_at_level_into(child, &mut scratch, &mut encoding);
                    table.delete(&encoding);
                }
            }
            let decoded = table.decode_in_place();
            // Partial decodes are fine mid-cascade: later levels and the fallback
            // table will catch what this level missed.

            if level == 1 {
                for encoding in &decoded.negative {
                    let (_, hash_b) = Self::split_encoding(encoding)?;
                    if let Some(child) = local.child_by_hash(hash_b, self.params.seed) {
                        differing_local.insert(hash_b, child.clone());
                    }
                }
            }

            // A child with no counterpart on Bob's side is also tried against the
            // empty set, so brand-new children are recoverable once a level's child
            // IBLTs are big enough to hold them outright.
            let empty_child = ChildSet::new();
            let mut candidate_children: Vec<&ChildSet> = differing_local.values().collect();
            candidate_children.push(&empty_child);
            for encoding in &decoded.positive {
                let (table_a, hash_a) = Self::split_encoding(encoding)?;
                if recovered.contains_key(&hash_a) {
                    continue;
                }
                pending.insert(hash_a, ());
                for child_b in candidate_children.iter().copied() {
                    // Rebuild Bob's candidate child table directly in the scratch
                    // table — no byte round trip needed for a locally-built table.
                    scratch.clear();
                    for &x in child_b {
                        scratch.insert_u64(x);
                    }
                    let Ok(diff_table) = table_a.subtract(&scratch) else { continue };
                    let peeled = diff_table.into_decode();
                    if !peeled.complete {
                        continue;
                    }
                    let mut candidate = child_b.clone();
                    for x in peeled.negative_u64() {
                        candidate.remove(&x);
                    }
                    for x in peeled.positive_u64() {
                        candidate.insert(x);
                    }
                    if SetOfSets::child_hash(&candidate, self.params.seed) == hash_a {
                        recovered.insert(hash_a, candidate);
                        pending.remove(&hash_a);
                        break;
                    }
                }
            }
        }

        // Fallback table of full encodings, when present.
        if let Some(fallback) = &digest.fallback {
            let mut table = fallback.clone();
            let mut key = Vec::with_capacity(2 + 8 * self.params.max_child_size);
            for child in local.children() {
                SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
                table.delete(&key);
            }
            for child in recovered.values() {
                SetOfSets::encode_child_fixed_into(child, self.params.max_child_size, &mut key);
                table.delete(&key);
            }
            let decoded = table.decode_in_place();
            for key in &decoded.positive {
                if let Some(child) = SetOfSets::decode_child_fixed(key) {
                    let hash = SetOfSets::child_hash(&child, self.params.seed);
                    pending.remove(&hash);
                    recovered.insert(hash, child);
                }
            }
        }

        if let Some((&hash, _)) = pending.iter().next() {
            return Err(ReconError::NoMatchingChild { child_hash: hash });
        }

        let mut result = local.clone();
        for child in differing_local.values() {
            result.remove(child);
        }
        for child in recovered.values() {
            result.insert(child.clone());
        }
        if result.num_children() as u64 != digest.num_children
            || result.parent_hash(self.params.seed) != digest.parent_hash
        {
            return Err(ReconError::ChecksumFailure);
        }
        Ok(result)
    }
}

/// Theorem 3.7 driver: one-round SSRK with known total difference bound `d`, with up
/// to three replicated attempts (the paper's success probability is a constant 2/3,
/// amplified by replication against the whole-set hash). Delegates to the sans-I/O
/// parties of [`crate::session`] driven over an in-memory link.
pub fn run_known(
    alice: &SetOfSets,
    bob: &SetOfSets,
    d: usize,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let builder = SessionBuilder::new(params.seed).amplification(Amplification::replicate(4));
    let amplification = builder.config().amplification;
    builder.run(
        session::cascading_known_alice(alice, d, params, amplification)?,
        session::cascading_known_bob(bob, params, amplification),
    )
}

/// Corollary 3.8 driver: SSRU by repeated doubling of `d`, `O(log d)` rounds.
pub fn run_unknown(
    alice: &SetOfSets,
    bob: &SetOfSets,
    params: &SosParams,
) -> Result<SosOutcome, ReconError> {
    let max_possible = alice.total_elements() + bob.total_elements() + 2;
    let builder = SessionBuilder::new(params.seed)
        .amplification(Amplification::doubling(2, 2 * max_possible));
    let amplification = builder.config().amplification;
    builder.run(
        session::cascading_unknown_alice(alice, params, amplification)?,
        session::cascading_unknown_bob(bob, params, amplification),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iblt_of_iblts;
    use crate::workload::{generate_pair, WorkloadParams};

    fn params() -> (WorkloadParams, SosParams) {
        let w = WorkloadParams::new(96, 24, 1 << 30);
        (w, SosParams::new(0xCAFE, w.max_child_size))
    }

    #[test]
    fn level_count_tracks_min_of_d_and_h() {
        let (_, p) = params();
        let protocol = CascadingProtocol::new(p);
        assert_eq!(protocol.num_levels(1), 1);
        assert_eq!(protocol.num_levels(2), 1);
        assert_eq!(protocol.num_levels(4), 2);
        assert_eq!(protocol.num_levels(16), 4);
        // Capped at log2(h) = log2(24) -> 5 levels.
        assert_eq!(protocol.num_levels(1 << 20), 5);
        assert!(protocol.needs_fallback(24));
        assert!(!protocol.needs_fallback(8));
    }

    #[test]
    fn identical_parent_sets_reconcile() {
        let (w, p) = params();
        let (alice, _) = generate_pair(&w, 0, 1);
        let protocol = CascadingProtocol::new(p);
        let digest = protocol.digest(&alice, 4);
        assert_eq!(protocol.reconcile(&digest, &alice).unwrap(), alice);
    }

    #[test]
    fn perturbed_parent_sets_reconcile() {
        let (w, p) = params();
        for d in [1usize, 4, 12, 32] {
            let (alice, bob) = generate_pair(&w, d, 500 + d as u64);
            let outcome = run_known(&alice, &bob, d, &p).unwrap();
            assert_eq!(outcome.recovered, alice, "d = {d}");
            // Theorem 3.7 succeeds with constant probability per attempt; the driver
            // replicates (each replica is another one-round transmission), so a small
            // number of rounds is acceptable but most instances should need one.
            assert!(outcome.stats.rounds <= 3, "d = {d}: {} rounds", outcome.stats.rounds);
        }
    }

    #[test]
    fn large_differences_use_the_fallback_table() {
        let (w, p) = params();
        let protocol = CascadingProtocol::new(p);
        let (alice, bob) = generate_pair(&w, 60, 9);
        let digest = protocol.digest(&alice, 60);
        assert!(digest.fallback.is_some());
        let outcome = run_known(&alice, &bob, 60, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn unknown_difference_reconciles() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 7, 44);
        let outcome = run_unknown(&alice, &bob, &p).unwrap();
        assert_eq!(outcome.recovered, alice);
    }

    #[test]
    fn beats_iblt_of_iblts_for_spread_out_changes() {
        // Theorem 3.7's improvement over Theorem 3.5: when the d changes are spread
        // over many children, per-child IBLTs of size O(d) are wasteful.
        let w = WorkloadParams::new(128, 32, 1 << 30);
        let p = SosParams::new(7, w.max_child_size);
        let d = 24;
        let (alice, bob) = generate_pair(&w, d, 3);
        let cascade = run_known(&alice, &bob, d, &p).unwrap();
        let flat = iblt_of_iblts::run_known(&alice, &bob, d, d, &p).unwrap();
        assert_eq!(cascade.recovered, alice);
        assert_eq!(flat.recovered, alice);
        assert!(
            cascade.stats.total_bytes() < flat.stats.total_bytes(),
            "cascading {} bytes should undercut flat {} bytes",
            cascade.stats.total_bytes(),
            flat.stats.total_bytes()
        );
    }

    #[test]
    fn digest_roundtrips_through_wire() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 6, 15);
        let protocol = CascadingProtocol::new(p);
        let digest = protocol.digest(&alice, 6);
        let decoded = CascadingDigest::from_bytes(&digest.to_bytes()).unwrap();
        assert_eq!(protocol.reconcile(&decoded, &bob).unwrap(), alice);
    }

    #[test]
    fn undersized_bound_fails_detectably() {
        let (w, p) = params();
        let (alice, bob) = generate_pair(&w, 64, 23);
        let protocol = CascadingProtocol::new(p);
        let digest = protocol.digest(&alice, 1);
        assert!(protocol.reconcile(&digest, &bob).is_err());
    }
}
