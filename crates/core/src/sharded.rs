//! Sharded set-of-sets reconciliation: split a collection into per-shard
//! sub-collections by hashed child identity and reconcile all shards
//! concurrently over one multiplexed link.
//!
//! A child set is assigned to a shard by hashing its canonical encoding
//! ([`SetOfSets::child_hash`]) under a seed derived from the shared
//! [`ShardedRunner`], so Alice and Bob agree on the split without
//! communicating. A single flipped bit turns one child into another; the old
//! and new versions may hash to *different* shards, where they surface as one
//! missing and one extra child respectively — which is exactly the difference
//! model the child-level protocols already handle. Per-shard difference bounds
//! therefore count differing children, like Theorem 3.3's `d̂`.

use crate::session;
use crate::types::{SetOfSets, SosParams};
use recon_base::rng::split_seed;
use recon_base::ReconError;
use recon_estimator::L0Config;
use recon_protocol::{Amplification, Party, ShardedOutcome, ShardedRunner};

/// Salt separating the child→shard map from every protocol seed.
const CHILD_SHARD_SALT: u64 = 0x5AAD_C41D;

/// One shard's party pair, `Send` so the runner may execute shards on worker
/// threads.
type ShardPair = (Box<dyn Party<Output = ()> + Send>, Box<dyn Party<Output = SetOfSets> + Send>);

/// The shard a child set belongs to under `runner`'s seed.
pub fn shard_of_child(child: &crate::types::ChildSet, runner: &ShardedRunner) -> usize {
    let key = SetOfSets::child_hash(child, split_seed(runner.seed(), CHILD_SHARD_SALT));
    runner.shard_of_key(key)
}

/// Split `sos` into `runner.num_shards()` disjoint sub-collections. The union
/// of the shards is the original collection and both parties compute the same
/// assignment locally.
pub fn shard_set_of_sets(sos: &SetOfSets, runner: &ShardedRunner) -> Vec<SetOfSets> {
    let mut buckets: Vec<Vec<crate::types::ChildSet>> = vec![Vec::new(); runner.num_shards()];
    for child in sos.children() {
        buckets[shard_of_child(child, runner)].push(child.clone());
    }
    buckets.into_iter().map(SetOfSets::from_children).collect()
}

/// Which child-level family reconciles each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardedSosFamily {
    /// Theorem 3.3: children as opaque items in one outer IBLT.
    Naive,
    /// Theorem 3.5 / Algorithm 1: an IBLT of child IBLTs.
    IbltOfIblts,
    /// Theorem 3.7 / Algorithm 2: cascading child IBLTs.
    Cascading,
}

/// Reconcile two collections shard by shard, all shards multiplexed over one
/// framed link; Bob recovers Alice's full collection as the union of the shard
/// recoveries.
///
/// `per_shard_d` is the difference bound handed to every shard's protocol, in
/// that family's own units: differing children for
/// [`ShardedSosFamily::Naive`], flipped bits for the other two. Because a
/// flipped bit rehashes its child to a (generally) different shard, both the
/// old and the new version surface as *whole-child* differences in their
/// respective shards — so a safe bit-level bound covers `2d` full child
/// weights, not `d` individual bits (see the module docs).
pub fn reconcile_known_sharded(
    alice: &SetOfSets,
    bob: &SetOfSets,
    per_shard_d: usize,
    family: ShardedSosFamily,
    params: &SosParams,
    amplification: Amplification,
    runner: &ShardedRunner,
) -> Result<ShardedOutcome<SetOfSets>, ReconError> {
    let alice_shards = shard_set_of_sets(alice, runner);
    let bob_shards = shard_set_of_sets(bob, runner);
    let mut pairs: Vec<ShardPair> = Vec::with_capacity(runner.num_shards());
    for (shard, (alice_shard, bob_shard)) in alice_shards.iter().zip(&bob_shards).enumerate() {
        // Each shard gets independent public coins but shares the universe
        // bound, so encodings stay compatible with the unsharded protocols.
        let shard_params = SosParams::new(runner.shard_seed(shard), params.max_child_size);
        let pair: ShardPair = match family {
            ShardedSosFamily::Naive => (
                Box::new(session::naive_known_alice(
                    alice_shard,
                    per_shard_d,
                    &shard_params,
                    amplification,
                )?),
                Box::new(session::naive_known_bob(bob_shard, &shard_params, amplification)),
            ),
            ShardedSosFamily::IbltOfIblts => (
                Box::new(session::ioi_known_alice(
                    alice_shard,
                    per_shard_d,
                    per_shard_d,
                    &shard_params,
                    amplification,
                )?),
                Box::new(session::ioi_known_bob(bob_shard, &shard_params, amplification)),
            ),
            ShardedSosFamily::Cascading => (
                Box::new(session::cascading_known_alice(
                    alice_shard,
                    per_shard_d,
                    &shard_params,
                    amplification,
                )?),
                Box::new(session::cascading_known_bob(bob_shard, &shard_params, amplification)),
            ),
        };
        pairs.push(pair);
    }
    Ok(reassemble(runner.run_pairs(pairs)?))
}

/// Union the per-shard recoveries and merge their accounting, in shard order.
fn reassemble(outcomes: Vec<recon_protocol::Outcome<SetOfSets>>) -> ShardedOutcome<SetOfSets> {
    let per_shard: Vec<_> = outcomes.iter().map(|o| o.stats).collect();
    let stats = ShardedRunner::merge_stats(&per_shard);
    let mut children = Vec::new();
    for outcome in outcomes {
        children.extend(outcome.recovered.children().iter().cloned());
    }
    ShardedOutcome { recovered: SetOfSets::from_children(children), per_shard, stats }
}

/// Reconcile two collections shard by shard with *no prior difference bound*:
/// every shard sizes itself (Corollaries 3.4/3.6/3.8's unknown-`d` machinery,
/// run per shard — the production shape, where no global bound is known and
/// each shard's difference is estimated or doubled independently).
///
/// Per family, each shard runs its own round-0 estimation: the naive family
/// opens with an ℓ0 estimator over the shard's child hashes (`estimator`
/// configures it), while the IBLT-of-IBLTs and cascading families repeatedly
/// double the shard's bound under metered NACKs, capped by the shard's own
/// content size — so a shard holding few differences pays a small digest
/// regardless of how skewed the global difference distribution is.
pub fn reconcile_unknown_sharded(
    alice: &SetOfSets,
    bob: &SetOfSets,
    family: ShardedSosFamily,
    params: &SosParams,
    estimator: L0Config,
    runner: &ShardedRunner,
) -> Result<ShardedOutcome<SetOfSets>, ReconError> {
    let alice_shards = shard_set_of_sets(alice, runner);
    let bob_shards = shard_set_of_sets(bob, runner);
    let mut pairs: Vec<ShardPair> = Vec::with_capacity(runner.num_shards());
    for (shard, (alice_shard, bob_shard)) in alice_shards.iter().zip(&bob_shards).enumerate() {
        let shard_params = SosParams::new(runner.shard_seed(shard), params.max_child_size);
        // Both parties compute the same shard-local caps from the shard inputs,
        // mirroring the unsharded unknown-d drivers' out-of-band parameters.
        let max_possible = alice_shard.total_elements() + bob_shard.total_elements() + 2;
        let children_cap = alice_shard.num_children().max(bob_shard.num_children()).max(1);
        let pair: ShardPair = match family {
            ShardedSosFamily::Naive => {
                let amplification = Amplification::replicate(5);
                (
                    Box::new(session::naive_unknown_alice(
                        alice_shard,
                        &shard_params,
                        amplification,
                        estimator,
                    )),
                    Box::new(session::naive_unknown_bob(
                        bob_shard,
                        &shard_params,
                        amplification,
                        estimator,
                    )),
                )
            }
            ShardedSosFamily::IbltOfIblts => {
                let doubling = Amplification::doubling(1, 2 * max_possible);
                (
                    Box::new(session::ioi_unknown_alice(
                        alice_shard,
                        &shard_params,
                        children_cap,
                        doubling,
                    )?),
                    Box::new(session::ioi_unknown_bob(bob_shard, &shard_params, doubling)),
                )
            }
            ShardedSosFamily::Cascading => {
                let doubling = Amplification::doubling(2, 2 * max_possible);
                (
                    Box::new(session::cascading_unknown_alice(
                        alice_shard,
                        &shard_params,
                        doubling,
                    )?),
                    Box::new(session::cascading_unknown_bob(bob_shard, &shard_params, doubling)),
                )
            }
        };
        pairs.push(pair);
    }
    Ok(reassemble(runner.run_pairs(pairs)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_pair, WorkloadParams};

    #[test]
    fn shards_partition_the_collection() {
        let workload = WorkloadParams::new(60, 10, 1 << 28);
        let (alice, _) = generate_pair(&workload, 4, 8);
        let runner = ShardedRunner::new(5, 31);
        let shards = shard_set_of_sets(&alice, &runner);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.iter().map(SetOfSets::num_children).sum::<usize>(), alice.num_children());
        let mut union: Vec<_> = shards.iter().flat_map(|s| s.children().to_vec()).collect();
        union.sort();
        let mut original = alice.children().to_vec();
        original.sort();
        assert_eq!(union, original);
    }

    #[test]
    fn every_family_recovers_alice_shard_by_shard() {
        let workload = WorkloadParams::new(48, 12, 1 << 28);
        let d = 5;
        let (alice, bob) = generate_pair(&workload, d, 77);
        let params = SosParams::new(123, workload.max_child_size);
        let runner = ShardedRunner::new(4, 9);
        for family in
            [ShardedSosFamily::Naive, ShardedSosFamily::IbltOfIblts, ShardedSosFamily::Cascading]
        {
            // Each flipped bit can surface as up to two whole-child differences,
            // all of which could land in one shard; covering 2d full child
            // weights is safe in both families' units (children and bits).
            let per_shard_d = match family {
                ShardedSosFamily::Naive => 2 * d + 2,
                _ => (2 * d + 2) * (workload.max_child_size + 1),
            };
            let outcome = reconcile_known_sharded(
                &alice,
                &bob,
                per_shard_d,
                family,
                &params,
                Amplification::replicate(4),
                &runner,
            )
            .unwrap();
            assert_eq!(outcome.recovered, alice, "{family:?}");
            assert_eq!(outcome.per_shard.len(), 4);
            assert_eq!(
                outcome.stats.total_bytes(),
                outcome.per_shard.iter().map(|s| s.total_bytes()).sum::<usize>(),
                "{family:?}"
            );
        }
    }

    #[test]
    fn every_family_recovers_alice_without_a_difference_bound() {
        let workload = WorkloadParams::new(36, 10, 1 << 28);
        let (alice, bob) = generate_pair(&workload, 4, 13);
        let params = SosParams::new(77, workload.max_child_size);
        let runner = ShardedRunner::new(3, 21);
        for family in
            [ShardedSosFamily::Naive, ShardedSosFamily::IbltOfIblts, ShardedSosFamily::Cascading]
        {
            let outcome = reconcile_unknown_sharded(
                &alice,
                &bob,
                family,
                &params,
                L0Config::default(),
                &runner,
            )
            .unwrap();
            assert_eq!(outcome.recovered, alice, "{family:?}");
            assert_eq!(outcome.per_shard.len(), 3, "{family:?}");
            // Every shard ran its own estimation round (naive: estimator message,
            // doubling families: at least the first digest), so no shard is silent.
            assert!(outcome.per_shard.iter().all(|s| s.messages >= 1), "{family:?}");
        }
    }

    #[test]
    fn unknown_sharded_is_identical_across_thread_counts() {
        let workload = WorkloadParams::new(32, 8, 1 << 24);
        let (alice, bob) = generate_pair(&workload, 3, 99);
        let params = SosParams::new(5, workload.max_child_size);
        let run = |threads: usize| {
            reconcile_unknown_sharded(
                &alice,
                &bob,
                ShardedSosFamily::Naive,
                &params,
                L0Config::default(),
                &ShardedRunner::new(4, 17).with_threads(threads),
            )
            .unwrap()
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(8));
    }

    #[test]
    fn sharded_sos_runs_are_deterministic() {
        let workload = WorkloadParams::new(40, 8, 1 << 24);
        let (alice, bob) = generate_pair(&workload, 3, 5);
        let params = SosParams::new(7, workload.max_child_size);
        let runner = ShardedRunner::new(3, 55);
        let run = || {
            reconcile_known_sharded(
                &alice,
                &bob,
                8,
                ShardedSosFamily::Cascading,
                &params,
                Amplification::replicate(4),
                &runner,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
