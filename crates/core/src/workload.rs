//! Workload generation: random sets of sets and bounded perturbations.
//!
//! The paper's evaluation setting (Table 1) is a binary relational database with `s`
//! rows over `u` columns in which a total of `d` bits have been flipped. This module
//! provides the generic equivalent — a random parent set of `s` child sets drawn from
//! a universe of size `u`, and a perturbation operator that applies exactly `d`
//! element-level changes — which every test and benchmark in the workspace uses to
//! construct instances with a known ground-truth difference.

use crate::types::{ChildSet, SetOfSets};
use recon_base::rng::Xoshiro256;

/// Parameters of a random set-of-sets workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Number of child sets `s`.
    pub num_children: usize,
    /// Maximum child-set size `h` (children are drawn with sizes in `[h/2, h]`).
    pub max_child_size: usize,
    /// Universe size `u`; elements are drawn from `[0, u)`.
    pub universe: u64,
}

impl WorkloadParams {
    /// Convenience constructor.
    pub fn new(num_children: usize, max_child_size: usize, universe: u64) -> Self {
        assert!(max_child_size >= 1, "child sets must be allowed at least one element");
        assert!(
            universe >= 2 * max_child_size as u64,
            "universe must comfortably exceed the child size"
        );
        Self { num_children, max_child_size, universe }
    }
}

/// Generate a random set of sets with the given parameters.
///
/// Child sets are pairwise distinct (enforced by regeneration on collision, which is
/// overwhelmingly rare for the parameter ranges used here).
pub fn random_set_of_sets(params: &WorkloadParams, rng: &mut Xoshiro256) -> SetOfSets {
    let mut sos = SetOfSets::new();
    let mut attempts = 0usize;
    while sos.num_children() < params.num_children {
        let target = if params.max_child_size == 1 {
            1
        } else {
            params.max_child_size / 2 + rng.next_index(params.max_child_size / 2 + 1)
        };
        let mut child = ChildSet::new();
        while child.len() < target.max(1) {
            child.insert(rng.next_below(params.universe));
        }
        sos.insert(child);
        attempts += 1;
        assert!(
            attempts < params.num_children * 20 + 100,
            "failed to generate distinct child sets; universe too small"
        );
    }
    sos
}

/// Apply exactly `d` element-level changes (insertions or deletions spread over
/// random child sets), returning the perturbed set of sets.
///
/// The result differs from the input by a minimum-cost matching difference of at
/// most `d`, which is the ground truth the reconciliation tests compare against.
/// Child sets are kept non-empty, within the universe, and pairwise distinct.
pub fn perturb(
    original: &SetOfSets,
    d: usize,
    params: &WorkloadParams,
    rng: &mut Xoshiro256,
) -> SetOfSets {
    assert!(!original.is_empty() || d == 0, "cannot perturb an empty set of sets");
    let mut children: Vec<ChildSet> = original.children().to_vec();
    let mut applied = 0usize;
    let mut guard = 0usize;
    while applied < d {
        guard += 1;
        assert!(guard < 100 * (d + 1) + 1000, "perturbation failed to converge");
        let idx = rng.next_index(children.len());
        let mut candidate = children[idx].clone();
        let delete = rng.next_bool(0.5) && candidate.len() > 1;
        if delete {
            let victim_pos = rng.next_index(candidate.len());
            let victim = *candidate.iter().nth(victim_pos).expect("non-empty child");
            candidate.remove(&victim);
        } else {
            let mut inserted = false;
            for _ in 0..64 {
                let x = rng.next_below(params.universe);
                if !candidate.contains(&x) && candidate.len() < params.max_child_size {
                    candidate.insert(x);
                    inserted = true;
                    break;
                }
            }
            if !inserted {
                continue;
            }
        }
        // Keep children pairwise distinct.
        if children.iter().enumerate().any(|(j, c)| j != idx && *c == candidate) {
            continue;
        }
        children[idx] = candidate;
        applied += 1;
    }
    SetOfSets::from_children(children)
}

/// Generate an (Alice, Bob) instance: a random base set of sets and a copy perturbed
/// by exactly `d` element changes. Returns `(alice, bob)`.
pub fn generate_pair(params: &WorkloadParams, d: usize, seed: u64) -> (SetOfSets, SetOfSets) {
    let mut rng = Xoshiro256::new(seed);
    let alice = random_set_of_sets(params, &mut rng);
    let bob = perturb(&alice, d, params, &mut rng);
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{differing_children, matching_difference};

    #[test]
    fn random_generation_respects_parameters() {
        let params = WorkloadParams::new(50, 16, 10_000);
        let mut rng = Xoshiro256::new(1);
        let sos = random_set_of_sets(&params, &mut rng);
        assert_eq!(sos.num_children(), 50);
        assert!(sos.max_child_size() <= 16);
        assert!(sos.children().iter().all(|c| !c.is_empty()));
        assert!(sos.children().iter().flatten().all(|&x| x < 10_000));
    }

    #[test]
    fn perturbation_produces_bounded_difference() {
        let params = WorkloadParams::new(40, 12, 100_000);
        for d in [0usize, 1, 3, 10, 25] {
            let (alice, bob) = generate_pair(&params, d, 100 + d as u64);
            let measured = matching_difference(&alice, &bob);
            assert!(measured <= d, "d = {d}, measured = {measured}");
            if d == 0 {
                assert_eq!(alice, bob);
            } else {
                assert!(measured >= 1, "some change must have been applied for d = {d}");
            }
        }
    }

    #[test]
    fn perturbation_touches_a_bounded_number_of_children() {
        let params = WorkloadParams::new(64, 8, 50_000);
        let (alice, bob) = generate_pair(&params, 10, 7);
        assert!(differing_children(&alice, &bob) <= 2 * 10);
        assert_eq!(alice.num_children(), bob.num_children());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = WorkloadParams::new(20, 6, 1_000);
        assert_eq!(generate_pair(&params, 5, 9), generate_pair(&params, 5, 9));
        assert_ne!(generate_pair(&params, 5, 9), generate_pair(&params, 5, 10));
    }

    #[test]
    #[should_panic(expected = "universe must comfortably exceed")]
    fn tiny_universe_is_rejected() {
        let _ = WorkloadParams::new(10, 64, 100);
    }
}
