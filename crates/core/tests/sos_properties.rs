//! Property-based tests of the set-of-sets layer: difference metrics, workload
//! generation and the protocols' never-wrong guarantee.

use proptest::prelude::*;
use recon_base::rng::Xoshiro256;
use recon_sos::workload::{generate_pair, perturb, random_set_of_sets, WorkloadParams};
use recon_sos::{
    cascading, differing_children, matching_difference, naive, relaxed_difference, SetOfSets,
    SosParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The difference metrics obey their defining inequalities on random instances.
    #[test]
    fn metric_inequalities(seed in any::<u64>(), d in 0usize..12) {
        let workload = WorkloadParams::new(24, 8, 1 << 20);
        let (alice, bob) = generate_pair(&workload, d, seed);
        let matching = matching_difference(&alice, &bob);
        let relaxed = relaxed_difference(&alice, &bob);
        let children = differing_children(&alice, &bob);
        // The perturbation applied at most d element changes.
        prop_assert!(matching <= d);
        // Each direction of the relaxed sum is at most the matching cost.
        prop_assert!(relaxed <= 2 * matching);
        // Symmetry.
        prop_assert_eq!(matching, matching_difference(&bob, &alice));
        prop_assert_eq!(relaxed, relaxed_difference(&bob, &alice));
        // At most 2 child sets can differ per element change.
        prop_assert!(children <= 2 * d);
        // Zero difference iff equal.
        prop_assert_eq!(matching == 0, alice == bob);
    }

    /// Perturbation is measurable: perturbing by d1 then d2 never exceeds d1 + d2.
    #[test]
    fn perturbation_composes_subadditively(seed in any::<u64>(), d1 in 0usize..6, d2 in 0usize..6) {
        let workload = WorkloadParams::new(20, 8, 1 << 20);
        let mut rng = Xoshiro256::new(seed);
        let base = random_set_of_sets(&workload, &mut rng);
        let once = perturb(&base, d1, &workload, &mut rng);
        let twice = perturb(&once, d2, &workload, &mut rng);
        prop_assert!(matching_difference(&base, &twice) <= d1 + d2);
    }

    /// The protocols either recover Alice's parent set exactly or report an error —
    /// even when the declared bound is smaller than the true difference.
    #[test]
    fn protocols_never_return_wrong_data(
        seed in any::<u64>(),
        d_true in 0usize..16,
        d_declared in 1usize..8,
    ) {
        let workload = WorkloadParams::new(32, 10, 1 << 24);
        let (alice, bob) = generate_pair(&workload, d_true, seed);
        let params = SosParams::new(seed ^ 0x5051, workload.max_child_size);
        if let Ok(outcome) = cascading::run_known(&alice, &bob, d_declared, &params) {
            prop_assert_eq!(outcome.recovered, alice.clone());
        }
        if let Ok(outcome) = naive::run_known(&alice, &bob, d_declared, &params) {
            prop_assert_eq!(outcome.recovered, alice.clone());
        }
    }

    /// Wire round-trip of the SetOfSets container itself.
    #[test]
    fn set_of_sets_wire_roundtrip(seed in any::<u64>()) {
        use recon_base::wire::{Decode, Encode};
        let workload = WorkloadParams::new(16, 6, 1 << 16);
        let mut rng = Xoshiro256::new(seed);
        let sos = random_set_of_sets(&workload, &mut rng);
        let bytes = sos.to_bytes();
        prop_assert_eq!(SetOfSets::from_bytes(&bytes).unwrap(), sos);
    }
}
