//! Request/response control frames for long-lived services.
//!
//! A daemon that serves reconciliation sessions over a multiplexed
//! [`Endpoint`](crate::Endpoint) needs a side channel for commands that are not
//! themselves reconciliation protocols: open a replica, apply mutations, start a
//! session, snapshot. A [`ControlFrame`] is the unit of that channel — a
//! correlation id, a service-defined opcode, and an opaque wire-encoded payload —
//! carried inside an **uncharged** control [`Envelope`] (see
//! [`Meter::Control`](crate::Meter)) on a dedicated session
//! ([`CONTROL_SESSION`]), so command traffic never perturbs the paper's
//! communication accounting for the data sessions running next to it.

use crate::envelope::Envelope;
use crate::frame::SessionId;
use recon_base::wire::{
    read_length_prefixed, read_uvarint, uvarint_len, write_length_prefixed, write_uvarint, Decode,
    Encode, WireError,
};
use recon_base::ReconError;

/// The session id every control channel lives on. Data sessions must use ids
/// greater than this (the endpoint rejects duplicate registrations, so the
/// convention is enforced at registration time).
pub const CONTROL_SESSION: SessionId = 0;

/// Envelope tag of a control request (client → service).
pub const TAG_CONTROL_REQUEST: u16 = 0xC7_01;

/// Envelope tag of a control response (service → client).
pub const TAG_CONTROL_RESPONSE: u16 = 0xC7_02;

/// One control-channel message: a request or its response.
///
/// `request_id` correlates responses with requests (services answer every
/// request exactly once, but nothing requires them to answer in order); `op` is
/// a service-defined opcode; `payload` is the opcode's wire-encoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlFrame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Service-defined operation code.
    pub op: u16,
    /// Wire-encoded operation body (opcode-specific).
    pub payload: Vec<u8>,
}

impl ControlFrame {
    /// Build a frame with an encoded `body`.
    pub fn new<T: Encode + ?Sized>(request_id: u64, op: u16, body: &T) -> Self {
        Self { request_id, op, payload: body.to_bytes() }
    }

    /// Decode the full payload as `T` (must be consumed exactly).
    pub fn decode_payload<T: Decode>(&self) -> Result<T, ReconError> {
        T::from_bytes(&self.payload).map_err(ReconError::Wire)
    }

    /// Wrap this frame in an uncharged request envelope.
    pub fn request_envelope(&self, label: &str) -> Envelope {
        Envelope::control(TAG_CONTROL_REQUEST, label, self)
    }

    /// Wrap this frame in an uncharged response envelope.
    pub fn response_envelope(&self, label: &str) -> Envelope {
        Envelope::control(TAG_CONTROL_RESPONSE, label, self)
    }

    /// Extract a frame from a control envelope, checking the tag is one of
    /// [`TAG_CONTROL_REQUEST`] / [`TAG_CONTROL_RESPONSE`].
    pub fn from_envelope(envelope: &Envelope) -> Result<Self, ReconError> {
        if envelope.tag != TAG_CONTROL_REQUEST && envelope.tag != TAG_CONTROL_RESPONSE {
            return Err(ReconError::InvalidInput(format!(
                "unexpected tag {:#06x} on control channel",
                envelope.tag
            )));
        }
        envelope.decode_payload()
    }
}

impl Encode for ControlFrame {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.request_id);
        self.op.encode(buf);
        write_length_prefixed(buf, &self.payload);
    }

    fn encoded_len(&self) -> usize {
        uvarint_len(self.request_id)
            + 2
            + uvarint_len(self.payload.len() as u64)
            + self.payload.len()
    }
}

impl Decode for ControlFrame {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let request_id = read_uvarint(buf)?;
        let op = u16::decode(buf)?;
        let payload = read_length_prefixed(buf)?.to_vec();
        Ok(ControlFrame { request_id, op, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Meter;

    #[test]
    fn frame_roundtrips_through_envelope() {
        let frame = ControlFrame::new(42, 7, &(3u64, 9u64));
        let envelope = frame.request_envelope("open replica");
        assert_eq!(envelope.meter, Meter::Control, "control traffic must be uncharged");
        assert_eq!(envelope.charged_bytes(), 0);
        let wire = Envelope::from_bytes(&envelope.to_bytes()).unwrap();
        let back = ControlFrame::from_envelope(&wire).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.decode_payload::<(u64, u64)>().unwrap(), (3, 9));
    }

    #[test]
    fn response_envelope_uses_response_tag() {
        let frame = ControlFrame::new(1, 2, &());
        assert_eq!(frame.request_envelope("r").tag, TAG_CONTROL_REQUEST);
        assert_eq!(frame.response_envelope("r").tag, TAG_CONTROL_RESPONSE);
    }

    #[test]
    fn from_envelope_rejects_foreign_tags() {
        let envelope = Envelope::round(0x5E01, "digest", &());
        assert!(ControlFrame::from_envelope(&envelope).is_err());
    }

    #[test]
    fn payload_must_be_consumed_exactly() {
        let frame = ControlFrame::new(5, 1, &(1u64, 2u64));
        assert!(frame.decode_payload::<u64>().is_err());
    }
}
