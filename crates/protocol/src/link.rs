//! Pluggable transports for a [`Session`](crate::Session).
//!
//! A [`Link`] observes every envelope the session moves between the parties. The
//! in-memory [`MemoryLink`] records them into a [`Transcript`], preserving the
//! byte and round accounting the paper's bounds are stated in; a real deployment
//! would additionally serialize the envelope onto its transport here.

use crate::envelope::Envelope;
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::ReconError;

/// A transport the session delivers envelopes through.
pub trait Link {
    /// Deliver one envelope travelling in `direction`. Implementations typically
    /// account for and/or transmit the envelope; the session hands the envelope
    /// itself to the receiving party afterwards.
    fn deliver(&mut self, direction: Direction, envelope: &Envelope) -> Result<(), ReconError>;
}

/// An in-memory link that records every metered envelope into a [`Transcript`],
/// reproducing exactly the accounting of the legacy one-shot drivers.
#[derive(Debug, Clone, Default)]
pub struct MemoryLink {
    transcript: Transcript,
}

impl MemoryLink {
    /// A fresh link with an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// The transcript recorded so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Summary statistics of the transcript recorded so far.
    pub fn stats(&self) -> CommStats {
        self.transcript.stats()
    }
}

impl Link for MemoryLink {
    fn deliver(&mut self, direction: Direction, envelope: &Envelope) -> Result<(), ReconError> {
        envelope.record_into(&mut self.transcript, direction);
        Ok(())
    }
}

impl<L: Link + ?Sized> Link for &mut L {
    fn deliver(&mut self, direction: Direction, envelope: &Envelope) -> Result<(), ReconError> {
        (**self).deliver(direction, envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::Encode;

    #[test]
    fn memory_link_mirrors_transcript_accounting() {
        let mut link = MemoryLink::new();
        link.deliver(Direction::AliceToBob, &Envelope::round(1, "digest", &vec![1u64, 2])).unwrap();
        link.deliver(Direction::AliceToBob, &Envelope::parallel(2, "edges", &7u64)).unwrap();
        link.deliver(Direction::BobToAlice, &Envelope::control(3, "nack", &())).unwrap();
        link.deliver(Direction::AliceToBob, &Envelope::charge(4, "aggregate", 100, false)).unwrap();

        let stats = link.stats();
        assert_eq!(stats.rounds, 2, "control envelopes must not advance rounds");
        assert_eq!(stats.messages, 3, "control envelopes must not be recorded");
        assert_eq!(stats.bytes_bob_to_alice, 0);
        let vec_len = vec![1u64, 2].to_bytes().len();
        assert_eq!(stats.bytes_alice_to_bob, vec_len + 8 + 100);
    }
}
