//! The multiplexed [`Endpoint`]: many concurrent sessions over one framed
//! [`Transport`], plus the [`ShardedRunner`] that fans a partitioned workload
//! out across such sessions.
//!
//! Where [`Session::run`](crate::Session::run) drives exactly one blocking
//! reconciliation per link, an `Endpoint` owns any number of
//! [`SessionCore`]s, each identified by a [`SessionId`] both peers agreed on,
//! and pumps them all through a single byte stream: [`Endpoint::poll`] drains
//! every session's outgoing envelopes into session-tagged [`Frame`]s, then
//! dispatches every arrived frame to its session. Per-session [`Transcript`]s
//! apply exactly the metering of [`MemoryLink`](crate::MemoryLink), so a
//! protocol multiplexed across a shared connection reports the same
//! [`CommStats`] as the same protocol run alone — amortizing transport setup
//! without distorting the paper's accounting.
//!
//! Session lifecycle: a party that produces its output (or fails) finishes its
//! session; the endpoint then frames an uncharged [`FrameBody::Fin`] so the
//! peer — whose own party may never complete, like Alice in the paper's
//! one-way convention — can retire its half. Outcomes are collected with
//! [`Endpoint::take_outcome`]; an Alice-side session is closed with
//! [`Endpoint::close`], which yields its accounting.

use crate::envelope::Envelope;
use crate::frame::{Frame, FrameBody, SessionId};
use crate::party::Party;
use crate::session::{Outcome, SessionCore};
use crate::transport::{MemoryTransport, Transport};
use recon_base::comm::{CommStats, Direction, Transcript};
use recon_base::rng::split_seed;
use recon_base::ReconError;
use std::any::Any;
use std::collections::BTreeMap;

/// Which paper role the local party plays in a session. The role fixes the
/// [`Direction`] its envelopes are recorded under, so both endpoints of a link
/// reconstruct identical per-session transcripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The party whose data is being recovered; sends `A→B`.
    Alice,
    /// The recovering party; sends `B→A`.
    Bob,
}

impl Role {
    fn outgoing(self) -> Direction {
        match self {
            Role::Alice => Direction::AliceToBob,
            Role::Bob => Direction::BobToAlice,
        }
    }

    fn incoming(self) -> Direction {
        match self {
            Role::Alice => Direction::BobToAlice,
            Role::Bob => Direction::AliceToBob,
        }
    }
}

/// Object-safe view of a [`SessionCore`] with the output type erased, so one
/// endpoint can host sessions of heterogeneous protocols.
trait ErasedSession {
    fn poll_send(&mut self) -> Option<Envelope>;
    fn handle(&mut self, envelope: Envelope) -> Result<bool, ReconError>;
    fn is_done(&self) -> bool;
    fn take_output(&mut self) -> Option<Box<dyn Any>>;
}

impl<P> ErasedSession for SessionCore<P>
where
    P: Party + 'static,
    P::Output: 'static,
{
    fn poll_send(&mut self) -> Option<Envelope> {
        SessionCore::poll_send(self)
    }

    fn handle(&mut self, envelope: Envelope) -> Result<bool, ReconError> {
        SessionCore::handle(self, envelope)
    }

    fn is_done(&self) -> bool {
        SessionCore::is_done(self)
    }

    fn take_output(&mut self) -> Option<Box<dyn Any>> {
        SessionCore::take_output(self).map(|output| Box::new(output) as Box<dyn Any>)
    }
}

struct Slot {
    role: Role,
    session: Box<dyn ErasedSession>,
    transcript: Transcript,
    error: Option<ReconError>,
    peer_finished: bool,
    fin_sent: bool,
}

impl Slot {
    /// A session that will make no further local progress: its party completed,
    /// failed terminally, or the peer declared the session over.
    fn finished(&self) -> bool {
        self.session.is_done() || self.error.is_some() || self.peer_finished
    }
}

/// A multiplexer of concurrent protocol sessions over one framed transport.
pub struct Endpoint<T: Transport> {
    transport: T,
    sessions: BTreeMap<SessionId, Slot>,
    frames_dispatched: usize,
    integrity: Option<u64>,
    hello_pending: bool,
    max_sessions: Option<usize>,
}

impl<T: Transport> Endpoint<T> {
    /// An endpoint speaking over `transport`, with no sessions yet.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            sessions: BTreeMap::new(),
            frames_dispatched: 0,
            integrity: None,
            hello_pending: false,
            max_sessions: None,
        }
    }

    /// Offer checked frames (keyed checksum trailers) to the peer, keyed by
    /// `key` — a value both sides derived out of band, like every public coin
    /// in this workspace.
    ///
    /// The decoder accepts checked incoming frames immediately (the peer's
    /// offer may already be in flight), and a [`FrameBody::Hello`] goes out
    /// ahead of any session frame. Outgoing frames start carrying trailers
    /// once the peer's own Hello arrives; against a peer that never offers,
    /// the connection simply proceeds unchecked, byte-identical to a
    /// connection with no offer at all.
    pub fn offer_integrity(&mut self, key: u64) {
        self.integrity = Some(key);
        self.transport.set_integrity_key(Some(key));
        self.hello_pending = true;
    }

    /// Cap how many sessions may be registered at once; registrations past
    /// the cap fail with [`ReconError::ResourceExhausted`]. Servers set this
    /// so one connection cannot open sessions until memory runs out.
    pub fn set_max_sessions(&mut self, max: usize) {
        self.max_sessions = Some(max);
    }

    /// Register the local half of session `id`. The peer endpoint must register
    /// the opposite role under the same id. Fails on a duplicate id.
    pub fn register<P>(&mut self, id: SessionId, role: Role, party: P) -> Result<(), ReconError>
    where
        P: Party + 'static,
        P::Output: 'static,
    {
        if self.sessions.contains_key(&id) {
            return Err(ReconError::InvalidInput(format!("session id {id} already registered")));
        }
        if let Some(max) = self.max_sessions {
            if self.sessions.len() >= max {
                return Err(ReconError::ResourceExhausted {
                    what: "sessions per connection",
                    limit: max,
                });
            }
        }
        self.sessions.insert(
            id,
            Slot {
                role,
                session: Box::new(SessionCore::new(party)),
                transcript: Transcript::new(),
                error: None,
                peer_finished: false,
                fin_sent: false,
            },
        );
        Ok(())
    }

    /// Pump the multiplexer once: frame and send every session's pending
    /// envelopes, then dispatch every frame the transport has fully received.
    /// Returns whether any work happened — drivers loop until their sessions
    /// finish and treat a no-progress iteration as "waiting on the peer".
    pub fn poll(&mut self) -> Result<bool, ReconError> {
        let mut progressed = self.pump_sends()?;
        while let Some(frame) = self.transport.fill_vectored()? {
            progressed = true;
            self.dispatch(frame)?;
        }
        // Dispatching may have queued responses; get them onto the wire now so
        // a peer polling in lockstep sees them on its next iteration.
        progressed |= self.pump_sends()?;
        Ok(progressed)
    }

    /// Pump the multiplexer from a readiness notification instead of
    /// speculatively: flush buffered output if the stream reported *writable*,
    /// drain and dispatch arrived frames if it reported *readable*, then frame
    /// any responses the sessions queued. This is [`Endpoint::poll`] with the
    /// transport work gated on actual readiness, so an event-loop driver (see
    /// `recon-runtime`) never spins on a stream that has nothing for it.
    ///
    /// Returns whether any protocol-level work happened (frames dispatched or
    /// envelopes sent) — byte-level progress such as a partial frame arriving
    /// is visible through the transport's counters instead.
    pub fn poll_ready(&mut self, readable: bool, writable: bool) -> Result<bool, ReconError> {
        let mut progressed = false;
        if writable {
            self.transport.drain_vectored()?;
        }
        if readable {
            while let Some(frame) = self.transport.fill_vectored()? {
                progressed = true;
                self.dispatch(frame)?;
            }
        }
        progressed |= self.pump_sends()?;
        Ok(progressed)
    }

    /// `true` while the transport holds outgoing bytes its stream has not yet
    /// accepted — the signal a readiness-driven driver uses to arm (and, once
    /// the buffer drains, disarm) write interest.
    pub fn is_write_blocked(&self) -> bool {
        self.transport.has_pending_out()
    }

    fn pump_sends(&mut self) -> Result<bool, ReconError> {
        let mut progressed = false;
        if self.hello_pending {
            self.hello_pending = false;
            progressed = true;
            self.transport.send(&Frame::hello(true))?;
        }
        for (&id, slot) in self.sessions.iter_mut() {
            while let Some(envelope) = slot.session.poll_send() {
                progressed = true;
                envelope.record_into(&mut slot.transcript, slot.role.outgoing());
                self.transport.send(&Frame::envelope(id, envelope))?;
            }
            if slot.finished() && !slot.fin_sent {
                progressed = true;
                slot.fin_sent = true;
                self.transport.send(&Frame::fin(id))?;
            }
        }
        self.transport.drain_vectored()?;
        Ok(progressed)
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), ReconError> {
        self.frames_dispatched += 1;
        if let FrameBody::Hello { checksums } = frame.body {
            // Connection-level, never routed to a session. The peer wants
            // checked frames; oblige if we offered too (one-sided offers
            // degrade to an unchecked connection).
            if checksums {
                if let Some(key) = self.integrity {
                    self.transport.set_checked_out(Some(key));
                }
            }
            return Ok(());
        }
        let Some(slot) = self.sessions.get_mut(&frame.session_id) else {
            return match frame.body {
                // A Fin for an already-closed session is normal shutdown skew.
                FrameBody::Fin => Ok(()),
                _ => Err(ReconError::Transport(format!(
                    "envelope for unknown session {}",
                    frame.session_id
                ))),
            };
        };
        match frame.body {
            FrameBody::Fin | FrameBody::Hello { .. } => slot.peer_finished = true,
            FrameBody::Envelope(envelope) => {
                if slot.finished() {
                    // Late frame after local completion/failure; drop it, like
                    // the blocking driver drops undelivered envelopes once the
                    // receiving party returns its output.
                    return Ok(());
                }
                envelope.record_into(&mut slot.transcript, slot.role.incoming());
                if let Err(error) = slot.session.handle(envelope) {
                    slot.error = Some(error);
                }
            }
        }
        Ok(())
    }

    /// Number of sessions still making progress (registered and not finished).
    pub fn open_sessions(&self) -> usize {
        self.sessions.values().filter(|slot| !slot.finished()).count()
    }

    /// Number of sessions currently registered (finished or not).
    pub fn registered_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The ids of every currently registered session, in ascending order.
    /// Drivers that did not book-keep their registrations (a server handling
    /// whatever a factory installed) iterate these to harvest outcomes.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Total frames dispatched to sessions so far.
    pub fn frames_dispatched(&self) -> usize {
        self.frames_dispatched
    }

    /// Whether session `id` is finished (`None` if unknown/already taken).
    pub fn is_finished(&self, id: SessionId) -> Option<bool> {
        self.sessions.get(&id).map(Slot::finished)
    }

    /// The communication recorded for session `id` so far.
    pub fn stats(&self, id: SessionId) -> Option<CommStats> {
        self.sessions.get(&id).map(|slot| slot.transcript.stats())
    }

    /// Collect the outcome of a completed session, removing it from the
    /// endpoint. Returns `None` while the session is still running, `Some(Err)`
    /// if its party failed, and `Some(Ok)` with the recovered output plus this
    /// session's measured communication otherwise. The requested output type
    /// must match the registered party's.
    pub fn take_outcome<O: 'static>(
        &mut self,
        id: SessionId,
    ) -> Option<Result<Outcome<O>, ReconError>> {
        let slot = self.sessions.get(&id)?;
        if slot.error.is_none() && !slot.session.is_done() {
            return None;
        }
        let mut slot = self.sessions.remove(&id).expect("checked above");
        if !slot.fin_sent {
            // Retiring before the next poll: tell the peer now. Best-effort,
            // like `close` — the session itself already completed, and a peer
            // that tore the transport down no longer needs the notification.
            let _ = self.transport.send(&Frame::fin(id));
        }
        if let Some(error) = slot.error {
            return Some(Err(error));
        }
        let output = slot.session.take_output().expect("done session has an output");
        match output.downcast::<O>() {
            Ok(recovered) => {
                Some(Ok(Outcome { recovered: *recovered, stats: slot.transcript.stats() }))
            }
            Err(_) => {
                Some(Err(ReconError::InvalidInput(format!("session {id} output type mismatch"))))
            }
        }
    }

    /// Retire every finished session at once, discarding outcomes and stats —
    /// the allocation-free harvest for serving paths that only need sessions
    /// gone (an Alice side whose parties produce no output). Each retired
    /// session gets its peer-notifying `Fin` exactly like [`Endpoint::close`].
    /// Returns how many sessions were retired.
    pub fn close_finished(&mut self) -> usize {
        let transport = &mut self.transport;
        let before = self.sessions.len();
        self.sessions.retain(|&id, slot| {
            if slot.finished() {
                if !slot.fin_sent {
                    let _ = transport.send(&Frame::fin(id));
                }
                false
            } else {
                true
            }
        });
        before - self.sessions.len()
    }

    /// Retire session `id` regardless of local completion — how an Alice-side
    /// endpoint (whose party never produces an output) releases a session once
    /// the peer's Fin arrived. Returns the session's accounting.
    pub fn close(&mut self, id: SessionId) -> Option<CommStats> {
        let slot = self.sessions.remove(&id)?;
        if !slot.fin_sent {
            let _ = self.transport.send(&Frame::fin(id));
        }
        Some(slot.transcript.stats())
    }

    /// The underlying transport (e.g. for its framed-byte counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

/// Drive two connected in-process endpoints until every session on both sides
/// has finished.
///
/// Deadlock guard: a round where neither endpoint dispatched a frame, moved a
/// single byte through its transport, sent an envelope, or retired a session
/// cannot unblock itself — an in-process pair has no genuine "waiting on the
/// network" state — so the driver returns a structured
/// [`ReconError::SessionStuck`] naming the stuck sessions instead of looping
/// forever on a stalled peer. Byte-level movement counts as progress on
/// purpose, and the guard waits for a *second* consecutive idle round before
/// declaring deadlock: a transport that delivers one byte then `WouldBlock`
/// alternately (the fragmentation torture tests) legally produces isolated
/// idle rounds, but can never produce two in a row while bytes are pending.
pub fn drive_pair<TA: Transport, TB: Transport>(
    a: &mut Endpoint<TA>,
    b: &mut Endpoint<TB>,
) -> Result<(), ReconError> {
    // (frames dispatched, framed bytes in, open sessions) per side: every way a
    // round can matter. Frames/bytes only ever grow, and open sessions only
    // ever shrink, so "all six unchanged" is exactly "nothing happened".
    let observe = |a: &Endpoint<TA>, b: &Endpoint<TB>| {
        (
            a.frames_dispatched(),
            a.transport().bytes_framed_in(),
            a.open_sessions(),
            b.frames_dispatched(),
            b.transport().bytes_framed_in(),
            b.open_sessions(),
        )
    };
    let mut before = observe(a, b);
    let mut idle_rounds = 0;
    loop {
        let progressed_a = a.poll()?;
        let progressed_b = b.poll()?;
        if a.open_sessions() == 0 && b.open_sessions() == 0 {
            return Ok(());
        }
        let after = observe(a, b);
        if progressed_a || progressed_b || after != before {
            idle_rounds = 0;
        } else {
            idle_rounds += 1;
        }
        if idle_rounds >= 2 {
            // BTreeMap iteration gives the ids ascending, as documented.
            return Err(ReconError::SessionStuck {
                waiting_a: a
                    .sessions
                    .iter()
                    .filter(|(_, s)| !s.finished())
                    .map(|(id, _)| *id)
                    .collect(),
                waiting_b: b
                    .sessions
                    .iter()
                    .filter(|(_, s)| !s.finished())
                    .map(|(id, _)| *id)
                    .collect(),
            });
        }
        before = after;
    }
}

/// The result of a sharded reconciliation: the reassembled output plus both the
/// per-shard and the merged communication accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome<T> {
    /// The union of the per-shard recoveries.
    pub recovered: T,
    /// Each shard's own `CommStats`, in shard order.
    pub per_shard: Vec<CommStats>,
    /// The merged accounting per [`ShardedRunner::merge_stats`].
    pub stats: CommStats,
}

/// A deterministic fan-out of a reconciliation workload across concurrent
/// sessions multiplexed over one link, optionally executed on worker threads.
///
/// The runner fixes the two ingredients both parties must agree on *without
/// communicating*: how keys map to shards ([`ShardedRunner::shard_of_key`], a
/// seeded hash — the power-of-choices intuition: spreading keys across `k`
/// bins keeps every bin's difference small) and the per-shard public-coin
/// seeds ([`ShardedRunner::shard_seed`]). Domain crates build per-shard party
/// pairs from those and hand them to [`ShardedRunner::run_pairs`], which runs
/// them through framed in-memory endpoint pairs.
///
/// With [`ShardedRunner::with_threads`] the shards execute on that many
/// `std::thread::scope` workers (shard `i` on worker `i mod threads`, each
/// worker multiplexing its shards over its own endpoint pair). Per-shard
/// parties are independent state machines over `Send` flat-buffer tables, and
/// each shard's [`CommStats`] comes from its own transcript, so the outcomes —
/// merged back in shard order — are identical to the single-threaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedRunner {
    num_shards: usize,
    seed: u64,
    threads: usize,
}

/// Salt separating the shard-assignment hash from the per-shard protocol seeds.
const SHARD_ASSIGN_SALT: u64 = 0x5AAD_0001;

impl ShardedRunner {
    /// A runner splitting work into `num_shards` shards (at least 1) under the
    /// shared public-coin `seed`, executing on one thread.
    pub fn new(num_shards: usize, seed: u64) -> Self {
        Self { num_shards: num_shards.max(1), seed, threads: 1 }
    }

    /// Execute shards on up to `threads` worker threads (at least 1). The shard
    /// map, per-shard seeds, stats and outcomes are unaffected — only wall-clock
    /// parallelism changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// A thread count matching the machine's available parallelism.
    pub fn with_available_threads(self) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.with_threads(threads)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of worker threads shards execute on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared seed the shard map and per-shard seeds derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard a key belongs to — a seeded hash, so both parties agree and
    /// the assignment is adversarially balanced rather than range-based.
    pub fn shard_of_key(&self, key: u64) -> usize {
        (recon_base::hash::hash64(key, split_seed(self.seed, SHARD_ASSIGN_SALT))
            % self.num_shards as u64) as usize
    }

    /// The public-coin seed for shard `shard`'s protocol instance.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        split_seed(self.seed, shard as u64)
    }

    /// Run per-shard party pairs concurrently: shard `i`'s pair becomes session
    /// id `i` on a framed [`MemoryTransport`]. On a single thread every shard
    /// multiplexes over one shared endpoint pair; with
    /// [`ShardedRunner::with_threads`] the shards are dealt round-robin onto
    /// scoped worker threads, each multiplexing its share over its own endpoint
    /// pair. Returns the per-shard outcomes in shard order either way; the
    /// failing shard with the lowest id aborts the whole run.
    pub fn run_pairs<A, B>(
        &self,
        pairs: impl IntoIterator<Item = (A, B)>,
    ) -> Result<Vec<Outcome<B::Output>>, ReconError>
    where
        A: Party + Send + 'static,
        B: Party + Send + 'static,
        B::Output: Send + 'static,
    {
        let pairs: Vec<(A, B)> = pairs.into_iter().collect();
        let workers = self.threads.min(pairs.len()).max(1);
        if workers <= 1 {
            let ids = 0..pairs.len() as SessionId;
            return Self::run_chunk(ids.zip(pairs).collect())
                .map(|done| done.into_iter().map(|(_, outcome)| outcome).collect())
                .map_err(|(_, error)| error);
        }

        // Deal shards round-robin so every worker sees ids in increasing order.
        let mut chunks: Vec<Vec<(SessionId, (A, B))>> = (0..workers).map(|_| Vec::new()).collect();
        for (id, pair) in pairs.into_iter().enumerate() {
            chunks[id % workers].push((id as SessionId, pair));
        }

        let total = chunks.iter().map(Vec::len).sum::<usize>();
        let mut slots: Vec<Option<Outcome<B::Output>>> = Vec::new();
        slots.resize_with(total, || None);
        let mut first_error: Option<(SessionId, ReconError)> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                chunks.into_iter().map(|chunk| scope.spawn(|| Self::run_chunk(chunk))).collect();
            for handle in handles {
                match handle.join().expect("shard worker panicked") {
                    Ok(done) => {
                        for (id, outcome) in done {
                            slots[id as usize] = Some(outcome);
                        }
                    }
                    Err((id, error)) => {
                        // Deterministic abort: report the lowest failing shard id,
                        // exactly like the sequential take_outcome order would.
                        if first_error.as_ref().is_none_or(|(worst, _)| id < *worst) {
                            first_error = Some((id, error));
                        }
                    }
                }
            }
        });
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(slots.into_iter().map(|slot| slot.expect("all shards completed")).collect())
    }

    /// Drive one worker's share of the shards over its own framed in-memory
    /// endpoint pair. Errors carry the lowest affected shard id so the caller
    /// can abort deterministically.
    #[allow(clippy::type_complexity)]
    fn run_chunk<A, B>(
        chunk: Vec<(SessionId, (A, B))>,
    ) -> Result<Vec<(SessionId, Outcome<B::Output>)>, (SessionId, ReconError)>
    where
        A: Party + 'static,
        B: Party + 'static,
        B::Output: 'static,
    {
        let first_id = chunk.first().map(|(id, _)| *id).unwrap_or(0);
        let (transport_a, transport_b) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(transport_a);
        let mut bob_end = Endpoint::new(transport_b);
        let mut ids = Vec::with_capacity(chunk.len());
        for (id, (alice, bob)) in chunk {
            alice_end.register(id, Role::Alice, alice).map_err(|e| (id, e))?;
            bob_end.register(id, Role::Bob, bob).map_err(|e| (id, e))?;
            ids.push(id);
        }
        drive_pair(&mut alice_end, &mut bob_end).map_err(|e| (first_id, e))?;
        let mut outcomes = Vec::with_capacity(ids.len());
        for id in ids {
            let outcome = bob_end
                .take_outcome::<B::Output>(id)
                .expect("drive_pair finished every session")
                .map_err(|e| (id, e))?;
            // The Alice side observed the very same envelopes.
            let alice_stats = alice_end.close(id);
            debug_assert_eq!(
                Some(outcome.stats),
                alice_stats,
                "both endpoints must account session {id} identically"
            );
            outcomes.push((id, outcome));
        }
        Ok(outcomes)
    }

    /// Merge per-shard accounting into one [`CommStats`]: bytes and messages
    /// add up; rounds take the maximum, because the shards' messages travel
    /// concurrently over the shared link (the paper's "in parallel" reading).
    pub fn merge_stats(per_shard: &[CommStats]) -> CommStats {
        CommStats {
            rounds: per_shard.iter().map(|s| s.rounds).max().unwrap_or(0),
            messages: per_shard.iter().map(|s| s.messages).sum(),
            bytes_alice_to_bob: per_shard.iter().map(|s| s.bytes_alice_to_bob).sum(),
            bytes_bob_to_alice: per_shard.iter().map(|s| s.bytes_bob_to_alice).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
    use crate::session::SessionBuilder;

    fn counting_pair(
        payload: u64,
        fail_before: u64,
    ) -> (impl Party<Output = ()>, impl Party<Output = u64>) {
        let alice = AmplifiedSender::new(4, move |attempt| {
            Ok(Envelope::round(1, "digest", &(payload + attempt)))
        })
        .unwrap();
        let bob = AmplifiedReceiver::new(
            4,
            move |attempt, env: Envelope| {
                if attempt < fail_before {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            Exhaust::LastError,
        );
        (alice, bob)
    }

    #[test]
    fn one_endpoint_pair_multiplexes_many_sessions() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);

        // Sessions with different retry depths finish at different times over
        // the same link.
        for id in 0..5u64 {
            let (alice, bob) = counting_pair(100 * id, id % 3);
            alice_end.register(id, Role::Alice, alice).unwrap();
            bob_end.register(id, Role::Bob, bob).unwrap();
        }
        drive_pair(&mut alice_end, &mut bob_end).unwrap();

        for id in 0..5u64 {
            let outcome = bob_end.take_outcome::<u64>(id).unwrap().unwrap();
            assert_eq!(outcome.recovered, 100 * id + id % 3);
            // Each replica is one 8-byte round; retries are uncharged control.
            let attempts = (id % 3 + 1) as usize;
            assert_eq!(outcome.stats.rounds, attempts);
            assert_eq!(outcome.stats.bytes_alice_to_bob, 8 * attempts);
            assert_eq!(outcome.stats.bytes_bob_to_alice, 0);
            // The Alice side retired via the peer's Fin with identical stats.
            assert_eq!(alice_end.close(id), Some(outcome.stats));
        }
        assert_eq!(bob_end.registered_sessions(), 0);
    }

    #[test]
    fn multiplexed_stats_match_the_blocking_driver() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        for id in 0..3u64 {
            let (alice, bob) = counting_pair(7 * id, 2);
            alice_end.register(id, Role::Alice, alice).unwrap();
            bob_end.register(id, Role::Bob, bob).unwrap();
        }
        drive_pair(&mut alice_end, &mut bob_end).unwrap();

        for id in 0..3u64 {
            let multiplexed = bob_end.take_outcome::<u64>(id).unwrap().unwrap();
            let (alice, bob) = counting_pair(7 * id, 2);
            let solo = SessionBuilder::new(0).run(alice, bob).unwrap();
            assert_eq!(multiplexed.recovered, solo.recovered);
            assert_eq!(multiplexed.stats, solo.stats, "session {id}");
        }
    }

    #[test]
    fn failed_sessions_report_their_error_without_poisoning_others() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);

        // Session 0 exhausts its single attempt; session 1 succeeds.
        let alice0 = AmplifiedSender::new(1, |_| Ok(Envelope::round(1, "digest", &1u64))).unwrap();
        let bob0: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            1,
            |_, _| Err(ReconError::ChecksumFailure),
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            Exhaust::LastError,
        );
        alice_end.register(0, Role::Alice, alice0).unwrap();
        bob_end.register(0, Role::Bob, bob0).unwrap();
        let (alice1, bob1) = counting_pair(55, 0);
        alice_end.register(1, Role::Alice, alice1).unwrap();
        bob_end.register(1, Role::Bob, bob1).unwrap();

        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        assert!(matches!(bob_end.take_outcome::<u64>(0), Some(Err(ReconError::ChecksumFailure))));
        let ok = bob_end.take_outcome::<u64>(1).unwrap().unwrap();
        assert_eq!(ok.recovered, 55);
    }

    #[test]
    fn duplicate_ids_and_unknown_envelopes_are_rejected() {
        let (ta, _tb) = MemoryTransport::pair();
        let mut end = Endpoint::new(ta);
        let (alice, _) = counting_pair(0, 0);
        end.register(9, Role::Alice, alice).unwrap();
        let (alice, _) = counting_pair(0, 0);
        assert!(end.register(9, Role::Alice, alice).is_err());

        assert!(end.dispatch(Frame::envelope(1234, Envelope::round(1, "m", &0u8))).is_err());
        // A stray Fin for a retired session is tolerated.
        assert!(end.dispatch(Frame::fin(1234)).is_ok());
    }

    #[test]
    fn close_finished_retires_sessions_without_outcomes() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        for id in 0..3u64 {
            let (alice, bob) = counting_pair(id, 0);
            alice_end.register(id, Role::Alice, alice).unwrap();
            bob_end.register(id, Role::Bob, bob).unwrap();
        }
        assert_eq!(alice_end.close_finished(), 0, "nothing finished yet");
        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        assert_eq!(alice_end.close_finished(), 3);
        assert_eq!(alice_end.registered_sessions(), 0);
        // Bob's outcomes are unaffected by Alice's bulk harvest.
        for id in 0..3u64 {
            assert!(bob_end.take_outcome::<u64>(id).unwrap().is_ok());
        }
    }

    #[test]
    fn drive_pair_detects_a_deadlocked_peer() {
        // Bob waits for an Alice that was never registered on the other side:
        // no frame, byte, or finish can ever happen, and the guard must name
        // the stuck session instead of looping forever.
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        let (_, bob) = counting_pair(1, 0);
        bob_end.register(3, Role::Bob, bob).unwrap();
        match drive_pair(&mut alice_end, &mut bob_end) {
            Err(ReconError::SessionStuck { waiting_a, waiting_b }) => {
                assert_eq!(waiting_a, Vec::<SessionId>::new());
                assert_eq!(waiting_b, vec![3]);
            }
            other => panic!("expected SessionStuck naming the session, got {other:?}"),
        }
    }

    #[test]
    fn mutual_integrity_offers_turn_checksums_on() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        let key = 0xC0FFEE_u64;
        alice_end.offer_integrity(key);
        bob_end.offer_integrity(key);
        let (alice, bob) = counting_pair(42, 1);
        alice_end.register(0, Role::Alice, alice).unwrap();
        bob_end.register(0, Role::Bob, bob).unwrap();
        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        let outcome = bob_end.take_outcome::<u64>(0).unwrap().unwrap();
        assert_eq!(outcome.recovered, 43);
        // Stats are metered on envelopes, so trailers don't distort the
        // paper's accounting; only the framed byte counters grow.
        let (alice, bob) = counting_pair(42, 1);
        let solo = crate::session::SessionBuilder::new(0).run(alice, bob).unwrap();
        assert_eq!(outcome.stats, solo.stats);
    }

    #[test]
    fn one_sided_integrity_offer_degrades_to_unchecked() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        alice_end.offer_integrity(5);
        let (alice, bob) = counting_pair(7, 0);
        alice_end.register(0, Role::Alice, alice).unwrap();
        bob_end.register(0, Role::Bob, bob).unwrap();
        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        assert_eq!(bob_end.take_outcome::<u64>(0).unwrap().unwrap().recovered, 7);
    }

    #[test]
    fn session_cap_rejects_registration_with_a_structured_error() {
        let (ta, _tb) = MemoryTransport::pair();
        let mut end = Endpoint::new(ta);
        end.set_max_sessions(2);
        for id in 0..2 {
            let (alice, _) = counting_pair(id, 0);
            end.register(id, Role::Alice, alice).unwrap();
        }
        let (alice, _) = counting_pair(9, 0);
        match end.register(9, Role::Alice, alice) {
            Err(ReconError::ResourceExhausted { what, limit: 2 }) => {
                assert_eq!(what, "sessions per connection");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Retiring a session frees its slot.
        end.close(0).unwrap();
        let (alice, _) = counting_pair(9, 0);
        end.register(9, Role::Alice, alice).unwrap();
    }

    #[test]
    fn poll_ready_drives_a_session_like_poll() {
        let (ta, tb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(ta);
        let mut bob_end = Endpoint::new(tb);
        let (alice, bob) = counting_pair(9, 1);
        alice_end.register(0, Role::Alice, alice).unwrap();
        bob_end.register(0, Role::Bob, bob).unwrap();
        // Memory transports are always "ready" both ways; readiness-driven
        // pumping must converge exactly like Endpoint::poll.
        let mut rounds = 0;
        while bob_end.take_outcome::<u64>(0).is_none() {
            alice_end.poll_ready(true, true).unwrap();
            bob_end.poll_ready(true, true).unwrap();
            rounds += 1;
            assert!(rounds < 64, "poll_ready failed to converge");
        }
        assert!(!alice_end.is_write_blocked(), "memory transport never buffers");
        assert_eq!(alice_end.session_ids(), vec![0]);
        assert_eq!(bob_end.session_ids(), Vec::<SessionId>::new());
    }

    #[test]
    fn sharded_runner_splits_keys_deterministically() {
        let runner = ShardedRunner::new(4, 99);
        for key in 0..1000u64 {
            assert!(runner.shard_of_key(key) < 4);
            assert_eq!(runner.shard_of_key(key), ShardedRunner::new(4, 99).shard_of_key(key));
        }
        // Different seeds shuffle the assignment.
        let other = ShardedRunner::new(4, 100);
        assert!((0..1000u64).any(|k| runner.shard_of_key(k) != other.shard_of_key(k)));
        // Degenerate runner still works.
        assert_eq!(ShardedRunner::new(0, 1).num_shards(), 1);
        assert_eq!(ShardedRunner::new(1, 1).shard_of_key(42), 0);
    }

    #[test]
    fn sharded_runner_runs_pairs_and_merges_stats() {
        let runner = ShardedRunner::new(3, 7);
        let pairs: Vec<_> = (0..3u64).map(|i| counting_pair(i, i % 2)).collect();
        let outcomes = runner.run_pairs(pairs).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.recovered, i as u64 + (i as u64 % 2));
        }
        let per_shard: Vec<CommStats> = outcomes.iter().map(|o| o.stats).collect();
        let merged = ShardedRunner::merge_stats(&per_shard);
        assert_eq!(
            merged.bytes_alice_to_bob,
            per_shard.iter().map(|s| s.bytes_alice_to_bob).sum::<usize>()
        );
        assert_eq!(merged.messages, per_shard.iter().map(|s| s.messages).sum::<usize>());
        assert_eq!(merged.rounds, per_shard.iter().map(|s| s.rounds).max().unwrap());
        assert_eq!(ShardedRunner::merge_stats(&[]), CommStats::default());
    }
}
