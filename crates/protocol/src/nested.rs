//! Embedding one protocol's session inside another's.
//!
//! The graph schemes (Theorems 5.2, 5.6, 6.1) run a complete set-of-sets
//! reconciliation as a sub-step, and the paper charges that sub-step as a single
//! aggregate message ("Alice sends the signatures ... in the same round"). The
//! [`Nested`] wrapper makes that composition mechanical: the embedded party's
//! envelopes flow through the outer session unchanged in *content* (so a real
//! transport still works), but re-metered as control envelopes, while the bytes
//! they would have charged accumulate in the wrapper. When the sub-protocol
//! finishes, the outer protocol emits a single [`Envelope::charge`] for the
//! accumulated total — reproducing exactly the legacy drivers' accounting.

use crate::envelope::{Envelope, Meter, NESTED_TAG_BIT};
use crate::party::{Party, Step};
use recon_base::ReconError;

/// A sub-protocol party embedded inside an outer protocol.
#[derive(Debug)]
pub struct Nested<P> {
    inner: P,
    charged_bytes: usize,
}

impl<P: Party> Nested<P> {
    /// Wrap an inner party.
    pub fn new(inner: P) -> Self {
        Self { inner, charged_bytes: 0 }
    }

    /// Bytes the inner party's envelopes would have charged to the transcript.
    pub fn charged_bytes(&self) -> usize {
        self.charged_bytes
    }

    /// `true` if `envelope` belongs to an embedded sub-protocol.
    pub fn is_nested(envelope: &Envelope) -> bool {
        envelope.tag & NESTED_TAG_BIT != 0
    }

    /// Next envelope from the inner party, re-tagged and re-metered for transit
    /// through the outer session.
    pub fn poll_send(&mut self) -> Option<Envelope> {
        let mut envelope = self.inner.poll_send()?;
        self.charged_bytes += envelope.charged_bytes();
        envelope.tag |= NESTED_TAG_BIT;
        envelope.meter = Meter::Control;
        Some(envelope)
    }

    /// Route a nested envelope to the inner party (the nested tag bit is
    /// stripped first).
    pub fn handle(&mut self, mut envelope: Envelope) -> Result<Step<P::Output>, ReconError> {
        envelope.tag &= !NESTED_TAG_BIT;
        self.inner.handle(envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplify::AmplifiedSender;

    #[test]
    fn nested_rewrites_meter_and_accumulates_bytes() {
        let sender =
            AmplifiedSender::new(2, |attempt| Ok(Envelope::round(3, "digest", &attempt))).unwrap();
        let mut nested = Nested::new(sender);

        let env = nested.poll_send().unwrap();
        assert_eq!(env.tag, 3 | NESTED_TAG_BIT);
        assert!(Nested::<AmplifiedSender>::is_nested(&env));
        assert_eq!(env.meter, Meter::Control);
        assert_eq!(env.charged_bytes(), 0, "in transit the envelope is uncharged");
        assert_eq!(nested.charged_bytes(), 8, "but the wrapper accumulated the cost");

        // Routing a (nested) retry request reaches the inner sender.
        nested.handle(Envelope::control(4 | NESTED_TAG_BIT, "nack", &())).unwrap();
        let retry = nested.poll_send().unwrap();
        assert_eq!(retry.decode_payload::<u64>().unwrap(), 1);
        assert_eq!(nested.charged_bytes(), 16);
    }
}
