//! # recon-protocol
//!
//! The sans-I/O protocol layer of the `recon` workspace: a uniform way to express
//! every reconciliation protocol of *"Reconciling Graphs and Sets of Sets"*
//! (Mitzenmacher & Morgan, PODS 2018) as a pair of [`Party`] state machines
//! exchanging tagged, wire-encoded [`Envelope`]s, driven by a generic [`Session`]
//! over a pluggable [`Link`].
//!
//! The paper presents its results as *message-passing protocols* — explicit
//! rounds, explicit bit budgets, two parties. This crate makes that structure the
//! API:
//!
//! * [`Envelope`] — one message: a tag, a transcript label, a wire-encoded
//!   payload, and a [`Meter`] describing how the message is charged (new round,
//!   parallel, aggregate, or uncharged control traffic).
//! * [`Party`] — one side of a protocol: `poll_send()` and `handle(envelope)`.
//!   No sockets, no transcripts, no shared state: the same machine runs in tests,
//!   across processes, or (later) over async transports.
//! * [`Session`] / [`SessionBuilder`] — the driver: moves envelopes between an
//!   Alice and a Bob until Bob produces his output, returning an [`Outcome`]
//!   with the recovered data and the measured [`CommStats`]. The in-memory
//!   [`MemoryLink`] records into a [`Transcript`], reproducing exactly the
//!   byte/round accounting of the legacy one-shot drivers.
//! * [`Frame`] / [`Transport`] — the multiplexing layer: session-tagged,
//!   length-delimited frames carried by a pluggable byte stream (in-memory,
//!   non-blocking TCP, OS pipes), reassembled by an incremental [`FrameDecoder`].
//! * [`Endpoint`] — the non-blocking driver: many concurrent [`SessionCore`]s
//!   over one framed transport, with per-session transcripts reproducing the
//!   single-session accounting exactly. [`ShardedRunner`] fans a partitioned
//!   workload out across such sessions and merges the per-shard [`CommStats`].
//! * [`amplify`] — the paper's two amplification patterns (replication under
//!   fresh hash functions, repeated doubling of the difference bound) as reusable
//!   party combinators, plus estimator-round helpers.
//! * [`Nested`] — embeds one protocol inside another with aggregate charging,
//!   the way the graph theorems consume set-of-sets reconciliation.
//!
//! The concrete protocol families implement their parties in their own crates
//! (`recon-set`, `recon-sos`, `recon-graph`) on top of this layer.
//!
//! [`CommStats`]: recon_base::CommStats
//! [`Transcript`]: recon_base::Transcript

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplify;
pub mod control;
pub mod endpoint;
pub mod envelope;
pub mod fault;
pub mod frame;
pub mod link;
pub mod nested;
pub mod party;
pub mod pool;
pub mod session;
pub mod transport;

pub use amplify::{AmplifiedReceiver, AmplifiedSender, Deferred, Exhaust, WithPreamble};
pub use control::{ControlFrame, CONTROL_SESSION, TAG_CONTROL_REQUEST, TAG_CONTROL_RESPONSE};
pub use endpoint::{drive_pair, Endpoint, Role, ShardedOutcome, ShardedRunner};
pub use envelope::{Envelope, Meter, NESTED_TAG_BIT};
pub use fault::{FaultProfile, FaultStats, FaultyTransport};
pub use frame::{Frame, FrameBody, FrameDecoder, SessionId};
pub use link::{Link, MemoryLink};
pub use nested::Nested;
pub use party::{Party, Step};
pub use pool::{buffer_pool_stats, BufferPool, BufferPoolStats, ConnBuffers};
pub use session::{Amplification, Outcome, Session, SessionBuilder, SessionConfig, SessionCore};
#[cfg(unix)]
pub use transport::Pollable;
pub use transport::{
    active_io_path, force_sequential_io, sequential_io_forced, MemoryTransport, PipeTransport,
    StreamTransport, Transport,
};
