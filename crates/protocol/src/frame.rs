//! Length-delimited, session-tagged framing for multiplexed transports.
//!
//! A [`Frame`] is what actually travels on a shared byte stream: the id of the
//! session it belongs to plus either one protocol [`Envelope`] or a session
//! control marker ([`FrameBody::Fin`], "this session is finished on my side").
//! Frames let one [`Transport`](crate::Transport) carry many concurrent
//! [`Endpoint`](crate::Endpoint) sessions: the session id routes each envelope
//! to its own party state machine, and the outer length prefix makes the stream
//! self-synchronizing under partial reads.
//!
//! On the wire a frame is `uvarint(body_len) ++ body` where the body is
//! `uvarint(session_id) ++ u8 kind ++ [envelope bytes]`, all encoded through
//! [`recon_base::wire`]. The [`FrameDecoder`] reassembles frames incrementally
//! from arbitrarily chopped byte chunks, distinguishing "need more bytes"
//! (truncation mid-frame) from genuinely malformed input.
//!
//! ## Checked frames
//!
//! A frame may optionally carry a keyed checksum trailer: the kind byte gets
//! the [`FRAME_CHECKED_BIT`] set and the body is followed by 8 little-endian
//! bytes of [`recon_base::hash::hash_bytes`] over everything before the
//! trailer (session id, flagged kind byte, payload), keyed by a value both
//! endpoints agreed on out of band. A corrupted checked frame surfaces as a
//! structured [`ReconError::ChecksumMismatch`] instead of silent garbage or a
//! decode panic deeper in the stack. Checked frames are **off by default**
//! and negotiated per connection via [`FrameBody::Hello`] (see
//! [`Endpoint::offer_integrity`](crate::Endpoint::offer_integrity)), so the
//! wire format is unchanged for endpoints that never opt in.

use crate::envelope::Envelope;
use recon_base::hash::hash_bytes;
use recon_base::wire::{read_uvarint, uvarint_len, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;

/// Identifier of one multiplexed session on a shared transport. Both endpoints
/// of a link must agree on the id when registering the two halves of a session.
pub type SessionId = u64;

/// The content of a frame: a protocol envelope or a session-control marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// One protocol message belonging to the frame's session.
    Envelope(Envelope),
    /// The sending endpoint has finished this session (its party produced its
    /// output or failed terminally). Uncharged, like [`Meter::Control`]
    /// envelopes: coordination the paper's accounting excludes.
    ///
    /// [`Meter::Control`]: crate::Meter::Control
    Fin,
    /// Connection-level handshake, sent (at most once, first) on session id 0.
    /// `checksums: true` offers checked frames; a peer that also offered
    /// enables the checksum trailer on its outgoing frames when it sees this.
    /// Endpoints that never offer send no Hello at all, keeping the wire
    /// byte-identical to pre-handshake versions.
    Hello {
        /// Whether the sender wants checked frames on this connection.
        checksums: bool,
    },
}

/// One unit of a multiplexed byte stream: a session id plus a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Which session the body belongs to.
    pub session_id: SessionId,
    /// The envelope or control marker.
    pub body: FrameBody,
}

impl Frame {
    /// A data frame carrying `envelope` for `session_id`.
    pub fn envelope(session_id: SessionId, envelope: Envelope) -> Self {
        Self { session_id, body: FrameBody::Envelope(envelope) }
    }

    /// A session-finished marker for `session_id`.
    pub fn fin(session_id: SessionId) -> Self {
        Self { session_id, body: FrameBody::Fin }
    }

    /// A connection-level handshake frame (session id 0).
    pub fn hello(checksums: bool) -> Self {
        Self { session_id: 0, body: FrameBody::Hello { checksums } }
    }

    /// Serialize with the outer length prefix, ready for a byte stream.
    pub fn to_wire(&self) -> Vec<u8> {
        let body = self.to_bytes();
        let mut out = Vec::with_capacity(uvarint_len(body.len() as u64) + body.len());
        write_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        out
    }

    /// Append the *checked* body encoding to `buf`: the normal encoding with
    /// [`FRAME_CHECKED_BIT`] set on the kind byte, followed by the 8-byte
    /// little-endian keyed checksum over everything appended before it.
    pub fn encode_checked(&self, buf: &mut Vec<u8>, key: u64) {
        let start = buf.len();
        self.encode(buf);
        let kind_at = start + uvarint_len(self.session_id);
        buf[kind_at] |= FRAME_CHECKED_BIT;
        let checksum = hash_bytes(&buf[start..], key);
        buf.extend_from_slice(&checksum.to_le_bytes());
    }

    /// Serialize the checked encoding with the outer length prefix (which
    /// covers the trailer), ready for a byte stream.
    pub fn to_wire_checked(&self, key: u64) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_checked(&mut body, key);
        let mut out = Vec::with_capacity(uvarint_len(body.len() as u64) + body.len());
        write_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        out
    }
}

const FRAME_KIND_ENVELOPE: u8 = 0;
const FRAME_KIND_FIN: u8 = 1;
const FRAME_KIND_HELLO: u8 = 2;

/// Flag bit on the kind byte marking a frame body that ends with the 8-byte
/// keyed checksum trailer.
pub const FRAME_CHECKED_BIT: u8 = 0x80;

/// Size of the keyed checksum trailer on a checked frame body.
pub const CHECKSUM_TRAILER_BYTES: usize = 8;

impl Encode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.session_id);
        match &self.body {
            FrameBody::Envelope(envelope) => {
                buf.push(FRAME_KIND_ENVELOPE);
                envelope.encode(buf);
            }
            FrameBody::Fin => buf.push(FRAME_KIND_FIN),
            FrameBody::Hello { checksums } => {
                buf.push(FRAME_KIND_HELLO);
                buf.push(u8::from(*checksums));
            }
        }
    }
}

fn decode_frame_kind(kind: u8, buf: &mut &[u8]) -> Result<FrameBody, WireError> {
    Ok(match kind {
        FRAME_KIND_ENVELOPE => FrameBody::Envelope(Envelope::decode(buf)?),
        FRAME_KIND_FIN => FrameBody::Fin,
        FRAME_KIND_HELLO => match u8::decode(buf)? {
            0 => FrameBody::Hello { checksums: false },
            1 => FrameBody::Hello { checksums: true },
            _ => return Err(WireError::Invalid("hello flag")),
        },
        _ => return Err(WireError::Invalid("frame kind")),
    })
}

impl Decode for Frame {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let session_id = read_uvarint(buf)?;
        let kind = u8::decode(buf)?;
        let body = decode_frame_kind(kind, buf)?;
        Ok(Frame { session_id, body })
    }
}

/// Upper bound on a single frame's body. Far above any envelope this workspace
/// produces, but small enough that a corrupted length prefix (which typically
/// decodes to an astronomical value) fails fast instead of making the decoder
/// buffer bytes forever while waiting for a frame that will never complete.
pub const MAX_FRAME_BYTES: usize = 1 << 28; // 256 MiB

/// Capacity (bytes) a drained [`FrameDecoder`] keeps by default. Generous for
/// the workspace's steady-state envelopes, small enough that one oversized
/// frame does not pin megabytes per connection forever.
pub const DECODER_RETAIN_CAP: usize = 64 * 1024;

/// Incremental decoder reassembling [`Frame`]s from a chopped byte stream.
///
/// Feed raw bytes in with [`FrameDecoder::extend`] as they arrive from the
/// transport; [`FrameDecoder::next_frame`] yields complete frames and returns
/// `Ok(None)` while a frame is still truncated. Malformed input (a bad varint,
/// an invalid frame body, trailing garbage inside a frame's length prefix) is
/// a hard [`ReconError::Transport`]: a byte stream that lost sync cannot
/// recover. A length prefix beyond the frame cap ([`MAX_FRAME_BYTES`] by
/// default, [`FrameDecoder::set_max_frame`] to tighten per connection) is a
/// structured [`ReconError::FrameTooLarge`], and a checked frame whose
/// trailer does not match is a [`ReconError::ChecksumMismatch`] (checked
/// frames require a key via [`FrameDecoder::set_integrity_key`]).
///
/// Decoding an oversized frame grows the internal buffer; once every buffered
/// byte has been consumed the buffer is shrunk back to the retain cap
/// ([`DECODER_RETAIN_CAP`] by default, [`FrameDecoder::set_retain_cap`] to
/// tune) so a single outlier frame does not pin its peak capacity for the
/// connection's lifetime.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    retain_cap: usize,
    max_frame: usize,
    integrity_key: Option<u64>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            retain_cap: DECODER_RETAIN_CAP,
            max_frame: MAX_FRAME_BYTES,
            integrity_key: None,
        }
    }
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A decoder reusing `buf` as its backing storage (cleared), e.g. one
    /// checked out of a [`BufferPool`](crate::BufferPool).
    pub fn from_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf, ..Self::default() }
    }

    /// Take the backing buffer out (for return to a pool), leaving the decoder
    /// empty. Any unconsumed bytes are discarded — only call once the
    /// connection is done.
    pub fn take_buffer(&mut self) -> Vec<u8> {
        self.pos = 0;
        std::mem::take(&mut self.buf)
    }

    /// Cap the capacity retained after the buffer fully drains. Oversized
    /// frames still decode (growth is unconditional up to the frame cap);
    /// this only bounds what outlives them.
    pub fn set_retain_cap(&mut self, cap: usize) {
        self.retain_cap = cap;
    }

    /// Tighten the per-frame body cap below [`MAX_FRAME_BYTES`]. A length
    /// prefix beyond the cap fails the connection with
    /// [`ReconError::FrameTooLarge`] *before* any bytes of the claimed body
    /// are buffered — the lever that stops a hostile peer from making a
    /// server allocate the frame it promises but never sends.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max.min(MAX_FRAME_BYTES);
    }

    /// The per-frame body cap currently in force (see [`Self::set_max_frame`]).
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Install (or clear) the key used to verify checked frames. Without a
    /// key, receiving a checked frame is a hard transport error; with one,
    /// unchecked frames are still accepted (negotiation is in flight when the
    /// first checked frames arrive).
    pub fn set_integrity_key(&mut self, key: Option<u64>) {
        self.integrity_key = key;
    }

    /// Current capacity of the internal buffer (test/diagnostic hook).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Append raw bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next complete frame. `Ok(None)` means the buffer holds
    /// only a truncated frame and more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ReconError> {
        let mut cursor = &self.buf[self.pos..];
        let body_len = match read_uvarint(&mut cursor) {
            Ok(len) => len as usize,
            Err(WireError::UnexpectedEnd) => return Ok(None),
            Err(e) => {
                return Err(ReconError::Transport(format!("bad frame length prefix: {e}")));
            }
        };
        if body_len > self.max_frame {
            return Err(ReconError::FrameTooLarge { len: body_len, max: self.max_frame });
        }
        if cursor.len() < body_len {
            return Ok(None);
        }
        let frame = decode_body(&cursor[..body_len], self.integrity_key)?;
        self.pos = self.buf.len() - (cursor.len() - body_len);
        if self.pos == self.buf.len() {
            // Fully drained: reset cheaply, and give back the capacity an
            // oversized frame grew (`shrink_to` is a no-op below the cap).
            self.buf.clear();
            self.pos = 0;
            self.buf.shrink_to(self.retain_cap);
        }
        Ok(Some(frame))
    }
}

/// Decode one complete frame body, verifying the checksum trailer when the
/// kind byte carries [`FRAME_CHECKED_BIT`].
fn decode_body(full: &[u8], key: Option<u64>) -> Result<Frame, ReconError> {
    let malformed = |e: WireError| ReconError::Transport(format!("malformed frame body: {e}"));
    // Peek past the session id at the kind byte to see whether a trailer
    // follows; the cheap unchecked path stays exactly what it was.
    let mut peek = full;
    read_uvarint(&mut peek).map_err(malformed)?;
    let Some(&kind) = peek.first() else {
        return Err(malformed(WireError::UnexpectedEnd));
    };
    if kind & FRAME_CHECKED_BIT == 0 {
        return Frame::from_bytes(full).map_err(malformed);
    }

    let Some(key) = key else {
        return Err(ReconError::Transport(
            "checked frame received but frame integrity was not negotiated".into(),
        ));
    };
    if full.len() < CHECKSUM_TRAILER_BYTES + 2 {
        return Err(ReconError::Transport(
            "checked frame too short for its checksum trailer".into(),
        ));
    }
    let (payload, trailer) = full.split_at(full.len() - CHECKSUM_TRAILER_BYTES);
    let mut got = [0u8; CHECKSUM_TRAILER_BYTES];
    got.copy_from_slice(trailer);
    let got = u64::from_le_bytes(got);
    let expected = hash_bytes(payload, key);
    if expected != got {
        return Err(ReconError::ChecksumMismatch { expected, got });
    }
    // Verified: decode the payload with the checked bit masked off the kind.
    let mut cursor = payload;
    let session_id = read_uvarint(&mut cursor).map_err(malformed)?;
    let kind = u8::decode(&mut cursor).map_err(malformed)? & !FRAME_CHECKED_BIT;
    let body = decode_frame_kind(kind, &mut cursor).map_err(malformed)?;
    if !cursor.is_empty() {
        return Err(malformed(WireError::Invalid("trailing bytes in frame body")));
    }
    Ok(Frame { session_id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::NESTED_TAG_BIT;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::envelope(0, Envelope::round(1, "digest", &vec![1u64, 2, 3])),
            Frame::envelope(7, Envelope::parallel(NESTED_TAG_BIT | 2, "nested", &9u8)),
            Frame::envelope(u64::from(u32::MAX) + 5, Envelope::charge(3, "agg", 4096, true)),
            Frame::fin(7),
        ]
    }

    #[test]
    fn frames_roundtrip_through_the_decoder() {
        let frames = sample_frames();
        let mut decoder = FrameDecoder::new();
        for frame in &frames {
            decoder.extend(&frame.to_wire());
        }
        for expected in &frames {
            assert_eq!(decoder.next_frame().unwrap().as_ref(), Some(expected));
        }
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let frame = Frame::envelope(3, Envelope::round(1, "m", &0xDEADu64));
        let wire = frame.to_wire();
        let mut decoder = FrameDecoder::new();
        for &byte in &wire[..wire.len() - 1] {
            decoder.extend(&[byte]);
            assert_eq!(decoder.next_frame().unwrap(), None, "partial frame must not decode");
        }
        decoder.extend(&wire[wire.len() - 1..]);
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn absurd_length_prefixes_are_hard_errors() {
        // A corrupted prefix claiming a multi-gigabyte frame must error now,
        // not buffer forever while "waiting" for bytes that never come.
        let mut wire = Vec::new();
        write_uvarint(&mut wire, (MAX_FRAME_BYTES as u64) + 1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(
            decoder.next_frame(),
            Err(ReconError::FrameTooLarge { max: MAX_FRAME_BYTES, .. })
        ));
    }

    #[test]
    fn malformed_bodies_are_hard_errors() {
        // A frame body with an invalid kind byte.
        let mut body = Vec::new();
        write_uvarint(&mut body, 1); // session id
        body.push(9); // invalid kind
        let mut wire = Vec::new();
        write_uvarint(&mut wire, body.len() as u64);
        wire.extend_from_slice(&body);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::Transport(_))));
    }

    #[test]
    fn trailing_garbage_inside_the_length_prefix_is_rejected() {
        let frame = Frame::fin(1);
        let mut body = frame.to_bytes();
        body.push(0xFF); // garbage the length prefix claims belongs to the frame
        let mut wire = Vec::new();
        write_uvarint(&mut wire, body.len() as u64);
        wire.extend_from_slice(&body);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::Transport(_))));
    }

    #[test]
    fn checked_frames_roundtrip_and_mix_with_unchecked() {
        let key = 0xFEED_F00D_u64;
        let frames = sample_frames();
        let mut decoder = FrameDecoder::new();
        decoder.set_integrity_key(Some(key));
        // Interleave checked and unchecked encodings of the same frames: a
        // keyed decoder accepts both (negotiation is racing the first data).
        for (i, frame) in frames.iter().enumerate() {
            if i % 2 == 0 {
                decoder.extend(&frame.to_wire_checked(key));
            } else {
                decoder.extend(&frame.to_wire());
            }
        }
        for expected in &frames {
            assert_eq!(decoder.next_frame().unwrap().as_ref(), Some(expected));
        }
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn hello_frames_roundtrip() {
        for checksums in [false, true] {
            let frame = Frame::hello(checksums);
            let mut decoder = FrameDecoder::new();
            decoder.extend(&frame.to_wire());
            assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        }
    }

    #[test]
    fn corrupted_checked_frames_surface_as_checksum_mismatch() {
        let key = 7u64;
        let frame = Frame::envelope(3, Envelope::round(1, "m", &vec![9u64; 16]));
        let wire = frame.to_wire_checked(key);

        // Flip one bit in every body position (skip the length prefix, whose
        // corruption is a different failure) — each must be *detected*.
        let mut body = Vec::new();
        frame.encode_checked(&mut body, key);
        let prefix = wire.len() - body.len();
        for i in prefix..wire.len() {
            let mut corrupt = wire.clone();
            corrupt[i] ^= 1 << (i % 8);
            let mut decoder = FrameDecoder::new();
            decoder.set_integrity_key(Some(key));
            decoder.extend(&corrupt);
            match decoder.next_frame() {
                Err(ReconError::ChecksumMismatch { expected, got }) => assert_ne!(expected, got),
                // Flipping the checked bit itself off routes to the unchecked
                // decoder, which then rejects the trailer as garbage.
                Err(ReconError::Transport(_)) => {}
                other => panic!("corrupted byte {i} not detected: {other:?}"),
            }
        }

        // The wrong key is also a mismatch.
        let mut decoder = FrameDecoder::new();
        decoder.set_integrity_key(Some(key ^ 1));
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::ChecksumMismatch { .. })));
    }

    #[test]
    fn checked_frames_without_a_key_are_rejected() {
        let frame = Frame::fin(2);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&frame.to_wire_checked(11));
        match decoder.next_frame() {
            Err(ReconError::Transport(why)) => assert!(why.contains("integrity")),
            other => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn tightened_frame_cap_is_a_structured_error() {
        let frame = Frame::envelope(1, Envelope::round(1, "m", &vec![1u64; 64]));
        let wire = frame.to_wire();
        let mut decoder = FrameDecoder::new();
        decoder.set_max_frame(16);
        decoder.extend(&wire);
        match decoder.next_frame() {
            Err(ReconError::FrameTooLarge { len, max: 16 }) => assert!(len > 16),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn decoder_releases_peak_capacity_after_an_oversized_frame() {
        // Regression: the buffer used to keep whatever capacity an outlier
        // frame forced, forever. One ~1 MiB frame must not pin ~1 MiB.
        let big = Frame::envelope(1, Envelope::round(1, "bulk", &vec![0xAB_u64; 128 * 1024]));
        let wire = big.to_wire();
        assert!(wire.len() > 1024 * 1024);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(decoder.capacity() >= wire.len());
        assert_eq!(decoder.next_frame().unwrap(), Some(big.clone()));
        assert_eq!(decoder.buffered(), 0);
        assert!(
            decoder.capacity() <= DECODER_RETAIN_CAP,
            "drained decoder retains {} bytes, cap is {DECODER_RETAIN_CAP}",
            decoder.capacity()
        );

        // The cap is configurable, and a shrunk decoder still decodes.
        let mut tight = FrameDecoder::new();
        tight.set_retain_cap(1024);
        tight.extend(&wire);
        assert_eq!(tight.next_frame().unwrap(), Some(big));
        assert!(tight.capacity() <= 1024);
        let small = Frame::fin(4);
        tight.extend(&small.to_wire());
        assert_eq!(tight.next_frame().unwrap(), Some(small));
    }

    #[test]
    fn decoder_buffer_roundtrips_through_a_pool_checkout() {
        let frame = Frame::envelope(9, Envelope::round(1, "m", &vec![5u64; 32]));
        let mut first = FrameDecoder::new();
        first.extend(&frame.to_wire());
        assert_eq!(first.next_frame().unwrap(), Some(frame.clone()));
        let recycled = first.take_buffer();
        let cap = recycled.capacity();
        assert!(cap > 0);

        let mut second = FrameDecoder::from_buffer(recycled);
        assert_eq!(second.capacity(), cap, "from_buffer keeps the capacity");
        assert_eq!(second.buffered(), 0, "from_buffer clears stale contents");
        second.extend(&frame.to_wire());
        assert_eq!(second.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn decoder_compacts_without_losing_data() {
        let frame = Frame::envelope(2, Envelope::round(1, "m", &vec![7u64; 600]));
        let wire = frame.to_wire();
        let mut decoder = FrameDecoder::new();
        for _ in 0..8 {
            decoder.extend(&wire);
        }
        for _ in 0..8 {
            assert_eq!(decoder.next_frame().unwrap().as_ref(), Some(&frame));
        }
        // Everything consumed; extending afterwards triggers the compaction path.
        decoder.extend(&wire);
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        assert_eq!(decoder.next_frame().unwrap(), None);
    }
}
