//! Length-delimited, session-tagged framing for multiplexed transports.
//!
//! A [`Frame`] is what actually travels on a shared byte stream: the id of the
//! session it belongs to plus either one protocol [`Envelope`] or a session
//! control marker ([`FrameBody::Fin`], "this session is finished on my side").
//! Frames let one [`Transport`](crate::Transport) carry many concurrent
//! [`Endpoint`](crate::Endpoint) sessions: the session id routes each envelope
//! to its own party state machine, and the outer length prefix makes the stream
//! self-synchronizing under partial reads.
//!
//! On the wire a frame is `uvarint(body_len) ++ body` where the body is
//! `uvarint(session_id) ++ u8 kind ++ [envelope bytes]`, all encoded through
//! [`recon_base::wire`]. The [`FrameDecoder`] reassembles frames incrementally
//! from arbitrarily chopped byte chunks, distinguishing "need more bytes"
//! (truncation mid-frame) from genuinely malformed input.

use crate::envelope::Envelope;
use recon_base::wire::{read_uvarint, uvarint_len, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;

/// Identifier of one multiplexed session on a shared transport. Both endpoints
/// of a link must agree on the id when registering the two halves of a session.
pub type SessionId = u64;

/// The content of a frame: a protocol envelope or a session-control marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// One protocol message belonging to the frame's session.
    Envelope(Envelope),
    /// The sending endpoint has finished this session (its party produced its
    /// output or failed terminally). Uncharged, like [`Meter::Control`]
    /// envelopes: coordination the paper's accounting excludes.
    ///
    /// [`Meter::Control`]: crate::Meter::Control
    Fin,
}

/// One unit of a multiplexed byte stream: a session id plus a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Which session the body belongs to.
    pub session_id: SessionId,
    /// The envelope or control marker.
    pub body: FrameBody,
}

impl Frame {
    /// A data frame carrying `envelope` for `session_id`.
    pub fn envelope(session_id: SessionId, envelope: Envelope) -> Self {
        Self { session_id, body: FrameBody::Envelope(envelope) }
    }

    /// A session-finished marker for `session_id`.
    pub fn fin(session_id: SessionId) -> Self {
        Self { session_id, body: FrameBody::Fin }
    }

    /// Serialize with the outer length prefix, ready for a byte stream.
    pub fn to_wire(&self) -> Vec<u8> {
        let body = self.to_bytes();
        let mut out = Vec::with_capacity(uvarint_len(body.len() as u64) + body.len());
        write_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        out
    }
}

const FRAME_KIND_ENVELOPE: u8 = 0;
const FRAME_KIND_FIN: u8 = 1;

impl Encode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.session_id);
        match &self.body {
            FrameBody::Envelope(envelope) => {
                buf.push(FRAME_KIND_ENVELOPE);
                envelope.encode(buf);
            }
            FrameBody::Fin => buf.push(FRAME_KIND_FIN),
        }
    }
}

impl Decode for Frame {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let session_id = read_uvarint(buf)?;
        let body = match u8::decode(buf)? {
            FRAME_KIND_ENVELOPE => FrameBody::Envelope(Envelope::decode(buf)?),
            FRAME_KIND_FIN => FrameBody::Fin,
            _ => return Err(WireError::Invalid("frame kind")),
        };
        Ok(Frame { session_id, body })
    }
}

/// Upper bound on a single frame's body. Far above any envelope this workspace
/// produces, but small enough that a corrupted length prefix (which typically
/// decodes to an astronomical value) fails fast instead of making the decoder
/// buffer bytes forever while waiting for a frame that will never complete.
pub const MAX_FRAME_BYTES: usize = 1 << 28; // 256 MiB

/// Capacity (bytes) a drained [`FrameDecoder`] keeps by default. Generous for
/// the workspace's steady-state envelopes, small enough that one oversized
/// frame does not pin megabytes per connection forever.
pub const DECODER_RETAIN_CAP: usize = 64 * 1024;

/// Incremental decoder reassembling [`Frame`]s from a chopped byte stream.
///
/// Feed raw bytes in with [`FrameDecoder::extend`] as they arrive from the
/// transport; [`FrameDecoder::next_frame`] yields complete frames and returns
/// `Ok(None)` while a frame is still truncated. Malformed input (a bad varint,
/// an invalid frame body, trailing garbage inside a frame's length prefix, a
/// length prefix beyond [`MAX_FRAME_BYTES`]) is a hard
/// [`ReconError::Transport`]: a byte stream that lost sync cannot recover.
///
/// Decoding an oversized frame grows the internal buffer; once every buffered
/// byte has been consumed the buffer is shrunk back to the retain cap
/// ([`DECODER_RETAIN_CAP`] by default, [`FrameDecoder::set_retain_cap`] to
/// tune) so a single outlier frame does not pin its peak capacity for the
/// connection's lifetime.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    retain_cap: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self { buf: Vec::new(), pos: 0, retain_cap: DECODER_RETAIN_CAP }
    }
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A decoder reusing `buf` as its backing storage (cleared), e.g. one
    /// checked out of a [`BufferPool`](crate::BufferPool).
    pub fn from_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf, pos: 0, retain_cap: DECODER_RETAIN_CAP }
    }

    /// Take the backing buffer out (for return to a pool), leaving the decoder
    /// empty. Any unconsumed bytes are discarded — only call once the
    /// connection is done.
    pub fn take_buffer(&mut self) -> Vec<u8> {
        self.pos = 0;
        std::mem::take(&mut self.buf)
    }

    /// Cap the capacity retained after the buffer fully drains. Oversized
    /// frames still decode (growth is unconditional up to
    /// [`MAX_FRAME_BYTES`]); this only bounds what outlives them.
    pub fn set_retain_cap(&mut self, cap: usize) {
        self.retain_cap = cap;
    }

    /// Current capacity of the internal buffer (test/diagnostic hook).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Append raw bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next complete frame. `Ok(None)` means the buffer holds
    /// only a truncated frame and more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ReconError> {
        let mut cursor = &self.buf[self.pos..];
        let body_len = match read_uvarint(&mut cursor) {
            Ok(len) => len as usize,
            Err(WireError::UnexpectedEnd) => return Ok(None),
            Err(e) => {
                return Err(ReconError::Transport(format!("bad frame length prefix: {e}")));
            }
        };
        if body_len > MAX_FRAME_BYTES {
            return Err(ReconError::Transport(format!(
                "frame length {body_len} exceeds the {MAX_FRAME_BYTES}-byte cap \
                 (corrupt or desynced stream)"
            )));
        }
        if cursor.len() < body_len {
            return Ok(None);
        }
        let frame = Frame::from_bytes(&cursor[..body_len])
            .map_err(|e| ReconError::Transport(format!("malformed frame body: {e}")))?;
        self.pos = self.buf.len() - (cursor.len() - body_len);
        if self.pos == self.buf.len() {
            // Fully drained: reset cheaply, and give back the capacity an
            // oversized frame grew (`shrink_to` is a no-op below the cap).
            self.buf.clear();
            self.pos = 0;
            self.buf.shrink_to(self.retain_cap);
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::NESTED_TAG_BIT;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::envelope(0, Envelope::round(1, "digest", &vec![1u64, 2, 3])),
            Frame::envelope(7, Envelope::parallel(NESTED_TAG_BIT | 2, "nested", &9u8)),
            Frame::envelope(u64::from(u32::MAX) + 5, Envelope::charge(3, "agg", 4096, true)),
            Frame::fin(7),
        ]
    }

    #[test]
    fn frames_roundtrip_through_the_decoder() {
        let frames = sample_frames();
        let mut decoder = FrameDecoder::new();
        for frame in &frames {
            decoder.extend(&frame.to_wire());
        }
        for expected in &frames {
            assert_eq!(decoder.next_frame().unwrap().as_ref(), Some(expected));
        }
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let frame = Frame::envelope(3, Envelope::round(1, "m", &0xDEADu64));
        let wire = frame.to_wire();
        let mut decoder = FrameDecoder::new();
        for &byte in &wire[..wire.len() - 1] {
            decoder.extend(&[byte]);
            assert_eq!(decoder.next_frame().unwrap(), None, "partial frame must not decode");
        }
        decoder.extend(&wire[wire.len() - 1..]);
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn absurd_length_prefixes_are_hard_errors() {
        // A corrupted prefix claiming a multi-gigabyte frame must error now,
        // not buffer forever while "waiting" for bytes that never come.
        let mut wire = Vec::new();
        write_uvarint(&mut wire, (MAX_FRAME_BYTES as u64) + 1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::Transport(_))));
    }

    #[test]
    fn malformed_bodies_are_hard_errors() {
        // A frame body with an invalid kind byte.
        let mut body = Vec::new();
        write_uvarint(&mut body, 1); // session id
        body.push(9); // invalid kind
        let mut wire = Vec::new();
        write_uvarint(&mut wire, body.len() as u64);
        wire.extend_from_slice(&body);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::Transport(_))));
    }

    #[test]
    fn trailing_garbage_inside_the_length_prefix_is_rejected() {
        let frame = Frame::fin(1);
        let mut body = frame.to_bytes();
        body.push(0xFF); // garbage the length prefix claims belongs to the frame
        let mut wire = Vec::new();
        write_uvarint(&mut wire, body.len() as u64);
        wire.extend_from_slice(&body);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(matches!(decoder.next_frame(), Err(ReconError::Transport(_))));
    }

    #[test]
    fn decoder_releases_peak_capacity_after_an_oversized_frame() {
        // Regression: the buffer used to keep whatever capacity an outlier
        // frame forced, forever. One ~1 MiB frame must not pin ~1 MiB.
        let big = Frame::envelope(1, Envelope::round(1, "bulk", &vec![0xAB_u64; 128 * 1024]));
        let wire = big.to_wire();
        assert!(wire.len() > 1024 * 1024);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(decoder.capacity() >= wire.len());
        assert_eq!(decoder.next_frame().unwrap(), Some(big.clone()));
        assert_eq!(decoder.buffered(), 0);
        assert!(
            decoder.capacity() <= DECODER_RETAIN_CAP,
            "drained decoder retains {} bytes, cap is {DECODER_RETAIN_CAP}",
            decoder.capacity()
        );

        // The cap is configurable, and a shrunk decoder still decodes.
        let mut tight = FrameDecoder::new();
        tight.set_retain_cap(1024);
        tight.extend(&wire);
        assert_eq!(tight.next_frame().unwrap(), Some(big));
        assert!(tight.capacity() <= 1024);
        let small = Frame::fin(4);
        tight.extend(&small.to_wire());
        assert_eq!(tight.next_frame().unwrap(), Some(small));
    }

    #[test]
    fn decoder_buffer_roundtrips_through_a_pool_checkout() {
        let frame = Frame::envelope(9, Envelope::round(1, "m", &vec![5u64; 32]));
        let mut first = FrameDecoder::new();
        first.extend(&frame.to_wire());
        assert_eq!(first.next_frame().unwrap(), Some(frame.clone()));
        let recycled = first.take_buffer();
        let cap = recycled.capacity();
        assert!(cap > 0);

        let mut second = FrameDecoder::from_buffer(recycled);
        assert_eq!(second.capacity(), cap, "from_buffer keeps the capacity");
        assert_eq!(second.buffered(), 0, "from_buffer clears stale contents");
        second.extend(&frame.to_wire());
        assert_eq!(second.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn decoder_compacts_without_losing_data() {
        let frame = Frame::envelope(2, Envelope::round(1, "m", &vec![7u64; 600]));
        let wire = frame.to_wire();
        let mut decoder = FrameDecoder::new();
        for _ in 0..8 {
            decoder.extend(&wire);
        }
        for _ in 0..8 {
            assert_eq!(decoder.next_frame().unwrap().as_ref(), Some(&frame));
        }
        // Everything consumed; extending afterwards triggers the compaction path.
        decoder.extend(&wire);
        assert_eq!(decoder.next_frame().unwrap(), Some(frame));
        assert_eq!(decoder.next_frame().unwrap(), None);
    }
}
