//! Framed byte-stream transports an [`Endpoint`](crate::Endpoint) multiplexes
//! sessions over.
//!
//! Where a [`Link`](crate::Link) observes one session's envelopes for
//! accounting, a [`Transport`] actually *moves* [`Frame`]s — session-tagged,
//! length-delimited envelopes — between two endpoints, and never blocks the
//! event loop: `recv` returns `Ok(None)` when no complete frame has arrived
//! yet. Three implementations cover the deployment spectrum:
//!
//! * [`MemoryTransport`] — a connected in-process pair backed by shared byte
//!   queues. Every frame still round-trips through its full wire encoding, so
//!   tests over this transport exercise the real framing path.
//! * [`StreamTransport`] — wraps any non-blocking `Read`/`Write` pair, e.g. a
//!   `std::net::TcpStream` with `set_nonblocking(true)`. Writes are buffered
//!   and flushed opportunistically so a full socket buffer never wedges the
//!   endpoint.
//! * [`PipeTransport`] — wraps a *blocking* reader (an OS pipe, a child
//!   process's stdout, a blocking socket) by draining it on a background
//!   thread into a channel, preserving the non-blocking `recv` contract.

use crate::frame::{Frame, FrameDecoder};
use crate::pool::ConnBuffers;
use recon_base::wire::Encode;
use recon_base::ReconError;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, IoSliceMut, Read, Write};
use std::rc::Rc;
use std::sync::mpsc;

/// Worst-case length of a frame's uvarint length prefix (a full `u64`). Once a
/// decoder buffers more than `max_frame` plus this, `next_frame` cannot ask
/// for more bytes: it either yields a complete frame or rejects the prefix.
const MAX_PREFIX_BYTES: usize = 10;

/// Force every [`StreamTransport`] onto the sequential (one buffer per
/// syscall) I/O path, process-wide. A thin alias for
/// [`recon_base::config::set_force_sequential_io`]; the
/// `RECON_PROTOCOL_FORCE_SEQ_IO` environment variable does the same without
/// code changes, so CI can exercise the fallback.
pub fn force_sequential_io(force: bool) {
    recon_base::config::set_force_sequential_io(force);
}

/// `true` when vectored I/O is disabled via [`force_sequential_io`] /
/// [`recon_base::config`] or the `RECON_PROTOCOL_FORCE_SEQ_IO` environment
/// variable.
pub fn sequential_io_forced() -> bool {
    recon_base::config::sequential_io_forced()
}

/// Which stream I/O path new transports take: `"vectored"` or `"sequential"`.
pub fn active_io_path() -> &'static str {
    if sequential_io_forced() {
        "sequential"
    } else {
        "vectored"
    }
}

/// A bidirectional, non-blocking carrier of [`Frame`]s.
pub trait Transport {
    /// Queue one frame for transmission to the peer.
    fn send(&mut self, frame: &Frame) -> Result<(), ReconError>;

    /// The next complete frame from the peer, or `Ok(None)` if none has fully
    /// arrived yet. Must never block.
    fn recv(&mut self) -> Result<Option<Frame>, ReconError>;

    /// Push any buffered outgoing bytes toward the peer. Implementations with
    /// unbuffered sends may keep the default no-op.
    fn flush(&mut self) -> Result<(), ReconError> {
        Ok(())
    }

    /// Like [`Transport::recv`], but implementations backed by an OS stream may
    /// gather into multiple buffers per syscall (`readv`). Byte-identical to
    /// `recv` in every observable way — frames, stats, errors — so drivers can
    /// call either; the default simply delegates.
    fn fill_vectored(&mut self) -> Result<Option<Frame>, ReconError> {
        self.recv()
    }

    /// Like [`Transport::flush`], but implementations backed by an OS stream
    /// may scatter the staged output in one syscall (`writev`) instead of one
    /// `write` per contiguous run. Byte-identical to `flush`; the default
    /// delegates.
    fn drain_vectored(&mut self) -> Result<(), ReconError> {
        self.flush()
    }

    /// `true` once the peer can no longer deliver frames (stream closed). A
    /// transport that cannot detect closure may always return `false`.
    fn is_closed(&self) -> bool {
        false
    }

    /// `true` while previously sent frames sit in an internal buffer waiting
    /// for the underlying stream to accept them. A readiness-driven driver
    /// uses this to decide whether to watch the stream for writability;
    /// transports whose `send` delivers immediately keep the default `false`.
    fn has_pending_out(&self) -> bool {
        false
    }

    /// Total framed bytes handed to this transport for sending (wire encoding
    /// included) — the denominator for amortization measurements.
    fn bytes_framed_out(&self) -> u64;

    /// Total framed bytes received from the peer so far.
    fn bytes_framed_in(&self) -> u64;

    /// Install (or clear) the key used to *verify* incoming checked frames
    /// (see [`FrameDecoder::set_integrity_key`]). The default ignores the
    /// call, matching transports with no decoder of their own.
    fn set_integrity_key(&mut self, _key: Option<u64>) {}

    /// Start (or stop) appending the keyed checksum trailer to *outgoing*
    /// frames. Enabled by the endpoint once integrity negotiation completes;
    /// the default ignores the call.
    fn set_checked_out(&mut self, _key: Option<u64>) {}

    /// Tighten the cap on a single incoming frame's body (see
    /// [`FrameDecoder::set_max_frame`]). The default ignores the call.
    fn set_max_frame(&mut self, _max: usize) {}

    /// Queue raw, already-framed wire bytes verbatim — the escape hatch fault
    /// injection uses to deliver deliberately corrupted frames (a corruption
    /// applied *after* any checksum trailer, as a real network would). Honest
    /// code paths never need this; the default declines.
    fn send_wire(&mut self, _bytes: &[u8]) -> Result<(), ReconError> {
        Err(ReconError::Transport("raw wire injection unsupported by this transport".into()))
    }
}

/// Extension for transports backed by OS streams that a readiness poller
/// (epoll / `poll(2)`) can watch.
///
/// The interest contract is fixed by the framing layer: a transport always
/// wants to know when its stream becomes *readable* (a frame may complete at
/// any time), and wants *writability* only while [`Transport::has_pending_out`]
/// reports buffered outgoing bytes — re-arming write interest on an empty
/// buffer would make a level-triggered poller spin, since a healthy socket is
/// almost always writable.
///
/// [`Pollable::read_fd`] and [`Pollable::write_fd`] may name the same
/// descriptor (a socket) or two different ones (a pipe pair); the runtime
/// registers them accordingly.
#[cfg(unix)]
pub trait Pollable {
    /// The raw descriptor readiness-to-read is observed on.
    fn read_fd(&self) -> std::os::fd::RawFd;

    /// The raw descriptor readiness-to-write is observed on. Equal to
    /// [`Pollable::read_fd`] for full-duplex streams like sockets.
    fn write_fd(&self) -> std::os::fd::RawFd;
}

#[cfg(unix)]
impl<R, W> Pollable for StreamTransport<R, W>
where
    R: Read + std::os::fd::AsRawFd,
    W: Write + std::os::fd::AsRawFd,
{
    fn read_fd(&self) -> std::os::fd::RawFd {
        self.reader.as_raw_fd()
    }

    fn write_fd(&self) -> std::os::fd::RawFd {
        self.writer.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// MemoryTransport
// ---------------------------------------------------------------------------

type SharedBytes = Rc<RefCell<VecDeque<u8>>>;

/// One half of an in-process transport pair. Frames are fully wire-encoded into
/// a shared byte queue and re-decoded by the peer's [`FrameDecoder`], so the
/// framing layer is exercised end to end without any OS resources.
#[derive(Debug)]
pub struct MemoryTransport {
    outgoing: SharedBytes,
    incoming: SharedBytes,
    decoder: FrameDecoder,
    checked_key: Option<u64>,
    bytes_out: u64,
    bytes_in: u64,
}

impl MemoryTransport {
    /// A connected pair: frames sent on one half arrive at the other.
    pub fn pair() -> (MemoryTransport, MemoryTransport) {
        let a_to_b: SharedBytes = Rc::default();
        let b_to_a: SharedBytes = Rc::default();
        let a = MemoryTransport {
            outgoing: Rc::clone(&a_to_b),
            incoming: Rc::clone(&b_to_a),
            decoder: FrameDecoder::new(),
            checked_key: None,
            bytes_out: 0,
            bytes_in: 0,
        };
        let b = MemoryTransport {
            outgoing: b_to_a,
            incoming: a_to_b,
            decoder: FrameDecoder::new(),
            checked_key: None,
            bytes_out: 0,
            bytes_in: 0,
        };
        (a, b)
    }
}

impl Transport for MemoryTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), ReconError> {
        let wire = match self.checked_key {
            Some(key) => frame.to_wire_checked(key),
            None => frame.to_wire(),
        };
        self.bytes_out += wire.len() as u64;
        self.outgoing.borrow_mut().extend(wire);
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Frame>, ReconError> {
        {
            let mut incoming = self.incoming.borrow_mut();
            if !incoming.is_empty() {
                let (front, back) = incoming.as_slices();
                self.decoder.extend(front);
                self.decoder.extend(back);
                self.bytes_in += incoming.len() as u64;
                incoming.clear();
            }
        }
        self.decoder.next_frame()
    }

    fn bytes_framed_out(&self) -> u64 {
        self.bytes_out
    }

    fn bytes_framed_in(&self) -> u64 {
        self.bytes_in
    }

    fn set_integrity_key(&mut self, key: Option<u64>) {
        self.decoder.set_integrity_key(key);
    }

    fn set_checked_out(&mut self, key: Option<u64>) {
        self.checked_key = key;
    }

    fn set_max_frame(&mut self, max: usize) {
        self.decoder.set_max_frame(max);
    }

    fn send_wire(&mut self, bytes: &[u8]) -> Result<(), ReconError> {
        self.bytes_out += bytes.len() as u64;
        self.outgoing.borrow_mut().extend(bytes.iter().copied());
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// StreamTransport
// ---------------------------------------------------------------------------

/// A transport over a non-blocking byte stream (e.g. `TcpStream` after
/// `set_nonblocking(true)`, or any `Read`/`Write` pair honoring
/// [`ErrorKind::WouldBlock`]). Outgoing frames are staged in an internal buffer
/// and written as far as the stream accepts on each [`Transport::flush`].
#[derive(Debug)]
pub struct StreamTransport<R, W> {
    reader: R,
    writer: W,
    decoder: FrameDecoder,
    out_buf: VecDeque<u8>,
    scratch: Vec<u8>,
    sequential_io: bool,
    checked_key: Option<u64>,
    max_buffered_out: Option<usize>,
    closed: bool,
    bytes_out: u64,
    bytes_in: u64,
}

impl<R: Read, W: Write> StreamTransport<R, W> {
    /// A transport reading frames from `reader` and writing them to `writer`.
    /// For a `TcpStream`, pass `try_clone()` of the stream as one half.
    pub fn new(reader: R, writer: W) -> Self {
        Self::with_buffers(reader, writer, ConnBuffers::new())
    }

    /// Like [`StreamTransport::new`], but reusing `buffers` — typically a
    /// [`BufferPool`](crate::BufferPool) checkout — as the internal decoder,
    /// output, and scratch storage. Contents are cleared; capacity is reused.
    pub fn with_buffers(reader: R, writer: W, buffers: ConnBuffers) -> Self {
        let ConnBuffers { decoder, mut out, mut scratch } = buffers;
        out.clear();
        scratch.clear();
        Self {
            reader,
            writer,
            decoder: FrameDecoder::from_buffer(decoder),
            out_buf: out,
            scratch,
            sequential_io: false,
            checked_key: None,
            max_buffered_out: None,
            closed: false,
            bytes_out: 0,
            bytes_in: 0,
        }
    }

    /// Extract the internal buffers for return to a pool, leaving this
    /// transport empty. Call once the connection has retired.
    pub fn take_buffers(&mut self) -> ConnBuffers {
        ConnBuffers {
            decoder: self.decoder.take_buffer(),
            out: std::mem::take(&mut self.out_buf),
            scratch: std::mem::take(&mut self.scratch),
        }
    }

    /// Pin *this* transport to the sequential I/O path regardless of the
    /// process-wide [`force_sequential_io`] setting (used by the differential
    /// tests to run one side vectored and the other sequential).
    pub fn set_sequential_io(&mut self, sequential: bool) {
        self.sequential_io = sequential;
    }

    /// Number of staged outgoing bytes the stream has not yet accepted — the
    /// buffered-output state a readiness poller re-arms write interest on.
    pub fn pending_out(&self) -> usize {
        self.out_buf.len()
    }

    /// Cap the staged-output buffer: a send that would push it past `cap`
    /// bytes fails with [`ReconError::ResourceExhausted`] instead of growing
    /// without bound. This is the server-side defense against a peer that
    /// requests data but never reads its socket.
    pub fn set_max_buffered_out(&mut self, cap: usize) {
        self.max_buffered_out = Some(cap);
    }

    fn use_sequential(&self) -> bool {
        self.sequential_io || sequential_io_forced()
    }

    fn reserve_out(&self, additional: usize) -> Result<(), ReconError> {
        match self.max_buffered_out {
            Some(cap) if self.out_buf.len() + additional > cap => {
                Err(ReconError::ResourceExhausted { what: "buffered output bytes", limit: cap })
            }
            _ => Ok(()),
        }
    }
}

fn io_error(context: &str, e: std::io::Error) -> ReconError {
    ReconError::Transport(format!("{context}: {e}"))
}

impl<R: Read, W: Write> Transport for StreamTransport<R, W> {
    fn send(&mut self, frame: &Frame) -> Result<(), ReconError> {
        // Encode into the reused scratch instead of `to_wire()`'s fresh Vec:
        // at steady state a pooled connection sends without allocating.
        self.scratch.clear();
        match self.checked_key {
            Some(key) => frame.encode_checked(&mut self.scratch, key),
            None => frame.encode(&mut self.scratch),
        }
        // LEB128 length prefix on the stack (low 7 bits first, 0x80
        // continuation — the `write_uvarint` encoding).
        let mut prefix = [0u8; 10];
        let mut value = self.scratch.len() as u64;
        let mut len = 0;
        loop {
            let low = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                prefix[len] = low;
                len += 1;
                break;
            }
            prefix[len] = low | 0x80;
            len += 1;
        }
        self.reserve_out(len + self.scratch.len())?;
        self.bytes_out += (len + self.scratch.len()) as u64;
        self.out_buf.extend(&prefix[..len]);
        self.out_buf.extend(&self.scratch);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), ReconError> {
        while !self.out_buf.is_empty() {
            let (front, _) = self.out_buf.as_slices();
            match self.writer.write(front) {
                Ok(0) => return Err(ReconError::Transport("stream closed while writing".into())),
                Ok(n) => {
                    self.out_buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("stream write", e)),
            }
        }
        match self.writer.flush() {
            Ok(()) => Ok(()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => Ok(()),
            Err(e) => Err(io_error("stream flush", e)),
        }
    }

    fn recv(&mut self) -> Result<Option<Frame>, ReconError> {
        let mut scratch = [0u8; 8192];
        while !self.closed {
            match self.reader.read(&mut scratch) {
                Ok(0) => self.closed = true,
                Ok(n) => {
                    self.bytes_in += n as u64;
                    self.decoder.extend(&scratch[..n]);
                    // A peer streaming bytes faster than we hit WouldBlock
                    // would otherwise keep this loop (and the decoder buffer)
                    // growing without the frame cap ever being consulted.
                    // Past one max-size frame plus its length prefix the
                    // decoder must either yield a frame or reject the prefix,
                    // so hand over; the caller loops back for the rest.
                    if self.decoder.buffered() > self.decoder.max_frame() + MAX_PREFIX_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("stream read", e)),
            }
        }
        self.decoder.next_frame()
    }

    /// Gather reads: both 8 KiB scratch segments are offered to one
    /// `read_vectored` call, which is a true `readv` for `TcpStream` and the
    /// runtime's raw-fd wrappers (plain `Read` impls fall back to their
    /// `read`, degrading gracefully to the sequential behaviour).
    fn fill_vectored(&mut self) -> Result<Option<Frame>, ReconError> {
        if self.use_sequential() {
            return self.recv();
        }
        let mut a = [0u8; 8192];
        let mut b = [0u8; 8192];
        while !self.closed {
            let mut bufs = [IoSliceMut::new(&mut a), IoSliceMut::new(&mut b)];
            match self.reader.read_vectored(&mut bufs) {
                Ok(0) => self.closed = true,
                Ok(n) => {
                    self.bytes_in += n as u64;
                    let first = n.min(a.len());
                    self.decoder.extend(&a[..first]);
                    self.decoder.extend(&b[..n - first]);
                    // See `recv`: bound decoder growth against a peer that
                    // outpaces WouldBlock, so the frame cap gets a say.
                    if self.decoder.buffered() > self.decoder.max_frame() + MAX_PREFIX_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("stream read", e)),
            }
        }
        self.decoder.next_frame()
    }

    /// Scatter writes: the output queue's two contiguous runs (a `VecDeque`
    /// wraps) go down in one `write_vectored` call instead of one `write` per
    /// run.
    fn drain_vectored(&mut self) -> Result<(), ReconError> {
        if self.use_sequential() {
            return self.flush();
        }
        while !self.out_buf.is_empty() {
            let (front, back) = self.out_buf.as_slices();
            let bufs = [IoSlice::new(front), IoSlice::new(back)];
            match self.writer.write_vectored(&bufs) {
                Ok(0) => return Err(ReconError::Transport("stream closed while writing".into())),
                Ok(n) => {
                    self.out_buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("stream write", e)),
            }
        }
        match self.writer.flush() {
            Ok(()) => Ok(()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => Ok(()),
            Err(e) => Err(io_error("stream flush", e)),
        }
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn has_pending_out(&self) -> bool {
        !self.out_buf.is_empty()
    }

    fn bytes_framed_out(&self) -> u64 {
        self.bytes_out
    }

    fn bytes_framed_in(&self) -> u64 {
        self.bytes_in
    }

    fn set_integrity_key(&mut self, key: Option<u64>) {
        self.decoder.set_integrity_key(key);
    }

    fn set_checked_out(&mut self, key: Option<u64>) {
        self.checked_key = key;
    }

    fn set_max_frame(&mut self, max: usize) {
        self.decoder.set_max_frame(max);
    }

    fn send_wire(&mut self, bytes: &[u8]) -> Result<(), ReconError> {
        self.reserve_out(bytes.len())?;
        self.bytes_out += bytes.len() as u64;
        self.out_buf.extend(bytes);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// PipeTransport
// ---------------------------------------------------------------------------

/// A transport over a *blocking* reader (OS pipe, child-process stdout, a
/// blocking socket): a background thread performs the blocking reads and ships
/// chunks through a channel, so [`Transport::recv`] stays non-blocking.
#[derive(Debug)]
pub struct PipeTransport<W> {
    chunks: mpsc::Receiver<std::io::Result<Vec<u8>>>,
    writer: W,
    decoder: FrameDecoder,
    checked_key: Option<u64>,
    closed: bool,
    bytes_out: u64,
    bytes_in: u64,
}

impl<W: Write> PipeTransport<W> {
    /// Spawn the reader thread over `reader` and write outgoing frames to
    /// `writer`. The thread exits when the stream closes or errors; after the
    /// transport is dropped it lingers blocked in `read` until the peer's next
    /// write or close, then notices the dropped channel and exits — so tear
    /// the underlying stream down (e.g. kill the child process) to reclaim the
    /// thread promptly.
    pub fn spawn<R: Read + Send + 'static>(reader: R, writer: W) -> Self {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut reader = reader;
            let mut scratch = [0u8; 8192];
            loop {
                match reader.read(&mut scratch) {
                    Ok(0) => break,
                    Ok(n) => {
                        if tx.send(Ok(scratch[..n].to_vec())).is_err() {
                            break; // transport dropped
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        Self {
            chunks: rx,
            writer,
            decoder: FrameDecoder::new(),
            checked_key: None,
            closed: false,
            bytes_out: 0,
            bytes_in: 0,
        }
    }
}

impl<W: Write> Transport for PipeTransport<W> {
    fn send(&mut self, frame: &Frame) -> Result<(), ReconError> {
        let wire = match self.checked_key {
            Some(key) => frame.to_wire_checked(key),
            None => frame.to_wire(),
        };
        self.bytes_out += wire.len() as u64;
        self.writer.write_all(&wire).map_err(|e| io_error("pipe write", e))
    }

    fn flush(&mut self) -> Result<(), ReconError> {
        self.writer.flush().map_err(|e| io_error("pipe flush", e))
    }

    fn recv(&mut self) -> Result<Option<Frame>, ReconError> {
        loop {
            match self.chunks.try_recv() {
                Ok(Ok(chunk)) => {
                    self.bytes_in += chunk.len() as u64;
                    self.decoder.extend(&chunk);
                }
                Ok(Err(e)) => return Err(io_error("pipe read", e)),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.closed = true;
                    break;
                }
            }
        }
        self.decoder.next_frame()
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn bytes_framed_out(&self) -> u64 {
        self.bytes_out
    }

    fn bytes_framed_in(&self) -> u64 {
        self.bytes_in
    }

    fn set_integrity_key(&mut self, key: Option<u64>) {
        self.decoder.set_integrity_key(key);
    }

    fn set_checked_out(&mut self, key: Option<u64>) {
        self.checked_key = key;
    }

    fn set_max_frame(&mut self, max: usize) {
        self.decoder.set_max_frame(max);
    }

    fn send_wire(&mut self, bytes: &[u8]) -> Result<(), ReconError> {
        self.bytes_out += bytes.len() as u64;
        self.writer.write_all(bytes).map_err(|e| io_error("pipe write", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    #[test]
    fn memory_pair_delivers_frames_both_ways() {
        let (mut a, mut b) = MemoryTransport::pair();
        let f1 = Frame::envelope(1, Envelope::round(1, "m", &7u64));
        let f2 = Frame::fin(2);
        a.send(&f1).unwrap();
        b.send(&f2).unwrap();
        assert_eq!(b.recv().unwrap(), Some(f1));
        assert_eq!(a.recv().unwrap(), Some(f2));
        assert_eq!(a.recv().unwrap(), None);
        assert!(a.bytes_framed_out() > 0);
        assert_eq!(a.bytes_framed_out(), b.bytes_framed_in());
        assert_eq!(b.bytes_framed_out(), a.bytes_framed_in());
    }

    #[test]
    fn stream_transport_over_an_in_memory_duplex() {
        // A Read impl that yields WouldBlock once drained, like a nonblocking socket.
        struct ChoppyReader(VecDeque<u8>);
        impl Read for ChoppyReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "drained"));
                }
                let n = buf.len().min(3).min(self.0.len()); // tiny chunks on purpose
                for slot in buf.iter_mut().take(n) {
                    *slot = self.0.pop_front().unwrap();
                }
                Ok(n)
            }
        }

        let frame = Frame::envelope(9, Envelope::round(4, "digest", &vec![1u64, 2, 3]));
        let mut wire = ChoppyReader(frame.to_wire().into_iter().collect());
        // Split delivery across two recv calls to exercise buffering.
        let tail = wire.0.split_off(5);
        let mut transport = StreamTransport::new(wire, Vec::new());
        assert_eq!(transport.recv().unwrap(), None, "first half only: no frame yet");
        transport.reader.0.extend(tail);
        assert_eq!(transport.recv().unwrap(), Some(frame.clone()));

        transport.send(&frame).unwrap();
        transport.flush().unwrap();
        assert_eq!(transport.writer, frame.to_wire());
    }

    #[test]
    fn checked_sends_verify_across_a_memory_pair() {
        let key = 0xA5A5_5A5A_u64;
        let (mut a, mut b) = MemoryTransport::pair();
        a.set_checked_out(Some(key));
        b.set_integrity_key(Some(key));
        let frame = Frame::envelope(4, Envelope::round(1, "m", &31u64));
        a.send(&frame).unwrap();
        assert_eq!(b.recv().unwrap(), Some(frame.clone()));

        // Corrupt one byte on the wire via raw injection: detected, not decoded.
        let mut wire = frame.to_wire_checked(key);
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        a.send_wire(&wire).unwrap();
        assert!(matches!(b.recv(), Err(ReconError::ChecksumMismatch { .. })));
    }

    #[test]
    fn stream_transport_output_cap_is_enforced() {
        let reader = std::io::empty();
        let mut transport = StreamTransport::new(reader, std::io::sink());
        transport.set_max_buffered_out(64);
        let big = Frame::envelope(1, Envelope::round(1, "bulk", &vec![0u64; 64]));
        match transport.send(&big) {
            Err(ReconError::ResourceExhausted { what, limit: 64 }) => {
                assert_eq!(what, "buffered output bytes");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Small frames still fit, and flushing frees the budget for more.
        transport.send(&Frame::fin(1)).unwrap();
        transport.flush().unwrap();
        transport.send(&Frame::fin(2)).unwrap();
    }

    #[test]
    fn pipe_transport_reads_from_a_background_thread() {
        let (read_half, mut write_half) = std::io::pipe().expect("os pipe");
        let frame = Frame::envelope(5, Envelope::round(2, "m", &0xBEEFu64));
        write_half.write_all(&frame.to_wire()).unwrap();
        drop(write_half);

        let mut transport = PipeTransport::spawn(read_half, Vec::new());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match transport.recv().unwrap() {
                Some(received) => {
                    assert_eq!(received, frame);
                    break;
                }
                None => {
                    assert!(std::time::Instant::now() < deadline, "pipe read timed out");
                    std::thread::yield_now();
                }
            }
        }
    }
}
