//! The poll-style [`SessionCore`] state machine, the blocking [`Session`]
//! driver over it, and the [`SessionBuilder`] front-end.
//!
//! [`SessionCore`] wraps one [`Party`] with its completion state: poll it for
//! outgoing envelopes, hand it incoming ones, and collect the output once the
//! party finishes. It is the unit an [`Endpoint`](crate::Endpoint) multiplexes
//! many of over one framed transport. The blocking [`Session::run`] is now a
//! thin wrapper that pumps two cores against each other over a pluggable
//! [`Link`] until Bob produces his output; because the parties are sans-I/O
//! state machines and the link observes every envelope, the in-memory session
//! reproduces byte-for-byte the `CommStats` of the legacy one-shot drivers —
//! which are themselves thin wrappers over this module.

use crate::envelope::Envelope;
use crate::link::{Link, MemoryLink};
use crate::party::Party;
use recon_base::comm::{CommStats, Direction};
use recon_base::ReconError;
use recon_estimator::L0Config;

/// The result of a protocol session: Bob's output plus the measured
/// communication. Replaces the per-family outcome types (`ReconcileOutcome`,
/// `SosOutcome`, the graph crates' `(recovered, stats)` tuples), which are now
/// aliases of this type.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome<T> {
    /// Bob's reconstruction of Alice's data (set, set of sets, graph, forest, …).
    pub recovered: T,
    /// Measured communication and rounds.
    pub stats: CommStats,
}

/// Retry/doubling amplification budget shared by both parties of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Amplification {
    /// Maximum number of digest transmissions (attempts) allowed.
    pub max_attempts: u64,
}

impl Amplification {
    /// Exactly one attempt (protocols that are exact or verified end-to-end).
    pub fn single() -> Self {
        Self { max_attempts: 1 }
    }

    /// Up to `attempts` replicated attempts under independent hash functions
    /// (Section 3.2's replication-based amplification).
    pub fn replicate(attempts: u64) -> Self {
        Self { max_attempts: attempts.max(1) }
    }

    /// Repeated doubling from `start` while the doubled bound stays within
    /// `limit` (the Corollary 3.6/3.8 pattern: `d = start, 2·start, 4·start, …`).
    pub fn doubling(start: usize, limit: usize) -> Self {
        let mut attempts = 0u64;
        let mut bound = start.max(1) as u128;
        while bound <= limit as u128 {
            attempts += 1;
            bound *= 2;
        }
        Self { max_attempts: attempts.max(1) }
    }
}

impl Default for Amplification {
    fn default() -> Self {
        Self::replicate(3)
    }
}

/// Shared configuration both parties of a session are constructed from: the
/// public-coin seed, the amplification policy and the difference-estimator
/// shape. Party factories derive their per-role seeds from `seed` exactly as
/// the legacy drivers did, so a given configuration reproduces a given
/// transcript bit-for-bit.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Public-coin seed shared by Alice and Bob.
    pub seed: u64,
    /// Retry/doubling budget.
    pub amplification: Amplification,
    /// Base shape of the ℓ0 difference estimator used by unknown-`d` protocols
    /// (each protocol re-seeds it from `seed`; the shape fields are what matter).
    pub estimator: L0Config,
}

/// Builder for protocol sessions: seeds, amplification policy and estimator
/// configuration, plus the entry point that actually drives a party pair.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: SessionConfig,
}

impl SessionBuilder {
    /// A builder with the given public-coin seed and default policy.
    pub fn new(seed: u64) -> Self {
        Self {
            config: SessionConfig {
                seed,
                amplification: Amplification::default(),
                estimator: L0Config::default(),
            },
        }
    }

    /// Set the amplification policy.
    pub fn amplification(mut self, amplification: Amplification) -> Self {
        self.config.amplification = amplification;
        self
    }

    /// Set the difference-estimator shape.
    pub fn estimator(mut self, estimator: L0Config) -> Self {
        self.config.estimator = estimator;
        self
    }

    /// The configuration party factories consume.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Drive `alice` and `bob` over an in-memory link and return Bob's output
    /// with the measured communication.
    pub fn run<A: Party, B: Party>(
        &self,
        alice: A,
        bob: B,
    ) -> Result<Outcome<B::Output>, ReconError> {
        let mut link = MemoryLink::new();
        let recovered = Session::new(&mut link).run(alice, bob)?;
        Ok(Outcome { recovered, stats: link.stats() })
    }
}

/// One side of a session as a non-blocking state machine: a [`Party`] plus its
/// completion state. Drivers — the blocking [`Session::run`] loop, an
/// [`Endpoint`](crate::Endpoint) multiplexing many sessions over one framed
/// transport — poll it for outgoing envelopes and feed it incoming ones; once
/// the party reports [`Step::Done`](crate::Step::Done) the core stops sending and holds the output
/// until it is taken.
#[derive(Debug)]
pub struct SessionCore<P: Party> {
    party: P,
    output: Option<P::Output>,
    done: bool,
}

impl<P: Party> SessionCore<P> {
    /// Wrap a party in its session state machine.
    pub fn new(party: P) -> Self {
        Self { party, output: None, done: false }
    }

    /// The next envelope to transmit, if any. A finished core never sends —
    /// mirroring the blocking driver, which stops pumping the moment the
    /// receiving party completes.
    pub fn poll_send(&mut self) -> Option<Envelope> {
        if self.done {
            return None;
        }
        self.party.poll_send()
    }

    /// Feed one incoming envelope to the party. Returns `true` if this envelope
    /// completed the session. Envelopes arriving after completion are dropped
    /// (a multiplexed peer may have frames in flight when the party finishes).
    pub fn handle(&mut self, envelope: Envelope) -> Result<bool, ReconError> {
        if self.done {
            return Ok(false);
        }
        match self.party.handle(envelope)? {
            crate::party::Step::Continue => Ok(false),
            crate::party::Step::Done(output) => {
                self.output = Some(output);
                self.done = true;
                Ok(true)
            }
        }
    }

    /// `true` once the party has produced its output.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The output, once produced (consumes it; subsequent calls return `None`).
    pub fn take_output(&mut self) -> Option<P::Output> {
        self.output.take()
    }
}

/// A two-party protocol session over a pluggable link.
#[derive(Debug)]
pub struct Session<L: Link> {
    link: L,
    delivered: usize,
}

impl<L: Link> Session<L> {
    /// A session transporting envelopes through `link`.
    pub fn new(link: L) -> Self {
        Self { link, delivered: 0 }
    }

    /// Number of envelopes delivered so far (metered or not).
    pub fn messages_delivered(&self) -> usize {
        self.delivered
    }

    /// Drive the party pair to completion: poll each side for outgoing envelopes,
    /// deliver them through the link, and hand them to the other side, until Bob
    /// returns [`Step::Done`](crate::Step::Done). Alice's completion (if any) is implicit — per the
    /// paper's one-way convention she never learns whether Bob succeeded unless
    /// the protocol itself sends an acknowledgement.
    pub fn run<A: Party, B: Party>(&mut self, alice: A, bob: B) -> Result<B::Output, ReconError> {
        let mut alice = SessionCore::new(alice);
        let mut bob = SessionCore::new(bob);
        loop {
            let mut progressed = false;
            while let Some(envelope) = alice.poll_send() {
                progressed = true;
                self.link.deliver(Direction::AliceToBob, &envelope)?;
                self.delivered += 1;
                if bob.handle(envelope)? {
                    return Ok(bob.take_output().expect("completed session has an output"));
                }
            }
            while let Some(envelope) = bob.poll_send() {
                progressed = true;
                self.link.deliver(Direction::BobToAlice, &envelope)?;
                self.delivered += 1;
                alice.handle(envelope)?;
            }
            if !progressed {
                return Err(ReconError::SessionStalled { messages_exchanged: self.delivered });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
    use crate::party::Step;

    #[test]
    fn amplification_budgets() {
        assert_eq!(Amplification::single().max_attempts, 1);
        assert_eq!(Amplification::replicate(3).max_attempts, 3);
        assert_eq!(Amplification::replicate(0).max_attempts, 1);
        // 1, 2, 4, 8, 16 ≤ 20 < 32 → 5 attempts.
        assert_eq!(Amplification::doubling(1, 20).max_attempts, 5);
        assert_eq!(Amplification::doubling(2, 1).max_attempts, 1);
    }

    #[test]
    fn builder_runs_a_retrying_pair_and_measures_it() {
        let alice =
            AmplifiedSender::new(3, |attempt| Ok(Envelope::round(1, "digest", &attempt))).unwrap();
        let bob: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            3,
            |attempt, env| {
                if attempt < 2 {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "nack", &()),
            Exhaust::LastError,
        );
        let outcome = SessionBuilder::new(7).run(alice, bob).unwrap();
        assert_eq!(outcome.recovered, 2);
        // Three digests of 8 bytes; control NACKs are neither counted nor rounded.
        assert_eq!(outcome.stats.rounds, 3);
        assert_eq!(outcome.stats.messages, 3);
        assert_eq!(outcome.stats.bytes_alice_to_bob, 24);
        assert_eq!(outcome.stats.bytes_bob_to_alice, 0);
    }

    #[test]
    fn stalled_sessions_error_out() {
        struct Mute;
        impl Party for Mute {
            type Output = ();
            fn poll_send(&mut self) -> Option<Envelope> {
                None
            }
            fn handle(&mut self, _envelope: Envelope) -> Result<Step<()>, ReconError> {
                Ok(Step::Continue)
            }
        }
        let result = SessionBuilder::new(1).run(Mute, Mute);
        assert!(matches!(result, Err(ReconError::SessionStalled { messages_exchanged: 0 })));
    }
}
