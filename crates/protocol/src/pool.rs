//! Reusable per-connection buffer sets, pooled per reactor.
//!
//! Every [`StreamTransport`](crate::StreamTransport) owns three growable
//! buffers: the frame-decoder backing store, the outbound byte queue, and an
//! encode scratch. Allocating them fresh per connection is invisible at small
//! scale but dominates the allocator profile when a server churns thousands of
//! short sessions. A [`BufferPool`] keeps the buffer sets of retired
//! connections and hands them to new ones, so steady-state serving performs
//! zero buffer allocations — pinned by tests through the process-wide
//! [`buffer_pool_stats`] counters (same idiom as
//! `recon_set::full_digest_builds`).
//!
//! The pool is deliberately not a global: each reactor (each server worker)
//! owns one, so checkouts are unsynchronized and buffers stay on the thread
//! that warmed them. Only the observability counters are process-wide.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static POOL_RETURNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide pool counters; see [`buffer_pool_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Checkouts served from a pooled buffer set (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer set.
    pub misses: u64,
    /// Buffer sets returned to a pool on connection retire.
    pub returned: u64,
}

impl BufferPoolStats {
    /// Buffer sets currently checked out (or dropped without return).
    pub fn outstanding(&self) -> u64 {
        (self.hits + self.misses).saturating_sub(self.returned)
    }
}

/// Cumulative checkout/return counters across every [`BufferPool`] in the
/// process. Tests snapshot this around a serving burst to pin "zero new
/// allocations at steady state": after warm-up, `misses` must not move.
pub fn buffer_pool_stats() -> BufferPoolStats {
    BufferPoolStats {
        hits: POOL_HITS.load(Ordering::Relaxed),
        misses: POOL_MISSES.load(Ordering::Relaxed),
        returned: POOL_RETURNS.load(Ordering::Relaxed),
    }
}

/// The reusable buffer set behind one connection's transport: frame-decoder
/// backing store, outbound byte queue, and encode scratch.
#[derive(Debug, Default)]
pub struct ConnBuffers {
    pub(crate) decoder: Vec<u8>,
    pub(crate) out: VecDeque<u8>,
    pub(crate) scratch: Vec<u8>,
}

impl ConnBuffers {
    /// An empty buffer set (what a pool miss allocates).
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.decoder.clear();
        self.out.clear();
        self.scratch.clear();
    }
}

/// An unsynchronized free list of [`ConnBuffers`], one per reactor.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<ConnBuffers>,
    max_idle: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Idle buffer sets kept by default — above any per-worker connection
    /// count the serving benches reach, so steady state never re-allocates.
    pub const DEFAULT_MAX_IDLE: usize = 1024;

    /// An empty pool retaining up to [`BufferPool::DEFAULT_MAX_IDLE`] sets.
    pub fn new() -> Self {
        Self::with_max_idle(Self::DEFAULT_MAX_IDLE)
    }

    /// An empty pool retaining at most `max_idle` buffer sets; returns beyond
    /// that are dropped (the pool sheds capacity after a burst).
    pub fn with_max_idle(max_idle: usize) -> Self {
        Self { free: Vec::new(), max_idle }
    }

    /// Buffer sets currently idle in this pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Take a buffer set, reusing a retired one when available.
    pub fn checkout(&mut self) -> ConnBuffers {
        match self.free.pop() {
            Some(buffers) => {
                POOL_HITS.fetch_add(1, Ordering::Relaxed);
                buffers
            }
            None => {
                POOL_MISSES.fetch_add(1, Ordering::Relaxed);
                ConnBuffers::new()
            }
        }
    }

    /// Return a buffer set for reuse. Contents are cleared; capacity is kept
    /// (the frame decoder already shrank itself to its retain cap on drain).
    pub fn put_back(&mut self, mut buffers: ConnBuffers) {
        POOL_RETURNS.fetch_add(1, Ordering::Relaxed);
        if self.free.len() >= self.max_idle {
            return;
        }
        buffers.clear();
        self.free.push(buffers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_capacity_and_counts() {
        let before = buffer_pool_stats();
        let mut pool = BufferPool::with_max_idle(2);

        let mut first = pool.checkout();
        first.decoder.extend_from_slice(&[1, 2, 3]);
        first.out.extend([4, 5]);
        first.scratch.extend_from_slice(&[6]);
        let cap = first.decoder.capacity();
        assert!(cap >= 3);
        pool.put_back(first);
        assert_eq!(pool.idle(), 1);

        let second = pool.checkout();
        assert_eq!(second.decoder.capacity(), cap, "capacity survives the pool");
        assert!(second.decoder.is_empty() && second.out.is_empty() && second.scratch.is_empty());

        let after = buffer_pool_stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.returned - before.returned, 1);
    }

    #[test]
    fn pool_sheds_returns_beyond_max_idle() {
        let mut pool = BufferPool::with_max_idle(1);
        let (a, b) = (pool.checkout(), pool.checkout());
        pool.put_back(a);
        pool.put_back(b);
        assert_eq!(pool.idle(), 1, "second return is dropped, not hoarded");
    }
}
