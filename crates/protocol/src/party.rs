//! The [`Party`] state-machine trait: one side of a two-party protocol, with all
//! I/O hoisted out.
//!
//! A party never touches a socket, a transcript or the other party directly. It
//! exposes exactly two operations — "do you have a message to send?" and "here is
//! a message for you" — and the [`Session`](crate::Session) driver (or any custom
//! transport loop) moves [`Envelope`]s between the two parties. This is the sans-I/O
//! pattern: the same state machines run in-memory for tests and benchmarks, over a
//! serialized byte stream between processes, or (later) over an async network
//! transport, without any change to the protocol logic.

use crate::envelope::Envelope;
use recon_base::ReconError;

/// The result of handling one incoming envelope.
#[derive(Debug)]
pub enum Step<T> {
    /// The party consumed the message and the protocol continues; the party may now
    /// have new messages queued for [`Party::poll_send`].
    Continue,
    /// The party has finished and produced its output. For a reconciliation
    /// protocol this is Bob's recovered copy of Alice's data.
    Done(T),
}

/// One side of a two-party, message-passing reconciliation protocol.
pub trait Party {
    /// The value this party produces when it completes. The party whose data is
    /// being recovered (Alice, by the paper's convention) typically uses `()`.
    type Output;

    /// The next envelope this party wants transmitted, if any. Called repeatedly
    /// until it returns `None`; envelopes must be produced in sending order.
    fn poll_send(&mut self) -> Option<Envelope>;

    /// Handle an envelope from the other party.
    fn handle(&mut self, envelope: Envelope) -> Result<Step<Self::Output>, ReconError>;
}

impl<P: Party + ?Sized> Party for &mut P {
    type Output = P::Output;

    fn poll_send(&mut self) -> Option<Envelope> {
        (**self).poll_send()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<Self::Output>, ReconError> {
        (**self).handle(envelope)
    }
}

impl<P: Party + ?Sized> Party for Box<P> {
    type Output = P::Output;

    fn poll_send(&mut self) -> Option<Envelope> {
        (**self).poll_send()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<Self::Output>, ReconError> {
        (**self).handle(envelope)
    }
}
