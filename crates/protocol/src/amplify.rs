//! Reusable party state machines for the paper's two amplification patterns.
//!
//! Nearly every one-round protocol in the paper is amplified the same way: Alice
//! transmits a digest, Bob attempts to decode, and on a (detectable) failure the
//! pair moves to the next attempt — either a replica under fresh hash functions
//! (Section 3.2's replication) or a digest resized for a doubled difference bound
//! (Corollaries 3.6/3.8). [`AmplifiedSender`] and [`AmplifiedReceiver`] capture
//! that loop once, as a `Party` pair, parameterized by closures that build and
//! decode the per-attempt digest. [`WithPreamble`] and [`Deferred`] bolt an
//! estimator round (Corollary 3.2 / Theorem 3.4) in front of an amplified pair.

use crate::envelope::Envelope;
use crate::party::{Party, Step};
use recon_base::ReconError;
use std::collections::VecDeque;

/// Builds the envelope for attempt `k` (0-based).
pub type MakeEnvelope = Box<dyn FnMut(u64) -> Result<Envelope, ReconError> + Send>;

/// Attempts to decode the envelope of attempt `k` into the protocol output.
pub type DecodeEnvelope<T> = Box<dyn FnMut(u64, Envelope) -> Result<T, ReconError> + Send>;

/// How an [`AmplifiedReceiver`] reports failure once every attempt is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaust {
    /// Surface the last attempt's error (the replication drivers' behavior).
    LastError,
    /// Surface [`ReconError::RetriesExhausted`] (the doubling drivers' behavior).
    RetriesExhausted,
}

/// The sending half of an amplified one-round protocol: emits the attempt-0
/// digest immediately and a fresh digest for every retry request received.
pub struct AmplifiedSender {
    make: MakeEnvelope,
    queued: Option<Envelope>,
    attempt: u64,
    max_attempts: u64,
}

impl AmplifiedSender {
    /// Create the sender; the attempt-0 envelope is built eagerly so digest
    /// construction errors surface before any message is transmitted, exactly as
    /// in the legacy drivers.
    pub fn new(
        max_attempts: u64,
        mut make: impl FnMut(u64) -> Result<Envelope, ReconError> + Send + 'static,
    ) -> Result<Self, ReconError> {
        let first = make(0)?;
        Ok(Self { make: Box::new(make), queued: Some(first), attempt: 0, max_attempts })
    }
}

impl std::fmt::Debug for AmplifiedSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmplifiedSender")
            .field("attempt", &self.attempt)
            .field("max_attempts", &self.max_attempts)
            .finish_non_exhaustive()
    }
}

impl Party for AmplifiedSender {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.queued.take()
    }

    fn handle(&mut self, _envelope: Envelope) -> Result<Step<()>, ReconError> {
        // Any incoming envelope is the receiver's request for the next attempt.
        self.attempt += 1;
        if self.attempt < self.max_attempts {
            self.queued = Some((self.make)(self.attempt)?);
        }
        Ok(Step::Continue)
    }
}

/// The receiving half of an amplified one-round protocol: decodes each digest,
/// requesting another attempt on retryable failures until the budget runs out.
pub struct AmplifiedReceiver<T> {
    decode: DecodeEnvelope<T>,
    retryable: fn(&ReconError) -> bool,
    nack: Box<dyn Fn(u64) -> Envelope + Send>,
    exhaust: Exhaust,
    attempt: u64,
    max_attempts: u64,
    outbox: VecDeque<Envelope>,
}

impl<T> AmplifiedReceiver<T> {
    /// Create the receiver. `nack` builds the retry-request envelope sent after
    /// failed attempt `k`: an uncharged [`Envelope::control`] for replication
    /// (the paper's replicas are conceptually sent together, so the retry signal
    /// is free), or a metered message (e.g. the 1-byte NACK of Corollary 3.6)
    /// when the doubling round-trip is part of the protocol's round count.
    ///
    /// On the final failed attempt no retry request is sent and the error is
    /// reported according to `exhaust`.
    pub fn new(
        max_attempts: u64,
        decode: impl FnMut(u64, Envelope) -> Result<T, ReconError> + Send + 'static,
        retryable: fn(&ReconError) -> bool,
        nack: impl Fn(u64) -> Envelope + Send + 'static,
        exhaust: Exhaust,
    ) -> Self {
        Self {
            decode: Box::new(decode),
            retryable,
            nack: Box::new(nack),
            exhaust,
            attempt: 0,
            max_attempts,
            outbox: VecDeque::new(),
        }
    }
}

impl<T> std::fmt::Debug for AmplifiedReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmplifiedReceiver")
            .field("attempt", &self.attempt)
            .field("max_attempts", &self.max_attempts)
            .field("exhaust", &self.exhaust)
            .finish_non_exhaustive()
    }
}

impl<T> Party for AmplifiedReceiver<T> {
    type Output = T;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<T>, ReconError> {
        let attempt = self.attempt;
        match (self.decode)(attempt, envelope) {
            Ok(output) => Ok(Step::Done(output)),
            Err(error) if (self.retryable)(&error) => {
                self.attempt += 1;
                if self.attempt < self.max_attempts {
                    self.outbox.push_back((self.nack)(attempt));
                    Ok(Step::Continue)
                } else {
                    match self.exhaust {
                        Exhaust::LastError => Err(error),
                        Exhaust::RetriesExhausted => {
                            Err(ReconError::RetriesExhausted { attempts: self.attempt as usize })
                        }
                    }
                }
            }
            Err(error) => Err(error),
        }
    }
}

/// Wraps a party so that a fixed sequence of envelopes (e.g. a difference
/// estimator) is sent before the inner party's own messages.
#[derive(Debug)]
pub struct WithPreamble<P> {
    preamble: VecDeque<Envelope>,
    inner: P,
}

impl<P> WithPreamble<P> {
    /// Send `preamble` (in order), then behave exactly like `inner`.
    pub fn new(preamble: impl IntoIterator<Item = Envelope>, inner: P) -> Self {
        Self { preamble: preamble.into_iter().collect(), inner }
    }
}

impl<P: Party> Party for WithPreamble<P> {
    type Output = P::Output;

    fn poll_send(&mut self) -> Option<Envelope> {
        self.preamble.pop_front().or_else(|| self.inner.poll_send())
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<P::Output>, ReconError> {
        self.inner.handle(envelope)
    }
}

enum DeferredState<P> {
    Waiting(Box<dyn FnOnce(Envelope) -> Result<P, ReconError> + Send>),
    Ready(P),
    Poisoned,
}

/// A party whose real state machine can only be built once the first envelope
/// arrives — the shape of every unknown-`d` Alice, who must see Bob's difference
/// estimator before she can size her digests.
pub struct Deferred<P> {
    state: DeferredState<P>,
}

impl<P> Deferred<P> {
    /// Build the inner party from the first incoming envelope via `init`.
    pub fn new(init: impl FnOnce(Envelope) -> Result<P, ReconError> + Send + 'static) -> Self {
        Self { state: DeferredState::Waiting(Box::new(init)) }
    }
}

impl<P> std::fmt::Debug for Deferred<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state {
            DeferredState::Waiting(_) => "waiting",
            DeferredState::Ready(_) => "ready",
            DeferredState::Poisoned => "poisoned",
        };
        f.debug_struct("Deferred").field("state", &state).finish()
    }
}

impl<P: Party> Party for Deferred<P> {
    type Output = P::Output;

    fn poll_send(&mut self) -> Option<Envelope> {
        match &mut self.state {
            DeferredState::Ready(inner) => inner.poll_send(),
            _ => None,
        }
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<P::Output>, ReconError> {
        match std::mem::replace(&mut self.state, DeferredState::Poisoned) {
            DeferredState::Waiting(init) => {
                self.state = DeferredState::Ready(init(envelope)?);
                Ok(Step::Continue)
            }
            DeferredState::Ready(mut inner) => {
                let step = inner.handle(envelope);
                self.state = DeferredState::Ready(inner);
                step
            }
            DeferredState::Poisoned => Err(ReconError::InvalidInput(
                "deferred party used after initialization failure".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retry_all(_: &ReconError) -> bool {
        true
    }

    #[test]
    fn sender_replays_on_request_until_budget() {
        let mut sender =
            AmplifiedSender::new(3, |attempt| Ok(Envelope::round(1, "digest", &attempt))).unwrap();
        assert_eq!(sender.poll_send().unwrap().decode_payload::<u64>().unwrap(), 0);
        assert!(sender.poll_send().is_none());
        sender.handle(Envelope::control(2, "nack", &())).unwrap();
        assert_eq!(sender.poll_send().unwrap().decode_payload::<u64>().unwrap(), 1);
        sender.handle(Envelope::control(2, "nack", &())).unwrap();
        assert_eq!(sender.poll_send().unwrap().decode_payload::<u64>().unwrap(), 2);
        sender.handle(Envelope::control(2, "nack", &())).unwrap();
        assert!(sender.poll_send().is_none(), "budget exhausted");
    }

    #[test]
    fn receiver_nacks_then_succeeds() {
        let mut receiver: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            3,
            |attempt, env| {
                let value = env.decode_payload::<u64>()?;
                if attempt < 1 {
                    Err(ReconError::ChecksumFailure)
                } else {
                    Ok(value)
                }
            },
            retry_all,
            |_| Envelope::control(2, "nack", &()),
            Exhaust::LastError,
        );
        assert!(matches!(
            receiver.handle(Envelope::round(1, "digest", &7u64)).unwrap(),
            Step::Continue
        ));
        assert!(receiver.poll_send().is_some());
        assert!(matches!(
            receiver.handle(Envelope::round(1, "digest", &9u64)).unwrap(),
            Step::Done(9)
        ));
    }

    #[test]
    fn receiver_exhaustion_policies() {
        let fail =
            |_: u64, _: Envelope| -> Result<u64, ReconError> { Err(ReconError::ChecksumFailure) };
        let mut last_error: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            1,
            fail,
            retry_all,
            |_| Envelope::control(2, "nack", &()),
            Exhaust::LastError,
        );
        assert!(matches!(
            last_error.handle(Envelope::round(1, "d", &0u64)),
            Err(ReconError::ChecksumFailure)
        ));

        let mut retries: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            2,
            fail,
            retry_all,
            |_| Envelope::control(2, "nack", &()),
            Exhaust::RetriesExhausted,
        );
        assert!(matches!(retries.handle(Envelope::round(1, "d", &0u64)).unwrap(), Step::Continue));
        assert!(matches!(
            retries.handle(Envelope::round(1, "d", &0u64)),
            Err(ReconError::RetriesExhausted { attempts: 2 })
        ));
    }

    #[test]
    fn receiver_fatal_errors_do_not_retry() {
        let mut receiver: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            3,
            |_, _| Err(ReconError::InterpolationFailure),
            |e| matches!(e, ReconError::ChecksumFailure),
            |_| Envelope::control(2, "nack", &()),
            Exhaust::LastError,
        );
        assert!(matches!(
            receiver.handle(Envelope::round(1, "d", &0u64)),
            Err(ReconError::InterpolationFailure)
        ));
        assert!(receiver.poll_send().is_none());
    }

    #[test]
    fn preamble_and_deferred_compose() {
        let bob_inner: AmplifiedReceiver<u64> = AmplifiedReceiver::new(
            1,
            |_, env| env.decode_payload::<u64>(),
            retry_all,
            |_| Envelope::control(2, "nack", &()),
            Exhaust::LastError,
        );
        let mut bob = WithPreamble::new([Envelope::round(3, "estimator", &41u64)], bob_inner);
        let mut alice = Deferred::new(move |env: Envelope| {
            let estimate = env.decode_payload::<u64>()?;
            AmplifiedSender::new(1, move |_| Ok(Envelope::round(1, "digest", &(estimate + 1))))
        });

        // Bob speaks first; Alice defers until the estimator arrives.
        assert!(alice.poll_send().is_none());
        let estimator = bob.poll_send().unwrap();
        assert!(matches!(alice.handle(estimator).unwrap(), Step::Continue));
        let digest = alice.poll_send().unwrap();
        assert!(matches!(bob.handle(digest).unwrap(), Step::Done(42)));
    }
}
