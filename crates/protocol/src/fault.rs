//! Deterministic fault injection for hostile-network testing.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and corrupts the *wire bytes*
//! between the endpoint and the real carrier, driven by a seeded
//! [`FaultProfile`]: dropped frames, duplicated frames, single-bit flips,
//! cross-session reordering, and latency/bandwidth shaping. The same seed
//! reproduces the same mishaps byte for byte, so every hostile-network test
//! in this workspace is as deterministic as the protocols themselves.
//!
//! Two design points keep the faults *realistic* rather than merely chaotic:
//!
//! * **Corruption happens after checksumming.** The wrapper performs its own
//!   wire encoding (including the checked-frame trailer when integrity is
//!   negotiated) and injects the possibly-damaged bytes through
//!   [`Transport::send_wire`], exactly like a network that flips a bit on a
//!   frame the sender already protected. Flipping bits before the inner
//!   transport's encoder would checksum the damage and defeat detection.
//! * **Reordering preserves per-session FIFO.** Like QUIC streams, frames of
//!   one session never overtake each other — in-session reordering would be a
//!   protocol violation no real stream transport produces, and it would turn
//!   retryable network mishaps into non-retryable decode errors. A "reorder"
//!   here delays a frame so frames of *other* sessions pass it.
//!
//! Delivery is paced by [`Transport::flush`] ticks: each flush advances the
//! clock, releases every held frame whose delay has elapsed (within the
//! bandwidth budget), and — so a fault profile can slow a driver down but
//! never wedge it — force-releases the oldest held frame whenever a tick
//! would otherwise deliver nothing.

use crate::frame::{Frame, SessionId};
use crate::transport::Transport;
use recon_base::rng::Xoshiro256;
use recon_base::wire::{uvarint_len, write_uvarint, Encode};
use recon_base::ReconError;
use std::collections::{BTreeMap, VecDeque};

/// Seeded description of how a [`FaultyTransport`] misbehaves. Probabilities
/// are per *frame*; `0.0` disables a fault, and [`FaultProfile::clean`] is
/// the identity profile (useful to prove a wrapped run is byte-identical to
/// a bare one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed for the fault RNG. Same seed, same mishaps.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one random bit of a frame's body is flipped. Without
    /// checked frames a flip may corrupt payloads *silently*; run bit-flip
    /// profiles with integrity negotiated so damage surfaces as
    /// [`ReconError::ChecksumMismatch`].
    pub bit_flip: f64,
    /// Probability a frame is held back so later frames of other sessions
    /// overtake it.
    pub reorder: f64,
    /// Flush ticks every frame is delayed (0 = deliver on send).
    pub latency_ticks: u64,
    /// Bytes released per flush tick (`None` = unlimited) — crude bandwidth
    /// shaping. At least one frame is still released on any tick that would
    /// otherwise starve, so a tight budget slows drivers without wedging them.
    pub bytes_per_tick: Option<usize>,
}

impl FaultProfile {
    /// The identity profile: no faults, immediate delivery.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            bit_flip: 0.0,
            reorder: 0.0,
            latency_ticks: 0,
            bytes_per_tick: None,
        }
    }

    /// Drop each frame with probability `p`; nothing else.
    pub fn drop_only(seed: u64, p: f64) -> Self {
        Self { drop: p, ..Self::clean(seed) }
    }

    /// Reorder (cross-session) each frame with probability `p`; nothing else.
    pub fn reorder_only(seed: u64, p: f64) -> Self {
        Self { reorder: p, ..Self::clean(seed) }
    }

    /// Flip one bit of each frame with probability `p`; nothing else.
    pub fn bit_flip_only(seed: u64, p: f64) -> Self {
        Self { bit_flip: p, ..Self::clean(seed) }
    }

    /// A little of everything: drops, duplicates, bit flips, reordering, and
    /// one tick of latency. Meant to run with integrity negotiated.
    pub fn combined(seed: u64) -> Self {
        Self {
            seed,
            drop: 0.02,
            duplicate: 0.02,
            bit_flip: 0.02,
            reorder: 0.05,
            latency_ticks: 1,
            bytes_per_tick: None,
        }
    }

    /// The same profile under a different seed (e.g. per retry attempt — a
    /// retry under the *same* seed would meet the same mishaps and fail the
    /// same way forever).
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }
}

/// Counters of what a [`FaultyTransport`] actually did — tests assert faults
/// really fired, and overhead reports cite them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames handed to `send` (before any fault).
    pub frames_sent: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames with one bit flipped.
    pub bit_flipped: u64,
    /// Frames held back for cross-session reordering.
    pub reordered: u64,
    /// Wire packets actually delivered to the inner transport.
    pub delivered: u64,
}

struct HeldPacket {
    bytes: Vec<u8>,
    due: u64,
}

/// A [`Transport`] decorator injecting seeded faults between an endpoint and
/// the real carrier. Wrap *both* halves of a pair (with different seeds) for
/// bidirectional hostility; see the module docs for the fault semantics.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    profile: FaultProfile,
    rng: Xoshiro256,
    checked_key: Option<u64>,
    queue: VecDeque<HeldPacket>,
    // Latest delivery tick already promised per session, so a delayed frame
    // never lets a *later* frame of the same session overtake it.
    session_due: BTreeMap<SessionId, u64>,
    tick: u64,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, misbehaving per `profile`.
    pub fn new(inner: T, profile: FaultProfile) -> Self {
        Self {
            inner,
            profile,
            rng: Xoshiro256::new(profile.seed),
            checked_key: None,
            queue: VecDeque::new(),
            session_due: BTreeMap::new(),
            tick: 0,
            stats: FaultStats::default(),
        }
    }

    /// What the faults have done so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Deliver every queued packet whose due tick has arrived, in queue order
    /// (which preserves per-session FIFO: a session's later frames always
    /// carry a due no earlier than its held ones). `force` releases the
    /// oldest packet even when nothing is due — the liveness guarantee.
    fn release(&mut self, force: bool) -> Result<(), ReconError> {
        let mut budget = self.profile.bytes_per_tick;
        let mut delivered_any = false;
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].due > self.tick {
                i += 1;
                continue;
            }
            if let Some(b) = budget {
                if delivered_any && self.queue[i].bytes.len() > b {
                    break; // over budget this tick; the rest keeps aging
                }
            }
            let packet = self.queue.remove(i).expect("index in bounds");
            budget = budget.map(|b| b.saturating_sub(packet.bytes.len()));
            self.stats.delivered += 1;
            delivered_any = true;
            self.inner.send_wire(&packet.bytes)?;
        }
        if force && !delivered_any {
            if let Some(packet) = self.queue.pop_front() {
                self.stats.delivered += 1;
                self.inner.send_wire(&packet.bytes)?;
            }
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), ReconError> {
        self.stats.frames_sent += 1;
        // Encode the wire packet ourselves so faults land *after* any
        // checksum trailer, like real in-flight corruption.
        let mut body = Vec::new();
        match self.checked_key {
            Some(key) => frame.encode_checked(&mut body, key),
            None => frame.encode(&mut body),
        }
        let mut wire = Vec::with_capacity(uvarint_len(body.len() as u64) + body.len());
        write_uvarint(&mut wire, body.len() as u64);
        let prefix_len = wire.len();
        wire.extend_from_slice(&body);

        if self.rng.next_bool(self.profile.drop) {
            self.stats.dropped += 1;
            return Ok(());
        }
        if self.rng.next_bool(self.profile.bit_flip) {
            // Flip inside the body so framing survives and the corruption is
            // the checksum's problem, not the length prefix's.
            let at = prefix_len + self.rng.next_index(body.len());
            wire[at] ^= 1 << self.rng.next_index(8);
            self.stats.bit_flipped += 1;
        }
        let copies = if self.rng.next_bool(self.profile.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let mut due = self.tick + self.profile.latency_ticks;
        if self.rng.next_bool(self.profile.reorder) {
            self.stats.reordered += 1;
            due += 1;
        }
        // Never let this frame be delivered before an earlier held frame of
        // the same session.
        let floor = self.session_due.entry(frame.session_id).or_insert(0);
        due = due.max(*floor);
        *floor = due;
        for _ in 0..copies {
            self.queue.push_back(HeldPacket { bytes: wire.clone(), due });
        }
        self.release(false)
    }

    fn recv(&mut self) -> Result<Option<Frame>, ReconError> {
        self.inner.recv()
    }

    fn flush(&mut self) -> Result<(), ReconError> {
        self.tick += 1;
        self.release(true)?;
        self.inner.flush()
    }

    fn fill_vectored(&mut self) -> Result<Option<Frame>, ReconError> {
        self.inner.fill_vectored()
    }

    fn drain_vectored(&mut self) -> Result<(), ReconError> {
        self.tick += 1;
        self.release(true)?;
        self.inner.drain_vectored()
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    fn has_pending_out(&self) -> bool {
        !self.queue.is_empty() || self.inner.has_pending_out()
    }

    fn bytes_framed_out(&self) -> u64 {
        self.inner.bytes_framed_out()
    }

    fn bytes_framed_in(&self) -> u64 {
        self.inner.bytes_framed_in()
    }

    fn set_integrity_key(&mut self, key: Option<u64>) {
        // Verification happens at the inner transport's decoder.
        self.inner.set_integrity_key(key);
    }

    fn set_checked_out(&mut self, key: Option<u64>) {
        // Intercepted: *we* do the outgoing wire encoding, so the trailer
        // must be ours for faults to land after it.
        self.checked_key = key;
    }

    fn set_max_frame(&mut self, max: usize) {
        self.inner.set_max_frame(max);
    }

    fn send_wire(&mut self, bytes: &[u8]) -> Result<(), ReconError> {
        self.inner.send_wire(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{drive_pair, Endpoint, Role};
    use crate::envelope::Envelope;
    use crate::transport::MemoryTransport;

    fn frame(session: SessionId, value: u64) -> Frame {
        Frame::envelope(session, Envelope::round(1, "m", &value))
    }

    fn drain(t: &mut MemoryTransport) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Some(f) = t.recv().unwrap() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn clean_profile_is_the_identity() {
        let (ma, mut mb) = MemoryTransport::pair();
        let mut faulty = FaultyTransport::new(ma, FaultProfile::clean(1));
        let sent: Vec<Frame> = (0..10).map(|i| frame(i % 3, i)).collect();
        for f in &sent {
            faulty.send(f).unwrap();
        }
        faulty.flush().unwrap();
        assert_eq!(drain(&mut mb), sent);
        let stats = faulty.fault_stats();
        assert_eq!(stats.frames_sent, 10);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.dropped + stats.duplicated + stats.bit_flipped + stats.reordered, 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let profile = FaultProfile::combined(0xFA07);
        let run = || {
            let (ma, _mb) = MemoryTransport::pair();
            let mut faulty = FaultyTransport::new(ma, profile);
            for i in 0..200 {
                faulty.send(&frame(i % 5, i)).unwrap();
            }
            for _ in 0..8 {
                faulty.flush().unwrap();
            }
            let bytes_delivered = faulty.inner().bytes_framed_out();
            (faulty.fault_stats(), bytes_delivered)
        };
        let (stats_1, bytes_1) = run();
        let (stats_2, bytes_2) = run();
        assert_eq!(stats_1, stats_2);
        assert_eq!(bytes_1, bytes_2);
        // The combined profile actually fires every fault over 200 frames.
        assert!(stats_1.dropped > 0, "{stats_1:?}");
        assert!(stats_1.duplicated > 0, "{stats_1:?}");
        assert!(stats_1.bit_flipped > 0, "{stats_1:?}");
        assert!(stats_1.reordered > 0, "{stats_1:?}");
        // A different seed meets different mishaps.
        let (ma, _mb) = MemoryTransport::pair();
        let mut other = FaultyTransport::new(ma, profile.with_seed(0x0F));
        for i in 0..200 {
            other.send(&frame(i % 5, i)).unwrap();
        }
        assert_ne!(other.fault_stats(), stats_1);
    }

    #[test]
    fn reordering_never_breaks_per_session_fifo() {
        let profile = FaultProfile { reorder: 0.5, latency_ticks: 1, ..FaultProfile::clean(77) };
        let (ma, mut mb) = MemoryTransport::pair();
        let mut faulty = FaultyTransport::new(ma, profile);
        for i in 0..100u64 {
            faulty.send(&frame(i % 4, i)).unwrap();
        }
        for _ in 0..16 {
            faulty.flush().unwrap();
        }
        let received = drain(&mut mb);
        assert_eq!(received.len(), 100, "no drops in this profile");
        assert!(faulty.fault_stats().reordered > 0, "reordering must have fired");
        let payload = |f: &Frame| match &f.body {
            crate::frame::FrameBody::Envelope(e) => e.decode_payload::<u64>().unwrap(),
            other => panic!("unexpected body {other:?}"),
        };
        // Cross-session order changed...
        assert!(
            received.iter().map(payload).collect::<Vec<_>>() != (0..100).collect::<Vec<_>>(),
            "expected at least one cross-session reorder"
        );
        // ...but each session's own frames stayed in order.
        for session in 0..4u64 {
            let per: Vec<u64> =
                received.iter().filter(|f| f.session_id == session).map(payload).collect();
            assert!(per.windows(2).all(|w| w[0] < w[1]), "session {session} reordered: {per:?}");
        }
    }

    #[test]
    fn bit_flips_surface_as_checksum_mismatches_when_negotiated() {
        let key = 0x0BAD_C0DE_u64;
        let profile = FaultProfile::bit_flip_only(3, 1.0);
        let (ma, mut mb) = MemoryTransport::pair();
        mb.set_integrity_key(Some(key));
        let mut faulty = FaultyTransport::new(ma, profile);
        faulty.set_checked_out(Some(key));
        faulty.send(&frame(1, 42)).unwrap();
        faulty.flush().unwrap();
        assert!(matches!(mb.recv(), Err(ReconError::ChecksumMismatch { .. })));
        assert_eq!(faulty.fault_stats().bit_flipped, 1);
    }

    #[test]
    fn latency_shaping_cannot_wedge_an_endpoint_pair() {
        // Heavy shaping: multi-tick latency and a tiny bandwidth budget. The
        // forced-release liveness rule must keep drive_pair converging.
        let profile =
            FaultProfile { latency_ticks: 3, bytes_per_tick: Some(64), ..FaultProfile::clean(9) };
        let (ma, mb) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(FaultyTransport::new(ma, profile));
        let mut bob_end = Endpoint::new(FaultyTransport::new(mb, profile.with_seed(10)));
        let alice = crate::amplify::AmplifiedSender::new(4, |attempt| {
            Ok(Envelope::round(1, "digest", &(100 + attempt)))
        })
        .unwrap();
        let bob = crate::amplify::AmplifiedReceiver::new(
            4,
            |attempt, env: Envelope| {
                if attempt < 2 {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            crate::amplify::Exhaust::LastError,
        );
        alice_end.register(0, Role::Alice, alice).unwrap();
        bob_end.register(0, Role::Bob, bob).unwrap();
        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        assert_eq!(bob_end.take_outcome::<u64>(0).unwrap().unwrap().recovered, 102);
    }

    #[test]
    fn dropped_frames_stall_the_pair_as_a_retryable_error() {
        // Drop everything: the pair can never finish, and the failure must be
        // the structured, retryable SessionStuck — the signal RetryPolicy
        // keys on.
        let (ma, mb) = MemoryTransport::pair();
        let mut alice_end =
            Endpoint::new(FaultyTransport::new(ma, FaultProfile::drop_only(4, 1.0)));
        let mut bob_end = Endpoint::new(FaultyTransport::new(mb, FaultProfile::drop_only(5, 1.0)));
        let alice =
            crate::amplify::AmplifiedSender::new(1, |_| Ok(Envelope::round(1, "digest", &7u64)))
                .unwrap();
        let bob = crate::amplify::AmplifiedReceiver::new(
            1,
            |_, env: Envelope| env.decode_payload::<u64>(),
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            crate::amplify::Exhaust::LastError,
        );
        alice_end.register(0, Role::Alice, alice).unwrap();
        bob_end.register(0, Role::Bob, bob).unwrap();
        let error = drive_pair(&mut alice_end, &mut bob_end).unwrap_err();
        assert!(matches!(error, ReconError::SessionStuck { .. }), "{error}");
        assert!(error.is_retryable());
    }
}
