//! The unit of communication between two [`Party`](crate::Party) state machines.
//!
//! An [`Envelope`] carries a tagged, wire-encoded payload (via [`recon_base::wire`])
//! together with a [`Meter`] describing how the message is charged against the
//! paper's communication accounting. Keeping the metering on the envelope — rather
//! than inside the protocol drivers — is what lets one generic
//! [`Session`](crate::Session) reproduce the exact `CommStats` of every legacy
//! driver while staying transport-agnostic: a link can serialize an envelope,
//! ship it over any byte stream, and reconstruct it losslessly on the far side.

use recon_base::comm::{Direction, Transcript};
use recon_base::wire::{
    read_length_prefixed, read_uvarint, uvarint_len, write_length_prefixed, write_uvarint, Decode,
    Encode, WireError,
};
use recon_base::ReconError;

/// How a message counts against the transcript's byte/round accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meter {
    /// A normal message: charged at its payload size, starting a new round.
    Round,
    /// Charged at its payload size, in the same round as the previous message
    /// (the paper's "in parallel with" construction).
    Parallel,
    /// Charged at an explicit byte count independent of the payload size. Used for
    /// aggregate charges, e.g. a graph protocol charging an embedded set-of-sets
    /// exchange as a single message the way the paper's theorems state it.
    Explicit {
        /// Bytes to charge.
        bytes: u64,
        /// Whether the charge shares the previous message's round.
        parallel: bool,
    },
    /// Not charged at all. Control envelopes model coordination the paper's
    /// accounting excludes — e.g. "replica `k` failed, send replica `k+1`", which
    /// the paper handles by (conceptually) sending all replicas at once and this
    /// workspace handles lazily without changing the worst-case cost.
    Control,
}

/// A tagged, wire-encoded protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Protocol-defined message tag, used by the receiving party to dispatch.
    /// The high bit ([`NESTED_TAG_BIT`]) is reserved for envelopes re-emitted by a
    /// [`Nested`](crate::Nested) sub-protocol.
    pub tag: u16,
    /// Human-readable label recorded into the transcript (e.g. `"outer IBLT"`).
    pub label: String,
    /// The wire-encoded message body.
    pub payload: Vec<u8>,
    /// How the message is charged.
    pub meter: Meter,
}

/// Tag bit marking envelopes that belong to an embedded sub-protocol.
pub const NESTED_TAG_BIT: u16 = 0x8000;

impl Envelope {
    /// A normally-metered message starting a new round.
    pub fn round<T: Encode + ?Sized>(tag: u16, label: &str, payload: &T) -> Self {
        Self { tag, label: label.to_string(), payload: payload.to_bytes(), meter: Meter::Round }
    }

    /// A message sharing the previous message's round.
    pub fn parallel<T: Encode + ?Sized>(tag: u16, label: &str, payload: &T) -> Self {
        Self { tag, label: label.to_string(), payload: payload.to_bytes(), meter: Meter::Parallel }
    }

    /// An uncharged control message.
    pub fn control<T: Encode + ?Sized>(tag: u16, label: &str, payload: &T) -> Self {
        Self { tag, label: label.to_string(), payload: payload.to_bytes(), meter: Meter::Control }
    }

    /// An aggregate charge of `bytes` bytes with no payload of its own.
    pub fn charge(tag: u16, label: &str, bytes: usize, parallel: bool) -> Self {
        Self {
            tag,
            label: label.to_string(),
            payload: Vec::new(),
            meter: Meter::Explicit { bytes: bytes as u64, parallel },
        }
    }

    /// The number of bytes this envelope charges to the transcript.
    pub fn charged_bytes(&self) -> usize {
        match self.meter {
            Meter::Round | Meter::Parallel => self.payload.len(),
            Meter::Explicit { bytes, .. } => bytes as usize,
            Meter::Control => 0,
        }
    }

    /// `true` if the charge shares the previous message's round.
    pub fn is_parallel(&self) -> bool {
        matches!(self.meter, Meter::Parallel | Meter::Explicit { parallel: true, .. })
    }

    /// Decode the full payload as `T` (the payload must be consumed exactly).
    pub fn decode_payload<T: Decode>(&self) -> Result<T, ReconError> {
        T::from_bytes(&self.payload).map_err(ReconError::Wire)
    }

    /// Record this envelope into `transcript` according to its [`Meter`] — the
    /// single metering rule shared by every driver ([`MemoryLink`], [`Endpoint`])
    /// so the accounting is a property of the envelope, not of the transport.
    ///
    /// [`MemoryLink`]: crate::MemoryLink
    /// [`Endpoint`]: crate::Endpoint
    pub fn record_into(&self, transcript: &mut Transcript, direction: Direction) {
        match self.meter {
            Meter::Round => {
                transcript.record_bytes(direction, &self.label, self.payload.len());
            }
            Meter::Parallel => {
                transcript.record_parallel_bytes(direction, &self.label, self.payload.len());
            }
            Meter::Explicit { bytes, parallel } => {
                if parallel {
                    transcript.record_parallel_bytes(direction, &self.label, bytes as usize);
                } else {
                    transcript.record_bytes(direction, &self.label, bytes as usize);
                }
            }
            Meter::Control => {}
        }
    }
}

impl Encode for Meter {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Meter::Round => buf.push(0),
            Meter::Parallel => buf.push(1),
            Meter::Explicit { bytes, parallel } => {
                buf.push(2);
                write_uvarint(buf, *bytes);
                parallel.encode(buf);
            }
            Meter::Control => buf.push(3),
        }
    }
}

impl Decode for Meter {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Meter::Round),
            1 => Ok(Meter::Parallel),
            2 => Ok(Meter::Explicit { bytes: read_uvarint(buf)?, parallel: bool::decode(buf)? }),
            3 => Ok(Meter::Control),
            _ => Err(WireError::Invalid("meter tag")),
        }
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Length-prefix the label and payload straight from the borrowed slices
        // (byte-identical to encoding `Bytes` copies, without the copies).
        self.tag.encode(buf);
        write_length_prefixed(buf, self.label.as_bytes());
        write_length_prefixed(buf, &self.payload);
        self.meter.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.tag.encoded_len()
            + uvarint_len(self.label.len() as u64)
            + self.label.len()
            + uvarint_len(self.payload.len() as u64)
            + self.payload.len()
            + self.meter.encoded_len()
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let tag = u16::decode(buf)?;
        let label = std::str::from_utf8(read_length_prefixed(buf)?)
            .map_err(|_| WireError::Invalid("envelope label"))?
            .to_string();
        let payload = read_length_prefixed(buf)?.to_vec();
        let meter = Meter::decode(buf)?;
        Ok(Envelope { tag, label, payload, meter })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_meter_and_bytes() {
        let round = Envelope::round(1, "m", &7u64);
        assert_eq!(round.charged_bytes(), 8);
        assert!(!round.is_parallel());

        let parallel = Envelope::parallel(2, "m", &vec![1u64, 2]);
        assert!(parallel.is_parallel());
        assert_eq!(parallel.charged_bytes(), parallel.payload.len());

        let control = Envelope::control(3, "nack", &());
        assert_eq!(control.charged_bytes(), 0);

        let charge = Envelope::charge(4, "aggregate", 123, true);
        assert_eq!(charge.charged_bytes(), 123);
        assert!(charge.is_parallel());
        assert!(charge.payload.is_empty());
    }

    #[test]
    fn envelope_wire_roundtrip() {
        for env in [
            Envelope::round(7, "digest", &vec![1u64, 2, 3]),
            Envelope::parallel(8, "edge IBLT", &0xFFu8),
            Envelope::control(9, "ack", &()),
            Envelope::charge(10, "sos bytes", 4096, false),
        ] {
            let decoded = Envelope::from_bytes(&env.to_bytes()).unwrap();
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn decode_payload_requires_full_consumption() {
        let env = Envelope::round(1, "m", &(1u64, 2u64));
        assert_eq!(env.decode_payload::<(u64, u64)>().unwrap(), (1, 2));
        assert!(env.decode_payload::<u64>().is_err());
    }
}
