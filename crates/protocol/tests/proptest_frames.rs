//! Property tests for the wire layer of the multiplexed transport: arbitrary
//! [`Envelope`]s (every meter, nested tags) framed, chopped into arbitrary
//! chunks, and reassembled losslessly — plus the truncation and corruption
//! error paths a real byte stream exposes.

use proptest::collection::vec;
use proptest::prelude::*;
use recon_base::wire::{Decode, Encode};
use recon_base::ReconError;
use recon_protocol::{
    ControlFrame, Envelope, Frame, FrameBody, FrameDecoder, Meter, NESTED_TAG_BIT,
    TAG_CONTROL_REQUEST, TAG_CONTROL_RESPONSE,
};

const LABELS: [&str; 5] = ["outer IBLT", "difference estimator", "NACK (double d)", "労働", ""];

/// Build an arbitrary envelope from primitive draws: meter selector, explicit
/// charge, parallel flag, optional nested tag bit.
fn build_envelope(
    tag: u16,
    nested: bool,
    label_index: usize,
    payload: Vec<u8>,
    meter_selector: u8,
    explicit_bytes: u64,
    parallel: bool,
) -> Envelope {
    let tag = if nested { tag | NESTED_TAG_BIT } else { tag & !NESTED_TAG_BIT };
    let meter = match meter_selector % 4 {
        0 => Meter::Round,
        1 => Meter::Parallel,
        2 => Meter::Explicit { bytes: explicit_bytes, parallel },
        _ => Meter::Control,
    };
    Envelope { tag, label: LABELS[label_index % LABELS.len()].to_string(), payload, meter }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Envelope encode → decode is the identity, for every meter and tag shape.
    #[test]
    fn envelope_wire_roundtrip(
        tag in any::<u16>(),
        nested in any::<bool>(),
        label_index in any::<usize>(),
        payload in vec(any::<u8>(), 0..96),
        meter_selector in any::<u8>(),
        explicit_bytes in any::<u64>(),
        parallel in any::<bool>(),
    ) {
        let envelope = build_envelope(
            tag, nested, label_index, payload, meter_selector, explicit_bytes, parallel,
        );
        let bytes = envelope.to_bytes();
        prop_assert_eq!(bytes.len(), envelope.encoded_len());
        let decoded = Envelope::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(&decoded, &envelope);
        if nested {
            prop_assert!(decoded.tag & NESTED_TAG_BIT != 0, "nested bit survives the wire");
        }
    }

    /// Every strict prefix of an envelope encoding fails to decode (truncation
    /// is always detected), and the error is a wire error, not a panic.
    #[test]
    fn truncated_envelopes_error_out(
        tag in any::<u16>(),
        payload in vec(any::<u8>(), 0..48),
        meter_selector in any::<u8>(),
        explicit_bytes in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let envelope =
            build_envelope(tag, false, 0, payload, meter_selector, explicit_bytes, false);
        let bytes = envelope.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(Envelope::from_bytes(&bytes[..cut]).is_err());
    }

    /// A stream of frames (data and Fin, interleaved session ids) chopped into
    /// arbitrary-sized chunks reassembles to exactly the original sequence, and
    /// no frame surfaces before its last byte arrived.
    #[test]
    fn chopped_frame_streams_reassemble(
        seed_payloads in vec(vec(any::<u8>(), 0..40), 1..8),
        session_ids in vec(any::<u64>(), 1..8),
        fins in vec(any::<bool>(), 1..8),
        meter_selector in any::<u8>(),
        chunk in 1usize..9,
    ) {
        let count = seed_payloads.len().min(session_ids.len()).min(fins.len());
        let frames: Vec<Frame> = (0..count)
            .map(|i| {
                if fins[i] {
                    Frame::fin(session_ids[i])
                } else {
                    let envelope = build_envelope(
                        i as u16, i % 2 == 0, i, seed_payloads[i].clone(),
                        meter_selector.wrapping_add(i as u8), 1 << i, i % 3 == 0,
                    );
                    Frame::envelope(session_ids[i], envelope)
                }
            })
            .collect();

        let wire: Vec<u8> = frames.iter().flat_map(Frame::to_wire).collect();
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            decoder.extend(piece);
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(decoder.buffered(), 0);
        prop_assert_eq!(decoder.next_frame().expect("drained"), None);
    }

    /// [`ControlFrame`] encode → decode is the identity, direct and through
    /// both envelope directions — and the carrying envelope is always
    /// uncharged, whatever the opcode (including service error codes).
    #[test]
    fn control_frames_roundtrip(
        request_id in any::<u64>(),
        op in any::<u16>(),
        payload in vec(any::<u8>(), 0..96),
        label_index in any::<usize>(),
        as_response in any::<bool>(),
    ) {
        let frame = ControlFrame { request_id, op, payload };
        prop_assert_eq!(frame.to_bytes().len(), frame.encoded_len());
        prop_assert_eq!(&ControlFrame::from_bytes(&frame.to_bytes()).expect("roundtrip"), &frame);

        let label = LABELS[label_index % LABELS.len()];
        let envelope = if as_response {
            frame.response_envelope(label)
        } else {
            frame.request_envelope(label)
        };
        prop_assert_eq!(envelope.charged_bytes(), 0, "control traffic is uncharged");
        let over_wire = Envelope::from_bytes(&envelope.to_bytes()).expect("envelope roundtrip");
        let expected_tag = if as_response { TAG_CONTROL_RESPONSE } else { TAG_CONTROL_REQUEST };
        prop_assert_eq!(over_wire.tag, expected_tag);
        prop_assert_eq!(ControlFrame::from_envelope(&over_wire).expect("extract"), frame);
    }

    /// Every strict prefix of a [`ControlFrame`] encoding fails to decode.
    #[test]
    fn truncated_control_frames_error_out(
        request_id in any::<u64>(),
        op in any::<u16>(),
        payload in vec(any::<u8>(), 0..48),
        cut in any::<usize>(),
    ) {
        let frame = ControlFrame { request_id, op, payload };
        let bytes = frame.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(ControlFrame::from_bytes(&bytes[..cut]).is_err());
    }

    /// A frame whose length prefix claims more than the body holds never
    /// decodes early; completing the body with garbage errors rather than
    /// yielding a phantom frame.
    #[test]
    fn truncated_frames_then_garbage_error_out(
        payload in vec(any::<u8>(), 1..32),
        cut_from_end in 1usize..8,
    ) {
        let frame = Frame::envelope(3, Envelope::round(1, "m", &payload));
        let wire = frame.to_wire();
        let cut = wire.len().saturating_sub(cut_from_end).max(1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire[..cut]);
        prop_assert_eq!(decoder.next_frame().expect("truncation is not an error"), None);
        // Fill the missing tail with 0xFF garbage: either the frame body now
        // fails to decode, or (if the garbage collides with valid bytes) the
        // decoded frame must differ from a silent success with wrong content.
        decoder.extend(&vec![0xFF; wire.len() - cut]);
        match decoder.next_frame() {
            Err(ReconError::Transport(_)) => {}
            Ok(Some(decoded)) => prop_assert_ne!(decoded, frame),
            other => prop_assert!(false, "unexpected decoder result: {:?}", other),
        }
    }
}

/// Fin frames carry no envelope and roundtrip through the stream layer.
#[test]
fn fin_frames_roundtrip() {
    for id in [0u64, 1, 0x7F, 0x80, u64::MAX] {
        let frame = Frame::fin(id);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&frame.to_wire());
        let decoded = decoder.next_frame().unwrap().unwrap();
        assert_eq!(decoded.session_id, id);
        assert_eq!(decoded.body, FrameBody::Fin);
    }
}
