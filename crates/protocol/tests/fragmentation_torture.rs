//! Fragmentation torture: the framing layer under a maximally hostile stream.
//!
//! A [`StreamTransport`] is wrapped around a reader that returns **one byte,
//! then `WouldBlock`, alternately** (and a writer that accepts one byte, then
//! `WouldBlock`, alternately) — the worst legal behavior of a non-blocking
//! stream short of erroring. Everything observable must be *identical* to the
//! same traffic over a [`MemoryTransport`], which delivers each frame's bytes
//! in one piece: the decoded frame sequence, every session outcome, and every
//! per-session [`CommStats`]. The accounting is a property of the protocol,
//! not of how the bytes were chopped.

use proptest::prelude::*;
use recon_base::{CommStats, ReconError};
use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
use recon_protocol::{
    drive_pair, Endpoint, Envelope, Frame, MemoryTransport, Party, Role, SessionId,
    StreamTransport, Transport,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::rc::Rc;

type SharedBytes = Rc<RefCell<VecDeque<u8>>>;

/// Reader returning 1 byte then `WouldBlock`, alternately.
struct ChoppyReader {
    queue: SharedBytes,
    starved: bool,
}

impl ChoppyReader {
    fn new(queue: SharedBytes) -> Self {
        // Starts un-starved: the first read delivers (if anything is queued).
        Self { queue, starved: true }
    }
}

impl Read for ChoppyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.starved = !self.starved;
        if self.starved {
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "starved on purpose"));
        }
        match self.queue.borrow_mut().pop_front() {
            Some(byte) if !buf.is_empty() => {
                buf[0] = byte;
                Ok(1)
            }
            _ => Err(std::io::Error::new(ErrorKind::WouldBlock, "drained")),
        }
    }
}

/// Writer accepting 1 byte then `WouldBlock`, alternately.
struct ChoppyWriter {
    queue: SharedBytes,
    starved: bool,
}

impl ChoppyWriter {
    fn new(queue: SharedBytes) -> Self {
        Self { queue, starved: true }
    }
}

impl Write for ChoppyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.starved = !self.starved;
        if self.starved || buf.is_empty() {
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "congested on purpose"));
        }
        self.queue.borrow_mut().push_back(buf[0]);
        Ok(1)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

type TortureTransport = StreamTransport<ChoppyReader, ChoppyWriter>;

/// A connected pair of torture transports (like `MemoryTransport::pair`).
fn torture_pair() -> (TortureTransport, TortureTransport) {
    let a_to_b: SharedBytes = Rc::default();
    let b_to_a: SharedBytes = Rc::default();
    let a = StreamTransport::new(
        ChoppyReader::new(Rc::clone(&b_to_a)),
        ChoppyWriter::new(Rc::clone(&a_to_b)),
    );
    let b = StreamTransport::new(ChoppyReader::new(a_to_b), ChoppyWriter::new(b_to_a));
    (a, b)
}

/// Decode frames from `transport` until `expected` frames arrived (or a
/// generous attempt budget runs out — each attempt moves at most one byte).
fn recv_all<T: Transport>(transport: &mut T, expected: usize, budget: usize) -> Vec<Frame> {
    let mut frames = Vec::new();
    for _ in 0..budget {
        if frames.len() == expected {
            break;
        }
        while let Some(frame) = transport.recv().expect("torture recv") {
            frames.push(frame);
        }
    }
    frames
}

/// Like [`recv_all`] but pulling through the vectored fill path.
fn recv_all_vectored<T: Transport>(
    transport: &mut T,
    expected: usize,
    budget: usize,
) -> Vec<Frame> {
    let mut frames = Vec::new();
    for _ in 0..budget {
        if frames.len() == expected {
            break;
        }
        while let Some(frame) = transport.fill_vectored().expect("torture fill_vectored") {
            frames.push(frame);
        }
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The decoded frame sequence through the torture stream is byte-identical
    /// to the same wire bytes through a MemoryTransport.
    #[test]
    fn frames_survive_single_byte_trickle(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        fin_every in 2usize..5,
    ) {
        let (mut memory_tx, mut memory_rx) = MemoryTransport::pair();
        let (mut torture_tx, mut torture_rx) = torture_pair();

        let mut sent = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            let frame = if i % fin_every == fin_every - 1 {
                Frame::fin(i as SessionId)
            } else {
                Frame::envelope(i as SessionId, Envelope::round(1, "torture", payload))
            };
            memory_tx.send(&frame).unwrap();
            torture_tx.send(&frame).unwrap();
            sent.push(frame);
        }
        // The torture writer accepts at most one byte per flush attempt.
        let wire_bytes: usize = sent.iter().map(|f| f.to_wire().len()).sum();
        for _ in 0..2 * wire_bytes + 4 {
            torture_tx.flush().unwrap();
        }

        let budget = 2 * wire_bytes + 8;
        let through_memory = recv_all(&mut memory_rx, sent.len(), budget);
        let through_torture = recv_all(&mut torture_rx, sent.len(), budget);
        prop_assert_eq!(&through_memory, &sent);
        prop_assert_eq!(&through_torture, &sent);
        prop_assert_eq!(
            torture_rx.bytes_framed_in(), memory_rx.bytes_framed_in(),
            "framed byte counters must agree"
        );
    }

    /// The vectored read/write path (`fill_vectored`/`drain_vectored`) is
    /// byte-identical to the sequential path even when every vectored call
    /// makes one byte of progress and then hits `WouldBlock`: same decoded
    /// frames, same wire bytes, same byte counters.
    #[test]
    fn vectored_io_is_byte_identical_to_sequential_under_trickle(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        fin_every in 2usize..5,
    ) {
        let (mut seq_tx, mut seq_rx) = torture_pair();
        seq_tx.set_sequential_io(true);
        seq_rx.set_sequential_io(true);
        let (mut vec_tx, mut vec_rx) = torture_pair();
        vec_tx.set_sequential_io(false);
        vec_rx.set_sequential_io(false);

        let mut sent = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            let frame = if i % fin_every == fin_every - 1 {
                Frame::fin(i as SessionId)
            } else {
                Frame::envelope(i as SessionId, Envelope::round(1, "torture", payload))
            };
            seq_tx.send(&frame).unwrap();
            vec_tx.send(&frame).unwrap();
            sent.push(frame);
        }
        // Both writers accept at most one byte per drain attempt.
        let wire_bytes: usize = sent.iter().map(|f| f.to_wire().len()).sum();
        for _ in 0..2 * wire_bytes + 4 {
            seq_tx.drain_vectored().unwrap(); // routes to flush(): forced sequential
            vec_tx.drain_vectored().unwrap();
        }

        let budget = 2 * wire_bytes + 8;
        let through_sequential = recv_all(&mut seq_rx, sent.len(), budget);
        let through_vectored = recv_all_vectored(&mut vec_rx, sent.len(), budget);
        prop_assert_eq!(&through_sequential, &sent);
        prop_assert_eq!(&through_vectored, &sent);
        prop_assert_eq!(vec_tx.bytes_framed_out(), seq_tx.bytes_framed_out());
        prop_assert_eq!(vec_rx.bytes_framed_in(), seq_rx.bytes_framed_in());
    }
}

/// A session pair exchanging multi-kilobyte digests with retry rounds — big
/// enough that every envelope is fragmented across hundreds of torture reads.
fn bulky_pair(
    session: u64,
    retries: u64,
) -> (impl Party<Output = ()>, impl Party<Output = Vec<u64>>) {
    let alice = AmplifiedSender::new(6, move |attempt| {
        let payload: Vec<u64> = (0..200).map(|x| x * session + attempt).collect();
        Ok(Envelope::round(1, "digest", &payload))
    })
    .expect("sender");
    let bob = AmplifiedReceiver::new(
        6,
        move |attempt, env: Envelope| {
            if attempt < retries {
                Err(ReconError::ChecksumFailure)
            } else {
                env.decode_payload::<Vec<u64>>()
            }
        },
        |_| true,
        |_| Envelope::control(2, "retry", &()),
        Exhaust::LastError,
    );
    (alice, bob)
}

/// Multiplexed sessions over the torture pair: outcomes and per-session
/// `CommStats` equal to the MemoryTransport run of the very same parties.
#[test]
fn session_stats_are_identical_to_memory_transport() {
    fn run<TA: Transport, TB: Transport>(
        mut alice_end: Endpoint<TA>,
        mut bob_end: Endpoint<TB>,
    ) -> Vec<(Vec<u64>, CommStats, CommStats)> {
        for id in 0..3u64 {
            let (alice, bob) = bulky_pair(id + 2, id % 3);
            alice_end.register(id, Role::Alice, alice).expect("register");
            bob_end.register(id, Role::Bob, bob).expect("register");
        }
        drive_pair(&mut alice_end, &mut bob_end).expect("drive");
        (0..3u64)
            .map(|id| {
                let outcome = bob_end.take_outcome::<Vec<u64>>(id).expect("finished").expect("ok");
                let alice_stats = alice_end.close(id).expect("registered");
                (outcome.recovered, outcome.stats, alice_stats)
            })
            .collect()
    }

    let (memory_a, memory_b) = MemoryTransport::pair();
    let baseline = run(Endpoint::new(memory_a), Endpoint::new(memory_b));
    let (torture_a, torture_b) = torture_pair();
    let tortured = run(Endpoint::new(torture_a), Endpoint::new(torture_b));

    for (id, ((memory_out, memory_bob, memory_alice), (torture_out, torture_bob, torture_alice))) in
        baseline.into_iter().zip(tortured).enumerate()
    {
        assert_eq!(torture_out, memory_out, "session {id}: recovered payload");
        assert_eq!(torture_bob, memory_bob, "session {id}: Bob-side CommStats");
        assert_eq!(torture_alice, memory_alice, "session {id}: Alice-side CommStats");
        assert!(memory_bob.bytes_alice_to_bob >= 1600, "payloads must actually be bulky");
    }
}

/// Whole sessions driven over the vectored I/O path produce the same outcomes
/// and per-session `CommStats` as the forced-sequential path — the endpoint
/// machinery cannot observe which syscall shape moved the bytes.
#[test]
fn session_stats_are_identical_across_io_paths() {
    fn run(sequential: bool) -> Vec<(Vec<u64>, CommStats, CommStats)> {
        let (mut torture_a, mut torture_b) = torture_pair();
        torture_a.set_sequential_io(sequential);
        torture_b.set_sequential_io(sequential);
        let mut alice_end = Endpoint::new(torture_a);
        let mut bob_end = Endpoint::new(torture_b);
        for id in 0..3u64 {
            let (alice, bob) = bulky_pair(id + 2, id % 3);
            alice_end.register(id, Role::Alice, alice).expect("register");
            bob_end.register(id, Role::Bob, bob).expect("register");
        }
        drive_pair(&mut alice_end, &mut bob_end).expect("drive");
        (0..3u64)
            .map(|id| {
                let outcome = bob_end.take_outcome::<Vec<u64>>(id).expect("finished").expect("ok");
                let alice_stats = alice_end.close(id).expect("registered");
                (outcome.recovered, outcome.stats, alice_stats)
            })
            .collect()
    }

    let sequential = run(true);
    let vectored = run(false);
    for (id, ((seq_out, seq_bob, seq_alice), (vec_out, vec_bob, vec_alice))) in
        sequential.into_iter().zip(vectored).enumerate()
    {
        assert_eq!(vec_out, seq_out, "session {id}: recovered payload");
        assert_eq!(vec_bob, seq_bob, "session {id}: Bob-side CommStats");
        assert_eq!(vec_alice, seq_alice, "session {id}: Alice-side CommStats");
    }
}

/// The byte-aware deadlock guard tolerates the torture transport's isolated
/// idle rounds but still catches a genuinely stuck pair.
#[test]
fn torture_transport_does_not_trip_the_deadlock_guard() {
    // A genuinely dead pair over torture transports: Bob waits for an Alice
    // that is not there.
    let (_, torture_b) = torture_pair();
    let (memory_a, _) = MemoryTransport::pair();
    let mut alice_end = Endpoint::new(memory_a);
    let mut bob_end = Endpoint::new(torture_b);
    let (_, bob) = bulky_pair(1, 0);
    bob_end.register(9, Role::Bob, bob).expect("register");
    match drive_pair(&mut alice_end, &mut bob_end) {
        Err(ReconError::SessionStuck { waiting_b, .. }) => assert_eq!(waiting_b, vec![9]),
        other => panic!("expected the deadlock guard, got {other:?}"),
    }
}
