//! # recon-apps
//!
//! The application substrates the paper's introduction motivates set-of-sets
//! reconciliation with:
//!
//! * [`database`] — relational databases of binary data with labeled columns but
//!   unlabeled rows: each row *is* a set (the columns where it holds a 1), so two
//!   databases that differ by `d` flipped bits are exactly an instance of
//!   set-of-sets reconciliation (Section 1 and the Table 1 workload).
//! * [`documents`] — collections of documents represented by shingles (Broder):
//!   each document becomes a set of hashed `k`-word windows, a collection becomes a
//!   set of sets, and reconciling two collections identifies exact duplicates,
//!   near-duplicates (small shingle difference) and fresh documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod documents;

pub use database::BinaryTable;
pub use documents::{
    reconcile_collections, reconcile_collections_sharded, Collection, CollectionDiffReport,
};
