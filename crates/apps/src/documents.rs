//! Document collections represented by shingles (Section 1, after Broder 1997).
//!
//! "Consecutive blocks of k words of a document are hashed into numbers, and a
//! subset of these numbers are used as a signature for the document ... A collection
//! of documents would then correspond to sets of sets, and in cases where two
//! collections had some documents that were similar (instead of exact matches), the
//! corresponding sets would only have a small number of differences. Reconciling
//! collections of documents could start by reconciling the sets of sets
//! corresponding to the collection, to find documents in one collection with no
//! similar document in another collection."

use recon_base::hash::hash_bytes;
use recon_base::ReconError;
use recon_protocol::{Amplification, Outcome, ShardedOutcome, ShardedRunner};
use recon_sos::{cascading, sharded, ChildSet, SetOfSets, ShardedSosFamily, SosParams};
use std::collections::BTreeSet;

/// Compute the `k`-word shingle set of a document: every window of `k` consecutive
/// (whitespace-separated, lower-cased) words is hashed to a 64-bit value.
pub fn shingles(text: &str, k: usize, seed: u64) -> BTreeSet<u64> {
    assert!(k >= 1, "shingle width must be at least 1");
    let words: Vec<String> = text
        .split_whitespace()
        .map(|w| w.to_lowercase().chars().filter(|c| c.is_alphanumeric()).collect::<String>())
        .filter(|w| !w.is_empty())
        .collect();
    let mut out = BTreeSet::new();
    if words.len() < k {
        if !words.is_empty() {
            out.insert(hash_bytes(words.join(" ").as_bytes(), seed));
        }
        return out;
    }
    for window in words.windows(k) {
        out.insert(hash_bytes(window.join(" ").as_bytes(), seed));
    }
    out
}

/// A collection of documents, held as raw text plus the derived shingle sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collection {
    shingle_width: usize,
    seed: u64,
    documents: Vec<String>,
}

impl Collection {
    /// Create an empty collection using `k`-word shingles.
    pub fn new(shingle_width: usize, seed: u64) -> Self {
        Self { shingle_width, seed, documents: Vec::new() }
    }

    /// Add a document.
    pub fn add_document(&mut self, text: impl Into<String>) {
        self.documents.push(text.into());
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// `true` if the collection has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The documents.
    pub fn documents(&self) -> &[String] {
        &self.documents
    }

    /// The collection as a set of shingle sets.
    pub fn as_set_of_sets(&self) -> SetOfSets {
        SetOfSets::from_children(
            self.documents.iter().map(|d| shingles(d, self.shingle_width, self.seed)),
        )
    }

    /// Largest shingle-set size in the collection.
    pub fn max_shingles(&self) -> usize {
        self.as_set_of_sets().max_child_size()
    }
}

/// The outcome of comparing a remote collection against a local one via set-of-sets
/// reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionDiffReport {
    /// Shingle sets present in both collections unchanged (exact duplicates).
    pub exact_duplicates: usize,
    /// Pairs (remote shingle set, closest local shingle set, shingle difference) for
    /// remote documents that are similar-but-not-identical to a local document.
    pub near_duplicates: Vec<(usize, usize, usize)>,
    /// Indices (into the recovered remote set-of-sets) of remote documents with no
    /// similar local document ("fresh" documents that must be fetched in full).
    pub fresh_documents: Vec<usize>,
}

/// Reconcile a local collection against a remote one: recover the remote collection's
/// shingle sets with the cascading set-of-sets protocol and classify each remote
/// document as an exact duplicate, a near duplicate (shingle difference at most
/// `near_threshold`) or fresh.
///
/// `d` bounds the total shingle-level difference between the two collections (the
/// quantity the set-of-sets protocols are parameterized by).
pub fn reconcile_collections(
    remote: &Collection,
    local: &Collection,
    d: usize,
    near_threshold: usize,
    seed: u64,
) -> Result<Outcome<CollectionDiffReport>, ReconError> {
    let remote_sos = remote.as_set_of_sets();
    let local_sos = local.as_set_of_sets();
    let max_child = remote_sos.max_child_size().max(local_sos.max_child_size()).max(1);
    let params = SosParams::new(seed, max_child);
    let outcome = cascading::run_known(&remote_sos, &local_sos, d.max(1), &params)?;
    let report = classify(&outcome.recovered, &local_sos, near_threshold);
    Ok(Outcome { recovered: report, stats: outcome.stats })
}

/// Classify every recovered remote shingle set against the local collection.
fn classify(
    recovered: &SetOfSets,
    local_sos: &SetOfSets,
    near_threshold: usize,
) -> CollectionDiffReport {
    let local_children: Vec<&ChildSet> = local_sos.children().iter().collect();
    let mut report = CollectionDiffReport {
        exact_duplicates: 0,
        near_duplicates: Vec::new(),
        fresh_documents: Vec::new(),
    };
    for (idx, remote_doc) in recovered.children().iter().enumerate() {
        if local_sos.contains(remote_doc) {
            report.exact_duplicates += 1;
            continue;
        }
        let best = local_children
            .iter()
            .enumerate()
            .map(|(j, l)| (remote_doc.symmetric_difference(l).count(), j))
            .min();
        match best {
            Some((diff, j)) if diff <= near_threshold => {
                report.near_duplicates.push((idx, j, diff));
            }
            _ => report.fresh_documents.push(idx),
        }
    }
    report
}

/// [`reconcile_collections`], sharded: the two collections are split into
/// deterministic per-document shards and every shard reconciles concurrently as
/// its own session over one multiplexed link. A document edit rehashes its
/// shingle set to a (generally) different shard, where old and new version each
/// appear whole, so every shard runs the row-level (naive) family under a bound
/// of `2 * max_differing_docs` children. Classification happens once, on the
/// union of the shard recoveries.
pub fn reconcile_collections_sharded(
    remote: &Collection,
    local: &Collection,
    max_differing_docs: usize,
    near_threshold: usize,
    num_shards: usize,
    seed: u64,
) -> Result<ShardedOutcome<CollectionDiffReport>, ReconError> {
    let remote_sos = remote.as_set_of_sets();
    let local_sos = local.as_set_of_sets();
    let max_child = remote_sos.max_child_size().max(local_sos.max_child_size()).max(1);
    let params = SosParams::new(seed, max_child);
    // Deterministic across thread counts, so always use the machine's parallelism.
    let runner = ShardedRunner::new(num_shards, seed).with_available_threads();
    let outcome = sharded::reconcile_known_sharded(
        &remote_sos,
        &local_sos,
        (2 * max_differing_docs).max(1),
        ShardedSosFamily::Naive,
        &params,
        Amplification::replicate(4),
        &runner,
    )?;
    let report = classify(&outcome.recovered, &local_sos, near_threshold);
    Ok(ShardedOutcome { recovered: report, per_shard: outcome.per_shard, stats: outcome.stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC_A: &str = "the quick brown fox jumps over the lazy dog near the river bank";
    const DOC_B: &str = "reconciliation of sets of sets generalizes set reconciliation neatly";
    const DOC_C: &str = "invertible bloom lookup tables support insertion deletion and listing";

    #[test]
    fn shingles_are_window_hashes() {
        let s = shingles("a b c d", 2, 1);
        assert_eq!(s.len(), 3); // ab, bc, cd
        assert_eq!(shingles("a b c d", 2, 1), s, "deterministic");
        assert_ne!(shingles("a b c d", 2, 2), s, "seed-dependent");
        // Case and punctuation are normalized.
        assert_eq!(shingles("A, b! c d", 2, 1), s);
    }

    #[test]
    fn short_documents_get_a_single_shingle() {
        assert_eq!(shingles("hello", 3, 1).len(), 1);
        assert!(shingles("", 3, 1).is_empty());
    }

    #[test]
    fn collection_round_trip() {
        let mut c = Collection::new(3, 7);
        assert!(c.is_empty());
        c.add_document(DOC_A);
        c.add_document(DOC_B);
        assert_eq!(c.len(), 2);
        let sos = c.as_set_of_sets();
        assert_eq!(sos.num_children(), 2);
        assert!(c.max_shingles() >= 5);
    }

    #[test]
    fn identical_collections_are_all_exact_duplicates() {
        let mut c = Collection::new(3, 9);
        for doc in [DOC_A, DOC_B, DOC_C] {
            c.add_document(doc);
        }
        let Outcome { recovered: report, stats } = reconcile_collections(&c, &c, 2, 4, 11).unwrap();
        assert_eq!(report.exact_duplicates, 3);
        assert!(report.near_duplicates.is_empty());
        assert!(report.fresh_documents.is_empty());
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn edited_documents_are_near_duplicates() {
        let mut local = Collection::new(3, 13);
        local.add_document(DOC_A);
        local.add_document(DOC_B);
        let mut remote = Collection::new(3, 13);
        // One word changed in DOC_A: a handful of shingles differ.
        remote.add_document(DOC_A.replace("lazy", "sleepy"));
        remote.add_document(DOC_B);
        let report = reconcile_collections(&remote, &local, 12, 8, 17).unwrap().recovered;
        assert_eq!(report.exact_duplicates, 1);
        assert_eq!(report.near_duplicates.len(), 1);
        assert!(report.fresh_documents.is_empty());
        let (_, _, diff) = report.near_duplicates[0];
        assert!((1..=8).contains(&diff));
    }

    #[test]
    fn brand_new_documents_are_reported_fresh() {
        let mut local = Collection::new(3, 19);
        local.add_document(DOC_A);
        let mut remote = Collection::new(3, 19);
        remote.add_document(DOC_A);
        remote.add_document(DOC_C);
        let d = shingles(DOC_C, 3, 19).len() + 2;
        let report = reconcile_collections(&remote, &local, d, 3, 23).unwrap().recovered;
        assert_eq!(report.exact_duplicates, 1);
        assert_eq!(report.fresh_documents.len(), 1);
    }

    #[test]
    fn sharded_collection_sync_matches_the_unsharded_classification() {
        let mut local = Collection::new(3, 13);
        local.add_document(DOC_A);
        local.add_document(DOC_B);
        local.add_document(DOC_C);
        let mut remote = Collection::new(3, 13);
        remote.add_document(DOC_A.replace("lazy", "sleepy"));
        remote.add_document(DOC_B);
        remote.add_document(DOC_C);

        let sharded = reconcile_collections_sharded(&remote, &local, 2, 8, 3, 17).unwrap();
        assert_eq!(sharded.per_shard.len(), 3);
        assert_eq!(
            sharded.stats.total_bytes(),
            sharded.per_shard.iter().map(|s| s.total_bytes()).sum::<usize>()
        );
        let report = sharded.recovered;
        assert_eq!(report.exact_duplicates, 2);
        assert_eq!(report.near_duplicates.len(), 1);
        assert!(report.fresh_documents.is_empty());
    }
}
