//! # recon-estimator
//!
//! Set difference estimators (Section 3 / Appendix A of *"Reconciling Graphs and Sets
//! of Sets"*).
//!
//! Reconciliation protocols need an upper bound on the number of differences `d`
//! before they can size their sketches. When `d` is unknown, the paper has Bob send a
//! small **set difference estimator** and Alice merge in her own elements and query
//! it (Corollary 3.2, Theorems 3.9/3.10). Two estimators are provided:
//!
//! * [`L0Estimator`] — the paper's own construction (Theorem 3.1, Appendix A), built
//!   from streaming ℓ0-norm estimation: elements are hashed into geometric levels,
//!   each level keeps a constant number of 2-bit counters (mod-4 sums), and the
//!   estimate is read off the deepest level whose counter sketch is still "busy".
//!   Space is `O(log(1/δ) · log n)` bits — independent of the universe size — which
//!   is the paper's improvement over the strata estimator.
//! * [`StrataEstimator`] — the baseline from Eppstein, Goodrich, Uyeda & Varghese
//!   ("What's the difference?", SIGCOMM 2011), reference `[14]` of the paper: a stack
//!   of fixed-size IBLTs, one per geometric stratum. More accurate in practice but an
//!   `O(log u)` factor larger, exactly the gap Theorem 3.1 closes.
//!
//! Both estimators implement the same three operations the paper specifies — update,
//! merge, query — plus wire encoding so their transmission cost can be measured.
//!
//! ```
//! use recon_estimator::{L0Estimator, L0Config, Side};
//!
//! let cfg = L0Config::default().with_seed(7);
//! let mut alice = L0Estimator::new(&cfg);
//! let mut bob = L0Estimator::new(&cfg);
//! for x in 0..10_000u64 {
//!     alice.update(x, Side::A);
//!     bob.update(x + 40, Side::B); // 40 differences on each side => d = 80
//! }
//! let merged = alice.merge(&bob).unwrap();
//! let estimate = merged.estimate();
//! assert!(estimate >= 20 && estimate <= 320, "estimate {estimate} should be within a constant factor of 80");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l0;
mod strata;

pub use l0::{L0Config, L0Estimator};
pub use strata::{StrataConfig, StrataEstimator};

/// Which of the two implicitly-maintained sets an update targets.
///
/// The paper's estimator "implicitly maintains two sets S1 and S2"; `Side::A` is the
/// set of the party that will eventually be recovered (Alice), `Side::B` the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Alice's side (S1).
    A,
    /// Bob's side (S2).
    B,
}
