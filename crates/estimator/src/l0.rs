//! The ℓ0-norm based set difference estimator of Theorem 3.1 / Appendix A.
//!
//! Model the symmetric difference as a vector indexed by the universe whose entries
//! lie in {−1, 0, +1} (+1 for elements only in S1, −1 for elements only in S2). Its
//! ℓ0 norm is exactly the set difference size. The estimator keeps, for each of
//! `reps` independent repetitions, `levels` geometric sub-streams; an element belongs
//! to level `i` with probability `2^{-(i+1)}` (the position of the least significant
//! set bit of a pairwise-independent hash). Each level hashes its elements into a
//! constant number of buckets holding 2-bit counters: the count of elements mod 4.
//! An element present on both sides cancels (+1 then −1), so only differing elements
//! leave a trace — which is what makes the sketch an estimator of the *difference*
//! rather than of the sets.
//!
//! Querying finds, per repetition, the deepest level whose number of non-zero buckets
//! exceeds the threshold (8, as in the paper) and scales it back up by the level's
//! sampling rate; if no level is busy the per-level counts are summed directly, which
//! is essentially exact for small differences. The median over repetitions is
//! returned. The guarantee matches the paper's: a constant-factor approximation with
//! probability `1 − δ` using `O(log(1/δ) log n)` bits.

use crate::Side;
use recon_base::hash::{hash64, PairwiseHash};
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;

/// Configuration for [`L0Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L0Config {
    /// Number of independent repetitions whose median is reported
    /// (`O(log(1/δ))`; default 9).
    pub reps: usize,
    /// Number of geometric levels (`log n`; default 48, enough for any difference
    /// that fits in memory).
    pub levels: usize,
    /// Buckets per level (the paper's constant `Θ(c^2)`; default 32).
    pub buckets: usize,
    /// Busy-level threshold (the paper uses 8).
    pub threshold: usize,
    /// Public-coin seed.
    pub seed: u64,
}

impl Default for L0Config {
    fn default() -> Self {
        Self { reps: 9, levels: 48, buckets: 32, threshold: 8, seed: 0 }
    }
}

impl L0Config {
    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use `reps` repetitions (failure probability decays exponentially in `reps`).
    pub fn with_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Use `buckets` buckets per level.
    pub fn with_buckets(mut self, buckets: usize) -> Self {
        self.buckets = buckets.max(4);
        self
    }
}

/// The ℓ0-norm set difference estimator (Theorem 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct L0Estimator {
    cfg: L0Config,
    /// `counters[rep][level * buckets + bucket]`, each value in 0..4 (mod-4 counter).
    counters: Vec<Vec<u8>>,
}

impl L0Estimator {
    /// Create an empty estimator.
    pub fn new(cfg: &L0Config) -> Self {
        assert!(cfg.reps >= 1 && cfg.levels >= 1 && cfg.buckets >= 4);
        Self { cfg: *cfg, counters: vec![vec![0u8; cfg.levels * cfg.buckets]; cfg.reps] }
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &L0Config {
        &self.cfg
    }

    fn level_hash(&self, rep: usize) -> PairwiseHash {
        PairwiseHash::from_seed(split_seed(self.cfg.seed, 0x1000 + rep as u64), 61)
    }

    fn bucket_seed(&self, rep: usize) -> u64 {
        split_seed(self.cfg.seed, 0x2000 + rep as u64)
    }

    /// Add element `x` to side `side` (the paper's *update* operation).
    pub fn update(&mut self, x: u64, side: Side) {
        let delta: u8 = match side {
            Side::A => 1,
            Side::B => 3, // ≡ −1 (mod 4)
        };
        for rep in 0..self.cfg.reps {
            let level_bits = self.level_hash(rep).hash(x);
            let level = (level_bits.trailing_ones() as usize).min(self.cfg.levels - 1);
            let bucket = (hash64(x, self.bucket_seed(rep)) % self.cfg.buckets as u64) as usize;
            let slot = &mut self.counters[rep][level * self.cfg.buckets + bucket];
            *slot = (*slot + delta) & 3;
        }
    }

    /// Merge with another estimator built from the same configuration (the paper's
    /// *merge* operation); returns the combined estimator.
    pub fn merge(&self, other: &L0Estimator) -> Result<L0Estimator, ReconError> {
        if self.cfg != other.cfg {
            return Err(ReconError::InvalidInput(
                "cannot merge l0 estimators with different configurations".to_string(),
            ));
        }
        let mut out = self.clone();
        for (mine, theirs) in out.counters.iter_mut().zip(&other.counters) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a = (*a + *b) & 3;
            }
        }
        Ok(out)
    }

    /// Estimate the size of the symmetric difference (the paper's *query* operation).
    ///
    /// Guaranteed to be within a constant factor of the truth with probability
    /// `1 − δ` for `reps = O(log 1/δ)`; returns 0 only when no difference left any
    /// trace in any repetition.
    pub fn estimate(&self) -> usize {
        let mut per_rep: Vec<usize> =
            self.counters.iter().map(|rep| self.estimate_rep(rep)).collect();
        per_rep.sort_unstable();
        per_rep[per_rep.len() / 2]
    }

    fn estimate_rep(&self, counters: &[u8]) -> usize {
        let b = self.cfg.buckets;
        let nonzero_at = |level: usize| -> usize {
            counters[level * b..(level + 1) * b].iter().filter(|&&c| c != 0).count()
        };
        // Deepest busy level, scaled back by its sampling rate.
        for level in (0..self.cfg.levels).rev() {
            let busy = nonzero_at(level);
            if busy > self.cfg.threshold {
                // Elements reach level `level` with probability 2^-(level+1); the
                // non-zero bucket count slightly undercounts because of collisions,
                // so apply the standard coupon-collector correction.
                let corrected = occupancy_correction(busy, b);
                return corrected.saturating_mul(1usize << (level + 1).min(60));
            }
        }
        // No busy level: the difference is small, so the per-level non-zero bucket
        // counts sum to (approximately) the exact difference.
        (0..self.cfg.levels).map(nonzero_at).sum()
    }

    /// Exact serialized size in bytes (buckets are packed 4 per byte).
    pub fn serialized_len(&self) -> usize {
        Encode::encoded_len(self)
    }
}

/// Invert the balls-in-bins occupancy expectation: if `busy` of `buckets` buckets are
/// non-empty, the maximum-likelihood number of balls is
/// `ln(1 − busy/buckets) / ln(1 − 1/buckets)`.
fn occupancy_correction(busy: usize, buckets: usize) -> usize {
    if busy >= buckets {
        // Saturated: all we know is that the count is at least ~buckets·ln(buckets).
        return buckets * 3;
    }
    let frac = busy as f64 / buckets as f64;
    let est = (1.0 - frac).ln() / (1.0 - 1.0 / buckets as f64).ln();
    est.round().max(busy as f64) as usize
}

impl Encode for L0Estimator {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.cfg.reps as u64);
        write_uvarint(buf, self.cfg.levels as u64);
        write_uvarint(buf, self.cfg.buckets as u64);
        write_uvarint(buf, self.cfg.threshold as u64);
        buf.extend_from_slice(&self.cfg.seed.to_le_bytes());
        for rep in &self.counters {
            // Pack 4 two-bit counters per byte.
            for chunk in rep.chunks(4) {
                let mut byte = 0u8;
                for (i, &c) in chunk.iter().enumerate() {
                    byte |= (c & 3) << (2 * i);
                }
                buf.push(byte);
            }
        }
    }
}

impl Decode for L0Estimator {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let reps = read_uvarint(buf)? as usize;
        let levels = read_uvarint(buf)? as usize;
        let buckets = read_uvarint(buf)? as usize;
        let threshold = read_uvarint(buf)? as usize;
        let seed = u64::decode(buf)?;
        if reps == 0 || levels == 0 || buckets == 0 || reps > 1024 || levels > 64 {
            return Err(WireError::Invalid("l0 estimator header"));
        }
        let cfg = L0Config { reps, levels, buckets, threshold, seed };
        let per_rep = levels * buckets;
        let packed = per_rep.div_ceil(4);
        let mut counters = Vec::with_capacity(reps);
        for _ in 0..reps {
            if buf.len() < packed {
                return Err(WireError::UnexpectedEnd);
            }
            let (bytes, rest) = buf.split_at(packed);
            *buf = rest;
            let mut rep = Vec::with_capacity(per_rep);
            for (i, &byte) in bytes.iter().enumerate() {
                for j in 0..4 {
                    if i * 4 + j < per_rep {
                        rep.push((byte >> (2 * j)) & 3);
                    }
                }
            }
            counters.push(rep);
        }
        Ok(L0Estimator { cfg, counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn build_pair(n: usize, d: usize, seed: u64) -> (L0Estimator, L0Estimator) {
        // Alice holds 0..n, Bob holds d..n+d shifted by a large offset for his extra
        // elements so both one-sided differences are exercised.
        let cfg = L0Config::default().with_seed(seed);
        let mut alice = L0Estimator::new(&cfg);
        let mut bob = L0Estimator::new(&cfg);
        for x in 0..n as u64 {
            alice.update(x, Side::A);
            bob.update(x, Side::B);
        }
        // Introduce d differences: d/2 only-Alice, d/2 only-Bob.
        for i in 0..(d / 2) as u64 {
            alice.update(u64::MAX - i, Side::A);
            bob.update(u64::MAX / 2 + i, Side::B);
        }
        if d % 2 == 1 {
            alice.update(u64::MAX / 4, Side::A);
        }
        (alice, bob)
    }

    #[test]
    fn empty_difference_estimates_zero() {
        let (alice, bob) = build_pair(5000, 0, 1);
        assert_eq!(alice.merge(&bob).unwrap().estimate(), 0);
    }

    #[test]
    fn small_differences_are_essentially_exact() {
        for d in [1usize, 2, 4, 8] {
            let (alice, bob) = build_pair(10_000, d, 7 + d as u64);
            let est = alice.merge(&bob).unwrap().estimate();
            assert!(est >= d.saturating_sub(1) && est <= d * 2 + 2, "d = {d}, estimate = {est}");
        }
    }

    #[test]
    fn large_differences_within_constant_factor() {
        for d in [64usize, 256, 1024, 4096] {
            let (alice, bob) = build_pair(20_000, d, 1000 + d as u64);
            let est = alice.merge(&bob).unwrap().estimate();
            assert!(est >= d / 4 && est <= d * 4, "d = {d}, estimate = {est} outside [d/4, 4d]");
        }
    }

    #[test]
    fn shared_elements_cancel_out() {
        // Identical huge sets with zero difference must not inflate the estimate.
        let cfg = L0Config::default().with_seed(3);
        let mut alice = L0Estimator::new(&cfg);
        let mut bob = L0Estimator::new(&cfg);
        let mut rng = Xoshiro256::new(9);
        for _ in 0..50_000 {
            let x = rng.next_u64();
            alice.update(x, Side::A);
            bob.update(x, Side::B);
        }
        assert_eq!(alice.merge(&bob).unwrap().estimate(), 0);
    }

    #[test]
    fn merge_requires_same_config() {
        let a = L0Estimator::new(&L0Config::default().with_seed(1));
        let b = L0Estimator::new(&L0Config::default().with_seed(2));
        assert!(a.merge(&b).is_err());
        let c = L0Estimator::new(&L0Config::default().with_seed(1).with_buckets(64));
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (alice, _) = build_pair(1000, 10, 5);
        let bytes = alice.to_bytes();
        assert_eq!(bytes.len(), alice.serialized_len());
        let back = L0Estimator::from_bytes(&bytes).unwrap();
        assert_eq!(back, alice);
    }

    #[test]
    fn serialized_size_is_independent_of_set_size() {
        let (small, _) = build_pair(100, 4, 5);
        let (large, _) = build_pair(100_000, 4, 5);
        assert_eq!(small.serialized_len(), large.serialized_len());
        // 9 reps * 48 levels * 32 buckets * 2 bits = 3456 bytes + header.
        assert!(small.serialized_len() < 4_096, "size = {}", small.serialized_len());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let (alice, _) = build_pair(100, 4, 5);
        let bytes = alice.to_bytes();
        assert!(L0Estimator::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(L0Estimator::from_bytes(&[0xFF; 3]).is_err());
    }

    #[test]
    fn occupancy_correction_is_monotone() {
        let mut prev = 0;
        for busy in 0..32 {
            let est = occupancy_correction(busy, 32);
            assert!(est >= prev);
            prev = est;
        }
        assert_eq!(occupancy_correction(0, 32), 0);
        assert!(occupancy_correction(32, 32) >= 32);
    }

    #[test]
    fn update_is_symmetric_between_one_and_two_structures() {
        // Updating a single estimator with both sides must equal merging two
        // single-sided estimators.
        let cfg = L0Config::default().with_seed(11);
        let mut joint = L0Estimator::new(&cfg);
        let mut alice = L0Estimator::new(&cfg);
        let mut bob = L0Estimator::new(&cfg);
        for x in 0..500u64 {
            joint.update(x, Side::A);
            alice.update(x, Side::A);
        }
        for x in 400..900u64 {
            joint.update(x, Side::B);
            bob.update(x, Side::B);
        }
        assert_eq!(joint, alice.merge(&bob).unwrap());
    }
}
