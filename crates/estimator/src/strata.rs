//! The strata estimator of Eppstein, Goodrich, Uyeda & Varghese (reference `[14]`),
//! included as the baseline the paper's ℓ0 estimator improves upon.
//!
//! Elements are assigned to geometric strata (stratum `i` with probability
//! `2^{-(i+1)}`); each stratum is a small fixed-size IBLT. To estimate, the decoder
//! walks from the deepest stratum down: every stratum that decodes contributes its
//! exact count, and the first stratum that fails to decode scales the accumulated
//! count by the remaining sampling rate. Accuracy is excellent but each stratum
//! stores full keys, so the sketch is an `O(log u)` factor larger than the ℓ0
//! estimator of Theorem 3.1 — exactly the gap the paper highlights.

use crate::Side;
use recon_base::hash::hash64;
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use recon_iblt::{Iblt, IbltConfig};

/// Configuration for [`StrataEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrataConfig {
    /// Number of strata (default 28, enough for differences up to ~10^8).
    pub strata: usize,
    /// Cells per stratum IBLT (default 40, the value used in the original paper).
    pub cells_per_stratum: usize,
    /// Public-coin seed.
    pub seed: u64,
}

impl Default for StrataConfig {
    fn default() -> Self {
        Self { strata: 28, cells_per_stratum: 40, seed: 0 }
    }
}

impl StrataConfig {
    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn iblt_config(&self) -> IbltConfig {
        IbltConfig::for_u64_keys(split_seed(self.seed, 0x57A7)).with_hash_count(3)
    }
}

/// The strata set difference estimator (baseline `[14]`).
#[derive(Debug, Clone, PartialEq)]
pub struct StrataEstimator {
    cfg: StrataConfig,
    strata: Vec<Iblt>,
}

impl StrataEstimator {
    /// Create an empty estimator.
    pub fn new(cfg: &StrataConfig) -> Self {
        assert!(cfg.strata >= 2 && cfg.cells_per_stratum >= 8);
        let iblt_cfg = cfg.iblt_config();
        Self {
            cfg: *cfg,
            strata: (0..cfg.strata)
                .map(|_| Iblt::with_cells(cfg.cells_per_stratum, &iblt_cfg))
                .collect(),
        }
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &StrataConfig {
        &self.cfg
    }

    fn stratum_of(&self, x: u64) -> usize {
        let h = hash64(x, split_seed(self.cfg.seed, 0x57A8));
        (h.trailing_zeros() as usize).min(self.cfg.strata - 1)
    }

    /// Add element `x` to side `side`.
    pub fn update(&mut self, x: u64, side: Side) {
        let stratum = self.stratum_of(x);
        match side {
            Side::A => self.strata[stratum].insert_u64(x),
            Side::B => self.strata[stratum].delete_u64(x),
        }
    }

    /// Remove element `x` from side `side` — the exact inverse of
    /// [`StrataEstimator::update`], so a long-lived store can maintain the
    /// estimator incrementally under churn. Removing an element that was never
    /// added leaves the (signed) stratum encoding its absence, exactly as a
    /// fresh build over the final set would.
    pub fn remove(&mut self, x: u64, side: Side) {
        let stratum = self.stratum_of(x);
        match side {
            Side::A => self.strata[stratum].delete_u64(x),
            Side::B => self.strata[stratum].insert_u64(x),
        }
    }

    /// Merge with another estimator built from the same configuration.
    pub fn merge(&self, other: &StrataEstimator) -> Result<StrataEstimator, ReconError> {
        if self.cfg != other.cfg {
            return Err(ReconError::InvalidInput(
                "cannot merge strata estimators with different configurations".to_string(),
            ));
        }
        let mut out = self.clone();
        for (mine, theirs) in out.strata.iter_mut().zip(&other.strata) {
            // "Merging" the A-side of one estimator with the B-side of the other is
            // cellwise addition; since Side::B updates are deletions, adding the
            // signed tables leaves exactly the difference encoding.
            mine.add_assign(theirs).expect("same geometry");
        }
        Ok(out)
    }

    /// Estimate the size of the symmetric difference.
    pub fn estimate(&self) -> usize {
        let mut count = 0usize;
        for i in (0..self.cfg.strata).rev() {
            let decoded = self.strata[i].decode();
            if decoded.complete {
                count += decoded.recovered();
            } else {
                // Stratum i failed: elements reach strata >= i with probability 2^-i,
                // so scale what we have seen among the deeper strata.
                return count.saturating_mul(1usize << (i + 1).min(60));
            }
        }
        count
    }

    /// Exact serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        Encode::encoded_len(self)
    }
}

impl Encode for StrataEstimator {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.cfg.strata as u64);
        write_uvarint(buf, self.cfg.cells_per_stratum as u64);
        buf.extend_from_slice(&self.cfg.seed.to_le_bytes());
        for s in &self.strata {
            s.encode(buf);
        }
    }
}

impl Decode for StrataEstimator {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let strata = read_uvarint(buf)? as usize;
        let cells_per_stratum = read_uvarint(buf)? as usize;
        let seed = u64::decode(buf)?;
        if !(2..=64).contains(&strata) || cells_per_stratum < 8 {
            return Err(WireError::Invalid("strata estimator header"));
        }
        let cfg = StrataConfig { strata, cells_per_stratum, seed };
        let tables: Result<Vec<Iblt>, WireError> =
            (0..strata).map(|_| <Iblt as Decode>::decode(buf)).collect();
        Ok(StrataEstimator { cfg, strata: tables? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_pair(n: usize, d: usize, seed: u64) -> (StrataEstimator, StrataEstimator) {
        let cfg = StrataConfig::default().with_seed(seed);
        let mut alice = StrataEstimator::new(&cfg);
        let mut bob = StrataEstimator::new(&cfg);
        for x in 0..n as u64 {
            alice.update(x, Side::A);
            bob.update(x, Side::B);
        }
        for i in 0..(d / 2) as u64 {
            alice.update(u64::MAX - i, Side::A);
            bob.update(u64::MAX / 2 + i, Side::B);
        }
        if d % 2 == 1 {
            alice.update(u64::MAX / 4, Side::A);
        }
        (alice, bob)
    }

    #[test]
    fn zero_difference_estimates_zero() {
        let (a, b) = build_pair(2000, 0, 3);
        assert_eq!(a.merge(&b).unwrap().estimate(), 0);
    }

    #[test]
    fn small_differences_are_exact_or_close() {
        for d in [1usize, 3, 8, 20] {
            let (a, b) = build_pair(5000, d, 17 + d as u64);
            let est = a.merge(&b).unwrap().estimate();
            assert!(est >= d / 2 && est <= d * 2 + 2, "d = {d}, est = {est}");
        }
    }

    #[test]
    fn large_differences_within_factor_two_ish() {
        for d in [200usize, 1000, 5000] {
            let (a, b) = build_pair(20_000, d, 29 + d as u64);
            let est = a.merge(&b).unwrap().estimate();
            assert!(est >= d / 3 && est <= d * 3, "d = {d}, est = {est}");
        }
    }

    #[test]
    fn incremental_updates_match_fresh_build() {
        // Interleaved adds and removes must land bit-identically on a fresh
        // build over the surviving elements, for both sides.
        let cfg = StrataConfig::default().with_seed(11);
        for side in [Side::A, Side::B] {
            let mut churned = StrataEstimator::new(&cfg);
            let mut live: Vec<u64> = Vec::new();
            for x in 0..300u64 {
                churned.update(x, side);
                live.push(x);
                if x % 3 == 0 {
                    let victim = live.remove(live.len() / 2);
                    churned.remove(victim, side);
                }
            }
            let mut fresh = StrataEstimator::new(&cfg);
            for &x in &live {
                fresh.update(x, side);
            }
            assert_eq!(churned, fresh);
        }
    }

    #[test]
    fn merge_requires_same_config() {
        let a = StrataEstimator::new(&StrataConfig::default().with_seed(1));
        let b = StrataEstimator::new(&StrataConfig::default().with_seed(2));
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (a, _) = build_pair(500, 6, 5);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), a.serialized_len());
        assert_eq!(StrataEstimator::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn strata_sketch_is_larger_than_l0_sketch() {
        // The whole point of Theorem 3.1: the l0 estimator drops the O(log u) factor.
        let strata = StrataEstimator::new(&StrataConfig::default().with_seed(1));
        let l0 = crate::L0Estimator::new(&crate::L0Config::default().with_seed(1));
        assert!(
            strata.serialized_len() > 3 * l0.serialized_len(),
            "strata {} bytes vs l0 {} bytes",
            strata.serialized_len(),
            l0.serialized_len()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StrataEstimator::from_bytes(&[1, 2, 3]).is_err());
    }
}
