//! The [`Reactor`]: many multiplexed [`Endpoint`]s driven purely off readiness.
//!
//! A reactor owns a [`Poller`] plus any number of *connections* — endpoints
//! over [`Pollable`] stream transports — and pumps each one only when the OS
//! reports its stream readable or writable: no speculative polling, no
//! sleep-backoff, idle connections cost nothing. Each [`Reactor::turn`] is one
//! event-loop iteration:
//!
//! 1. wait on the poller (bounded by the caller's budget and the timer wheel),
//! 2. [`Endpoint::poll_ready`] every connection that got an event,
//! 3. let the caller's visitor harvest outcomes / retire sessions,
//! 4. re-arm write interest exactly where output is still buffered
//!    ([`Endpoint::is_write_blocked`]), retire connections that finished, and
//!    fire expired per-session deadlines ([`ReconError::Timeout`]).
//!
//! Connection lifecycle: a connection whose sessions have all been retired
//! keeps its descriptors registered until the transport's output buffer
//! drains (graceful `Fin` delivery), then closes cleanly. A peer that
//! disappears mid-session surfaces as a transport error; a peer that stalls
//! past its deadline is cut off by the timer wheel. Either way the endpoint is
//! handed back through [`Reactor::take_finished`] for post-mortem accounting.
//!
//! The reactor is single-threaded by design — sessions are `!Sync` state
//! machines — and scales across cores by running one reactor per worker
//! thread; see [`Server`](crate::Server) for the accept-and-balance layer.

use crate::poller::{Backend, Event, Interest, Poller, Trigger};
use crate::sys;
use crate::timer::TimerWheel;
use recon_base::{ReconError, RetryPolicy};
use recon_protocol::{Endpoint, Pollable, SessionId, Transport};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Identifier of one connection within a reactor (never reused).
pub type ConnId = u64;

/// Token reserved for the reactor's own waker pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// Token reserved for the auxiliary descriptor ([`Reactor::watch_aux`]).
const AUX_TOKEN: u64 = u64::MAX - 1;

/// Tuning for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Deadline applied to every session present on a connection when it is
    /// inserted: a session not finished this long after insertion fails its
    /// connection with [`ReconError::Timeout`]. `None` disables deadlines.
    pub session_deadline: Option<Duration>,
    /// Pin the poller backend; `None` uses [`Poller::new`]'s default
    /// (epoll on Linux unless `RECON_RUNTIME_FORCE_POLL` is set).
    pub backend: Option<Backend>,
    /// Readiness delivery mode. Defaults to [`Trigger::Edge`]: the transports
    /// drain to `WouldBlock` on every event (the `poll_ready` contract), which
    /// is exactly what edge-triggered epoll requires, and ET skips the
    /// kernel's per-wait rescan of still-ready descriptors. Ignored (stays
    /// level-triggered) on the `poll(2)` backend.
    pub trigger: Trigger,
    /// First [`ConnId`] this reactor hands out. A multi-reactor server gives
    /// each worker a disjoint base so connection ids are process-unique.
    pub first_conn_id: ConnId,
    /// Recovery policy for drivers built on this config. The reactor itself
    /// never retries — a failed connection is handed back through
    /// [`Reactor::take_finished`] — but [`RetryPolicy::attempt_deadline`],
    /// when set, overrides `session_deadline` as the per-attempt time budget,
    /// and callers like [`drive_endpoint_with_retry`] re-run retryable
    /// failures ([`ReconError::is_retryable`]) under this policy.
    pub retry: RetryPolicy,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            session_deadline: Some(Duration::from_secs(30)),
            backend: None,
            trigger: Trigger::Edge,
            first_conn_id: 0,
            retry: RetryPolicy::none(),
        }
    }
}

impl ReactorConfig {
    /// The per-attempt deadline in force: the retry policy's
    /// [`attempt_deadline`](RetryPolicy::attempt_deadline) when set, else
    /// [`session_deadline`](ReactorConfig::session_deadline).
    pub fn effective_deadline(&self) -> Option<Duration> {
        self.retry.attempt_deadline.or(self.session_deadline)
    }
}

/// Cross-thread handle that interrupts a blocked [`Reactor::turn`].
#[derive(Debug)]
pub struct Waker {
    pipe: std::io::PipeWriter,
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Self { pipe: self.pipe.try_clone().expect("clone waker pipe") }
    }
}

impl Waker {
    /// Wake the reactor. Best-effort: a full pipe already guarantees a wake,
    /// and a dropped reactor no longer cares.
    pub fn wake(&self) {
        let _ = (&self.pipe).write(&[1]);
    }
}

struct Conn<T: Transport + Pollable> {
    endpoint: Endpoint<T>,
    /// Write interest currently armed with the poller.
    write_armed: bool,
    /// Error captured while pumping; resolved during the retirement pass.
    failed: Option<ReconError>,
    inserted: Instant,
}

/// A connection the reactor retired, handed back for accounting.
pub struct Finished<T: Transport + Pollable> {
    /// The connection's id.
    pub conn: ConnId,
    /// The endpoint, with its transport counters and any unharvested sessions.
    pub endpoint: Endpoint<T>,
    /// `Ok` for a clean close (all sessions retired, output drained, or the
    /// peer closed after every session finished); the error otherwise.
    pub result: Result<(), ReconError>,
}

/// A readiness-driven driver for multiplexed endpoints; see the module docs.
pub struct Reactor<T: Transport + Pollable> {
    poller: Poller,
    conns: BTreeMap<ConnId, Conn<T>>,
    timers: TimerWheel<(ConnId, SessionId)>,
    finished: Vec<Finished<T>>,
    events: Vec<Event>,
    /// Scratch for expired timers, reused across turns like `events`.
    due: Vec<(ConnId, SessionId)>,
    next_conn: ConnId,
    waker_rx: std::io::PipeReader,
    waker: Waker,
    aux_fd: Option<RawFd>,
    aux_ready: bool,
    config: ReactorConfig,
}

fn io_err(context: &str, e: std::io::Error) -> ReconError {
    ReconError::Transport(format!("{context}: {e}"))
}

impl<T: Transport + Pollable> Reactor<T> {
    /// A reactor with no connections yet.
    pub fn new(config: ReactorConfig) -> Result<Self, ReconError> {
        let mut poller = Poller::with_config(config.backend, config.trigger)
            .map_err(|e| io_err("create poller", e))?;
        let (waker_rx, waker_tx) = std::io::pipe().map_err(|e| io_err("create waker pipe", e))?;
        sys::set_nonblocking(waker_rx.as_raw_fd()).map_err(|e| io_err("waker nonblock", e))?;
        sys::set_nonblocking(waker_tx.as_raw_fd()).map_err(|e| io_err("waker nonblock", e))?;
        poller
            .register(waker_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .map_err(|e| io_err("register waker", e))?;
        Ok(Self {
            poller,
            conns: BTreeMap::new(),
            timers: TimerWheel::for_connections(),
            finished: Vec::new(),
            events: Vec::new(),
            due: Vec::new(),
            next_conn: config.first_conn_id,
            waker_rx,
            waker: Waker { pipe: waker_tx },
            aux_fd: None,
            aux_ready: false,
            config,
        })
    }

    /// The backend the underlying poller runs on.
    pub fn backend(&self) -> Backend {
        self.poller.backend()
    }

    /// The effective delivery mode ([`Trigger::Edge`] only on epoll).
    pub fn trigger(&self) -> Trigger {
        self.poller.trigger()
    }

    /// Watch one auxiliary readable descriptor (a worker's own listener)
    /// alongside the connections. Readiness is latched sticky and handed out
    /// through [`Reactor::take_aux_ready`]; the flag starts set so the caller
    /// drains any backlog that predates the registration — required under
    /// edge-triggered delivery, where that backlog will never fire an event.
    pub fn watch_aux(&mut self, fd: RawFd) -> Result<(), ReconError> {
        if let Some(old) = self.aux_fd.take() {
            let _ = self.poller.deregister(old);
        }
        self.poller.register(fd, AUX_TOKEN, Interest::READ).map_err(|e| io_err("watch aux", e))?;
        self.aux_fd = Some(fd);
        self.aux_ready = true;
        Ok(())
    }

    /// Stop watching the auxiliary descriptor.
    pub fn unwatch_aux(&mut self) {
        if let Some(fd) = self.aux_fd.take() {
            let _ = self.poller.deregister(fd);
        }
        self.aux_ready = false;
    }

    /// Consume the auxiliary-readiness latch. The caller must then drain the
    /// descriptor to `WouldBlock`; if draining is cut short (e.g. transient
    /// fd exhaustion while accepting), call [`Reactor::mark_aux_ready`] so the
    /// next turn retries even without a fresh edge.
    pub fn take_aux_ready(&mut self) -> bool {
        std::mem::take(&mut self.aux_ready)
    }

    /// Re-latch auxiliary readiness manually; see [`Reactor::take_aux_ready`].
    pub fn mark_aux_ready(&mut self) {
        if self.aux_fd.is_some() {
            self.aux_ready = true;
        }
    }

    /// A handle other threads use to interrupt [`Reactor::turn`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Number of live connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Whether no connections are live.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The endpoint of a live connection.
    pub fn endpoint_mut(&mut self, conn: ConnId) -> Option<&mut Endpoint<T>> {
        self.conns.get_mut(&conn).map(|c| &mut c.endpoint)
    }

    /// Adopt `endpoint`, registering its transport's descriptors and arming a
    /// deadline for every session currently registered on it. The endpoint is
    /// pumped once immediately so opening envelopes go out without waiting for
    /// the first readiness event.
    pub fn insert(&mut self, endpoint: Endpoint<T>) -> Result<ConnId, ReconError> {
        let conn = self.next_conn;
        self.next_conn += 1;
        let read_fd = endpoint.transport().read_fd();
        let write_fd = endpoint.transport().write_fd();
        self.poller
            .register(read_fd, conn << 1, Interest::READ)
            .map_err(|e| io_err("register connection", e))?;
        if write_fd != read_fd {
            // Separate write half (a pipe): registered with no interest until
            // output actually buffers, so hang-ups still surface.
            if let Err(e) = self.poller.register(write_fd, (conn << 1) | 1, Interest::NONE) {
                let _ = self.poller.deregister(read_fd);
                return Err(io_err("register connection (write half)", e));
            }
        }
        let now = Instant::now();
        if let Some(deadline) = self.config.effective_deadline() {
            for session in endpoint.session_ids() {
                self.timers.insert(now + deadline, (conn, session));
            }
        }
        let mut slot = Conn { endpoint, write_armed: false, failed: None, inserted: now };
        // Kick: frame and (attempt to) flush whatever the sessions want to say
        // first; a full socket buffer just arms write interest below.
        if let Err(e) = slot.endpoint.poll_ready(false, false) {
            slot.failed = Some(e);
        }
        self.conns.insert(conn, slot);
        self.settle(conn);
        Ok(conn)
    }

    /// One event-loop iteration; see the module docs. Blocks at most
    /// `max_wait` (`None`: until an event, a timer, or a wake). The visitor
    /// runs for every connection that got an event, *after* it was pumped —
    /// the place to harvest outcomes and retire finished sessions. Returns how
    /// many connections had events.
    pub fn turn(
        &mut self,
        max_wait: Option<Duration>,
        mut visit: impl FnMut(ConnId, &mut Endpoint<T>),
    ) -> Result<usize, ReconError> {
        let now = Instant::now();
        let timer_budget =
            self.timers.next_deadline().map(|deadline| deadline.saturating_duration_since(now));
        let wait = match (max_wait, timer_budget) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (one, other) => one.or(other),
        };
        let mut events = std::mem::take(&mut self.events);
        self.poller.wait(&mut events, wait).map_err(|e| io_err("poller wait", e))?;

        // Merge per-connection readiness (a pipe pair can fire both halves).
        let mut ready: BTreeMap<ConnId, (bool, bool)> = BTreeMap::new();
        for event in &events {
            if event.token == WAKE_TOKEN {
                let mut drain = [0u8; 64];
                while matches!(self.waker_rx.read(&mut drain), Ok(n) if n > 0) {}
                continue;
            }
            if event.token == AUX_TOKEN {
                self.aux_ready = true;
                continue;
            }
            let conn = event.token >> 1;
            let entry = ready.entry(conn).or_insert((false, false));
            if event.token & 1 == 1 {
                // Write-half descriptor: only writability (or its hang-up,
                // which the next flush will surface) is meaningful.
                entry.1 |= event.writable || event.readable;
            } else {
                entry.0 |= event.readable;
                entry.1 |= event.writable;
            }
        }
        self.events = events;

        let touched = ready.len();
        for (&conn, &(readable, writable)) in &ready {
            let Some(slot) = self.conns.get_mut(&conn) else { continue };
            match slot.endpoint.poll_ready(readable, writable) {
                Ok(_) => {
                    visit(conn, &mut slot.endpoint);
                    // The visitor may have registered new sessions (a service
                    // starting a reconciliation in response to a control
                    // message). Their opening envelopes are queued inside the
                    // endpoint, and no readiness event will arrive to flush
                    // them — pump once more before settling.
                    if let Err(e) = slot.endpoint.poll_ready(false, false) {
                        slot.failed = Some(e);
                    }
                }
                Err(e) => slot.failed = Some(e),
            }
        }
        for (conn, _) in ready {
            self.settle(conn);
        }

        // Deadlines, including ones that expired while we were blocked.
        let now = Instant::now();
        let mut due = std::mem::take(&mut self.due);
        self.timers.expire(now, &mut due);
        for (conn, session) in due.drain(..) {
            let Some(slot) = self.conns.get_mut(&conn) else { continue };
            if slot.endpoint.is_finished(session) == Some(false) {
                let waited_ms = now.saturating_duration_since(slot.inserted).as_millis() as u64;
                slot.failed = Some(ReconError::Timeout { waited_ms });
                self.settle(conn);
            }
        }
        self.due = due;
        Ok(touched)
    }

    /// Retire `conn` if it reached a terminal state; otherwise re-arm its
    /// write interest to match the transport's buffered-output state.
    fn settle(&mut self, conn: ConnId) {
        loop {
            let Some(slot) = self.conns.get_mut(&conn) else { return };
            let endpoint = &slot.endpoint;
            let result = if let Some(error) = slot.failed.take() {
                // A peer that vanishes after every session finished is
                // shutdown skew (our Fin hitting its closed socket), not a
                // failure.
                if endpoint.open_sessions() == 0 && !matches!(error, ReconError::Timeout { .. }) {
                    Some(Ok(()))
                } else {
                    Some(Err(error))
                }
            } else if endpoint.transport().is_closed() && endpoint.open_sessions() > 0 {
                Some(Err(ReconError::PeerClosed { open_sessions: endpoint.open_sessions() }))
            } else if endpoint.registered_sessions() == 0 && !endpoint.is_write_blocked() {
                // Every session retired and the Fins are on the wire: done.
                Some(Ok(()))
            } else {
                None
            };

            match result {
                Some(result) => {
                    let slot = self.conns.remove(&conn).expect("checked above");
                    let read_fd = slot.endpoint.transport().read_fd();
                    let write_fd = slot.endpoint.transport().write_fd();
                    let _ = self.poller.deregister(read_fd);
                    if write_fd != read_fd {
                        let _ = self.poller.deregister(write_fd);
                    }
                    self.finished.push(Finished { conn, endpoint: slot.endpoint, result });
                    return;
                }
                None => {
                    let want = slot.endpoint.is_write_blocked();
                    if want == slot.write_armed {
                        return;
                    }
                    let read_fd = slot.endpoint.transport().read_fd();
                    let write_fd = slot.endpoint.transport().write_fd();
                    let armed = if write_fd == read_fd {
                        let interest = if want { Interest::READ_WRITE } else { Interest::READ };
                        self.poller.modify(read_fd, conn << 1, interest)
                    } else {
                        let interest = if want { Interest::WRITE } else { Interest::NONE };
                        self.poller.modify(write_fd, (conn << 1) | 1, interest)
                    };
                    match armed {
                        Ok(()) => {
                            slot.write_armed = want;
                            return;
                        }
                        // Mark failed and take the retirement branch above.
                        Err(e) => slot.failed = Some(io_err("re-arm write interest", e)),
                    }
                }
            }
        }
    }

    /// Connections retired since the last call, in retirement order.
    pub fn take_finished(&mut self) -> Vec<Finished<T>> {
        std::mem::take(&mut self.finished)
    }
}

/// Drive one endpoint to completion on a private poller — the client-side
/// counterpart of a served connection, and the replacement for every
/// sleep-backoff loop the examples used to carry.
///
/// `until` inspects the endpoint after each pumped event (harvest outcomes,
/// retire sessions) and returns `true` once the caller has everything it
/// wants; the driver then drains any buffered output (so final `Fin`s reach
/// the peer) and returns. A `deadline` bounds the whole call with
/// [`ReconError::Timeout`].
pub fn drive_endpoint<T: Transport + Pollable>(
    endpoint: &mut Endpoint<T>,
    config: &ReactorConfig,
    mut until: impl FnMut(&mut Endpoint<T>) -> Result<bool, ReconError>,
) -> Result<(), ReconError> {
    let mut poller = Poller::with_config(config.backend, config.trigger)
        .map_err(|e| io_err("create poller", e))?;
    let started = Instant::now();
    let read_fd = endpoint.transport().read_fd();
    let write_fd = endpoint.transport().write_fd();
    poller.register(read_fd, 0, Interest::READ).map_err(|e| io_err("register", e))?;
    if write_fd != read_fd {
        poller.register(write_fd, 1, Interest::NONE).map_err(|e| io_err("register", e))?;
    }

    endpoint.poll_ready(false, false)?;
    let mut events = Vec::new();
    let mut write_armed = false;
    let mut done = false;
    loop {
        if !done && until(endpoint)? {
            done = true;
        }
        if done && !endpoint.is_write_blocked() {
            return Ok(());
        }
        let want = endpoint.is_write_blocked();
        if want != write_armed {
            let result = if write_fd == read_fd {
                poller.modify(read_fd, 0, if want { Interest::READ_WRITE } else { Interest::READ })
            } else {
                poller.modify(write_fd, 1, if want { Interest::WRITE } else { Interest::NONE })
            };
            result.map_err(|e| io_err("re-arm write interest", e))?;
            write_armed = want;
        }
        let budget = match config.effective_deadline() {
            Some(deadline) => {
                let left = deadline.checked_sub(started.elapsed()).ok_or(ReconError::Timeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                })?;
                Some(left)
            }
            None => None,
        };
        poller.wait(&mut events, budget).map_err(|e| io_err("poller wait", e))?;
        let (mut readable, mut writable) = (false, false);
        for event in &events {
            if event.token == 1 {
                writable |= event.writable || event.readable;
            } else {
                readable |= event.readable;
                writable |= event.writable;
            }
        }
        endpoint.poll_ready(readable, writable)?;
        // EOF leaves a level-triggered descriptor permanently readable; fail
        // fast instead of spinning on a peer that can never answer. Any frames
        // that arrived before the close were dispatched by poll_ready above,
        // so finished-but-unharvested sessions (open_sessions == 0) still get
        // their turn through `until` on the next iteration.
        if endpoint.transport().is_closed() && endpoint.open_sessions() > 0 {
            return Err(ReconError::PeerClosed { open_sessions: endpoint.open_sessions() });
        }
    }
}

/// [`drive_endpoint`] under [`ReactorConfig::retry`]: each attempt gets a
/// fresh endpoint from `make` (a new connection with fresh parties — sessions
/// are stateful and cannot be resumed mid-protocol), bounded by
/// [`ReactorConfig::effective_deadline`]. Retryable failures
/// ([`ReconError::is_retryable`]: lost peers, corrupt frames, stuck or
/// timed-out sessions) are re-run with exponential backoff; anything else —
/// and exhaustion of the attempt budget — returns the last error. On success
/// the attempt's endpoint is handed back for accounting, alongside how many
/// attempts it took (1 = first try).
pub fn drive_endpoint_with_retry<T: Transport + Pollable>(
    config: &ReactorConfig,
    mut make: impl FnMut(u32) -> Result<Endpoint<T>, ReconError>,
    mut until: impl FnMut(&mut Endpoint<T>) -> Result<bool, ReconError>,
) -> Result<(Endpoint<T>, u32), ReconError> {
    recon_base::run_with_retry(&config.retry, |attempt| {
        let mut endpoint = make(attempt)?;
        drive_endpoint(&mut endpoint, config, &mut until)?;
        Ok((endpoint, attempt + 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
    use recon_protocol::{Envelope, Role, StreamTransport};
    use std::net::{TcpListener, TcpStream};

    type TcpEndpoint = Endpoint<StreamTransport<TcpStream, TcpStream>>;

    fn tcp_endpoint_pair() -> (TcpEndpoint, TcpEndpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let wrap = |stream: TcpStream| {
            stream.set_nonblocking(true).expect("nonblocking");
            let reader = stream.try_clone().expect("clone");
            Endpoint::new(StreamTransport::new(reader, stream))
        };
        (wrap(server), wrap(client))
    }

    fn chatty_pair(
        payload: u64,
        retries: u64,
    ) -> (impl recon_protocol::Party<Output = ()>, impl recon_protocol::Party<Output = u64>) {
        let alice = AmplifiedSender::new(8, move |attempt| {
            Ok(Envelope::round(1, "digest", &(payload + attempt)))
        })
        .unwrap();
        let bob = AmplifiedReceiver::new(
            8,
            move |attempt, env: Envelope| {
                if attempt < retries {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            Exhaust::LastError,
        );
        (alice, bob)
    }

    fn run_with_backend(backend: Backend) {
        for trigger in [Trigger::Level, Trigger::Edge] {
            run_with_trigger(backend, trigger);
        }
    }

    fn run_with_trigger(backend: Backend, trigger: Trigger) {
        let (mut server_end, mut client_end) = tcp_endpoint_pair();
        let (alice, bob) = chatty_pair(40, 2);
        server_end.register(0, Role::Alice, alice).unwrap();
        client_end.register(0, Role::Bob, bob).unwrap();

        let config = ReactorConfig {
            session_deadline: Some(Duration::from_secs(10)),
            backend: Some(backend),
            trigger,
            ..ReactorConfig::default()
        };
        let mut reactor = Reactor::new(config.clone()).unwrap();
        assert_eq!(reactor.backend(), backend);
        if backend == Backend::Epoll {
            assert_eq!(reactor.trigger(), trigger);
        } else {
            assert_eq!(reactor.trigger(), Trigger::Level);
        }
        let conn = reactor.insert(server_end).unwrap();
        assert_eq!(reactor.len(), 1);

        // Interleave: the reactor drives the server side off readiness while
        // the client pumps itself speculatively (its own loop is exercised by
        // drive_endpoint below).
        let mut outcome = None;
        for _ in 0..400 {
            reactor
                .turn(Some(Duration::from_millis(5)), |id, endpoint| {
                    assert_eq!(id, conn);
                    endpoint.close_finished();
                })
                .unwrap();
            client_end.poll_ready(true, true).unwrap();
            if outcome.is_none() {
                outcome = client_end.take_outcome::<u64>(0);
            }
            if outcome.is_some() && reactor.is_empty() {
                break;
            }
        }
        let outcome = outcome.expect("client finished").expect("session ok");
        assert_eq!(outcome.recovered, 42);
        let finished = reactor.take_finished();
        assert_eq!(finished.len(), 1);
        assert!(finished[0].result.is_ok(), "{:?}", finished[0].result);
        assert!(finished[0].endpoint.transport().bytes_framed_out() > 0);
    }

    #[test]
    fn reactor_serves_a_connection_on_epoll() {
        if cfg!(target_os = "linux") {
            run_with_backend(Backend::Epoll);
        }
    }

    #[test]
    fn reactor_serves_a_connection_on_poll_fallback() {
        run_with_backend(Backend::Poll);
    }

    #[test]
    fn stalled_sessions_hit_their_deadline() {
        let (mut server_end, _client_end_kept_silent) = tcp_endpoint_pair();
        // Bob waits for an opening message that never comes.
        let (_, bob) = chatty_pair(0, 0);
        server_end.register(0, Role::Bob, bob).unwrap();

        let mut reactor = Reactor::new(ReactorConfig {
            session_deadline: Some(Duration::from_millis(60)),
            ..ReactorConfig::default()
        })
        .unwrap();
        reactor.insert(server_end).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            reactor.turn(Some(Duration::from_millis(10)), |_, _| {}).unwrap();
            let finished = reactor.take_finished();
            if let Some(conn) = finished.into_iter().next() {
                match conn.result {
                    Err(ReconError::Timeout { waited_ms }) => {
                        assert!(waited_ms >= 50, "fired after {waited_ms}ms");
                        break;
                    }
                    other => panic!("expected a timeout, got {other:?}"),
                }
            }
            assert!(Instant::now() < deadline, "deadline never fired");
        }
    }

    #[test]
    fn drive_endpoint_completes_a_client_against_a_reactor() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let config = ReactorConfig::default();

        // Sessions are not Send, so the server builds endpoint and reactor on
        // its own thread — the same shape the multi-reactor Server uses.
        let server_config = config.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            stream.set_nonblocking(true).expect("nonblock");
            let reader = stream.try_clone().expect("clone");
            let mut endpoint = Endpoint::new(StreamTransport::new(reader, stream));
            let (alice, _) = chatty_pair(7, 1);
            endpoint.register(0, Role::Alice, alice).unwrap();
            let mut reactor = Reactor::new(server_config).unwrap();
            reactor.insert(endpoint).unwrap();
            while !reactor.is_empty() {
                reactor
                    .turn(Some(Duration::from_millis(20)), |_, endpoint| {
                        endpoint.close_finished();
                    })
                    .unwrap();
            }
            // Endpoints are not Send either: reduce to plain results here.
            reactor
                .take_finished()
                .into_iter()
                .map(|f| (f.conn, f.result, f.endpoint.transport().bytes_framed_out()))
                .collect::<Vec<_>>()
        });

        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nonblocking(true).expect("nonblock");
        let reader = stream.try_clone().expect("clone");
        let mut client_end = Endpoint::new(StreamTransport::new(reader, stream));
        let (_, bob) = chatty_pair(7, 1);
        client_end.register(0, Role::Bob, bob).unwrap();

        let mut outcome = None;
        drive_endpoint(&mut client_end, &config, |endpoint| {
            if let Some(result) = endpoint.take_outcome::<u64>(0) {
                outcome = Some(result?);
                return Ok(true);
            }
            Ok(false)
        })
        .unwrap();
        assert_eq!(outcome.expect("outcome").recovered, 8);
        let finished = server.join().expect("server thread");
        assert_eq!(finished.len(), 1);
        assert!(finished[0].1.is_ok(), "{:?}", finished[0].1);
        assert!(finished[0].2 > 0, "server framed bytes out");
    }

    #[test]
    fn drive_endpoint_fails_fast_when_the_peer_vanishes_mid_session() {
        let (server_end, mut client_end) = tcp_endpoint_pair();
        let (_, bob) = chatty_pair(3, 2);
        client_end.register(0, Role::Bob, bob).unwrap();
        // The peer hangs up before the session exchanged anything.
        drop(server_end);

        let config = ReactorConfig {
            session_deadline: Some(Duration::from_secs(30)),
            ..ReactorConfig::default()
        };
        let started = Instant::now();
        let result = drive_endpoint(&mut client_end, &config, |endpoint| {
            Ok(endpoint.take_outcome::<u64>(0).is_some())
        });
        match result {
            Err(ReconError::PeerClosed { open_sessions }) => {
                assert_eq!(open_sessions, 1);
            }
            other => panic!("expected a fast close error, got {other:?}"),
        }
        // Fail-fast means an error now, not a 30s deadline (or a spin) later.
        assert!(started.elapsed() < Duration::from_secs(5), "did not fail fast");
    }

    #[test]
    fn drive_endpoint_with_retry_survives_a_dropped_first_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        let server = std::thread::spawn(move || {
            // First connection: hang up before the session exchanges anything.
            let (first, _) = listener.accept().expect("accept");
            drop(first);
            // Second connection: serve the session properly.
            let (stream, _) = listener.accept().expect("accept");
            stream.set_nonblocking(true).expect("nonblock");
            let reader = stream.try_clone().expect("clone");
            let mut endpoint = Endpoint::new(StreamTransport::new(reader, stream));
            let (alice, _) = chatty_pair(5, 1);
            endpoint.register(0, Role::Alice, alice).unwrap();
            let mut reactor = Reactor::new(ReactorConfig::default()).unwrap();
            reactor.insert(endpoint).unwrap();
            while !reactor.is_empty() {
                reactor
                    .turn(Some(Duration::from_millis(20)), |_, endpoint| {
                        endpoint.close_finished();
                    })
                    .unwrap();
            }
        });

        let config = ReactorConfig {
            retry: RetryPolicy::default()
                .backoff(Duration::from_millis(5))
                .attempt_deadline(Duration::from_secs(10)),
            ..ReactorConfig::default()
        };
        let mut outcome = None;
        let (_endpoint, attempts) = drive_endpoint_with_retry(
            &config,
            |_attempt| {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| ReconError::Transport(format!("connect: {e}")))?;
                stream.set_nonblocking(true).expect("nonblock");
                let reader = stream.try_clone().expect("clone");
                let mut endpoint = Endpoint::new(StreamTransport::new(reader, stream));
                let (_, bob) = chatty_pair(5, 1);
                endpoint.register(0, Role::Bob, bob).unwrap();
                Ok(endpoint)
            },
            |endpoint| {
                if let Some(result) = endpoint.take_outcome::<u64>(0) {
                    outcome = Some(result?);
                    return Ok(true);
                }
                Ok(false)
            },
        )
        .expect("retry recovers");
        assert_eq!(attempts, 2, "first attempt hit the dropped peer");
        assert_eq!(outcome.expect("outcome").recovered, 6);
        server.join().expect("server thread");
    }

    #[test]
    fn aux_watch_latches_readiness_until_taken() {
        let mut reactor: Reactor<StreamTransport<TcpStream, TcpStream>> =
            Reactor::new(ReactorConfig { session_deadline: None, ..ReactorConfig::default() })
                .unwrap();
        let (reader, mut writer) = std::io::pipe().expect("os pipe");
        sys::set_nonblocking(reader.as_raw_fd()).unwrap();
        reactor.watch_aux(reader.as_raw_fd()).unwrap();
        // Sticky start: backlog that predates the watch must not be missed.
        assert!(reactor.take_aux_ready());
        assert!(!reactor.take_aux_ready(), "take consumes the latch");

        writer.write_all(&[1]).unwrap();
        reactor.turn(Some(Duration::from_secs(2)), |_, _| {}).unwrap();
        assert!(reactor.take_aux_ready(), "aux readability latches through turn");

        // A caller that could not finish draining re-latches manually.
        reactor.mark_aux_ready();
        assert!(reactor.take_aux_ready());

        reactor.unwatch_aux();
        reactor.mark_aux_ready();
        assert!(!reactor.take_aux_ready(), "unwatched aux never reports ready");
    }

    #[test]
    fn waker_interrupts_a_blocked_turn() {
        let mut reactor: Reactor<StreamTransport<TcpStream, TcpStream>> =
            Reactor::new(ReactorConfig { session_deadline: None, ..ReactorConfig::default() })
                .unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let started = Instant::now();
        // Without the wake this would block for the full two seconds.
        reactor.turn(Some(Duration::from_secs(2)), |_, _| {}).unwrap();
        assert!(started.elapsed() < Duration::from_secs(1), "waker did not interrupt");
        handle.join().unwrap();
    }
}
