//! The [`Poller`]: one blocking-wait readiness queue over many descriptors.
//!
//! Two backends implement the same four-call surface (`register`, `modify`,
//! `deregister`, `wait`):
//!
//! * **epoll** (Linux): the kernel keeps the interest set, `epoll_wait` returns
//!   only ready descriptors — O(ready), the backend a server wants.
//! * **`poll(2)`** (portable): the interest set lives in user space and is
//!   re-submitted on every wait — O(registered), but available on any Unix and
//!   the reference semantics the epoll backend is tested against.
//!
//! The backend is chosen once per [`Poller`]: epoll on Linux unless the
//! `RECON_RUNTIME_FORCE_POLL` environment variable is set (any value except
//! `""`/`"0"`/`"false"`, mirroring `RECON_IBLT_FORCE_SCALAR`), `poll(2)`
//! everywhere else. [`Poller::with_backend`] pins a backend explicitly so
//! differential tests can run both without touching the environment.
//!
//! Delivery is governed by [`Trigger`]. **Level-triggered** (the `poll(2)`
//! semantics, and epoll's default): an event repeats on every wait until the
//! condition is consumed (read to `WouldBlock`, buffered output flushed).
//! **Edge-triggered** ([`Trigger::Edge`], epoll only): each readiness
//! *transition* is reported once, so the kernel skips re-scanning descriptors
//! whose condition merely persists — but the consumer must drain to
//! `WouldBlock` on every event or the descriptor goes silent. The reactor's
//! transports already drain fully (that is the [`Endpoint::poll_ready`]
//! contract), so both modes serve the same traffic; `poll(2)` silently stays
//! level-triggered behind the same API, which is exactly what the differential
//! tests exercise.
//!
//! [`Endpoint::poll_ready`]: recon_protocol::Endpoint::poll_ready

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness conditions a registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable.
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the resting state of every transport.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read and write interest — armed while output is buffered.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
    /// Write-only interest — a separate write descriptor (pipe) with output
    /// pending.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// No interest, but hang-ups and errors are still delivered (they cannot
    /// be masked on either backend).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable — or hung up / errored, which a driver
    /// discovers the same way: by reading until EOF or an error surfaces.
    pub readable: bool,
    /// The descriptor is writable — or errored, surfaced on the next write.
    pub writable: bool,
}

/// The readiness backend a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll`.
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

/// How readiness events are delivered; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trigger {
    /// Re-report a condition on every wait until it is consumed.
    #[default]
    Level,
    /// Report each readiness transition once (`EPOLLET`); epoll only — the
    /// `poll(2)` backend stays level-triggered behind the same API.
    Edge,
}

fn default_backend() -> Backend {
    #[cfg(target_os = "linux")]
    if !recon_base::config::poll_backend_forced() {
        return Backend::Epoll;
    }
    Backend::Poll
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so a 100µs deadline does not busy-spin as "0 ms".
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
        None => -1,
    }
}

/// A readiness queue over raw descriptors; see the module docs.
#[derive(Debug)]
pub struct Poller {
    imp: Imp,
}

#[derive(Debug)]
enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    /// A poller on the default backend: epoll on Linux (unless
    /// `RECON_RUNTIME_FORCE_POLL` is set), `poll(2)` otherwise.
    /// Level-triggered; use [`Poller::with_config`] for edge-triggered epoll.
    pub fn new() -> io::Result<Self> {
        Self::with_config(None, Trigger::Level)
    }

    /// A poller pinned to `backend`. Requesting [`Backend::Epoll`] off Linux is
    /// an error.
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        Self::with_config(Some(backend), Trigger::Level)
    }

    /// A poller with an explicit backend (or the [`Poller::new`] default when
    /// `None`) and delivery mode. [`Trigger::Edge`] only takes effect on the
    /// epoll backend; `poll(2)` has no edge mode and stays level-triggered —
    /// by design, so the same config can run on either backend and the
    /// differential tests can diff their behaviour.
    pub fn with_config(backend: Option<Backend>, trigger: Trigger) -> io::Result<Self> {
        match backend.unwrap_or_else(default_backend) {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                Ok(Self { imp: Imp::Epoll(EpollPoller::new(trigger == Trigger::Edge)?) })
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                Err(io::Error::new(io::ErrorKind::Unsupported, "epoll backend requires Linux"))
            }
            Backend::Poll => Ok(Self { imp: Imp::Poll(PollPoller::new()) }),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => Backend::Epoll,
            Imp::Poll(_) => Backend::Poll,
        }
    }

    /// The *effective* delivery mode: [`Trigger::Edge`] only when this poller
    /// is epoll and was configured edge-triggered.
    pub fn trigger(&self) -> Trigger {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) if ep.edge => Trigger::Edge,
            _ => Trigger::Level,
        }
    }

    /// Start watching `fd` under `token`. One registration per descriptor.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.register(fd, token, interest),
            Imp::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Re-arm `fd` with a new interest set (and token).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.modify(fd, token, interest),
            Imp::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.deregister(fd),
            Imp::Poll(p) => p.deregister(fd),
        }
    }

    /// Block until at least one registered descriptor is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events` with what fired.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.wait(events, timeout),
            Imp::Poll(p) => p.wait(events, timeout),
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollPoller {
    ep: sys::OwnedSysFd,
    scratch: Vec<sys::EpollEvent>,
    edge: bool,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new(edge: bool) -> io::Result<Self> {
        Ok(Self {
            ep: sys::epoll_create()?,
            scratch: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            edge,
        })
    }

    fn mask(&self, interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.readable {
            mask |= sys::EPOLLIN;
        }
        if interest.writable {
            mask |= sys::EPOLLOUT;
        }
        if self.edge {
            // EPOLL_CTL_MOD re-arms an edge registration and redelivers if the
            // condition holds, so interest changes stay race-free under ET.
            mask |= sys::EPOLLET;
        }
        mask
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(&self.ep, fd, self.mask(interest), token)
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_modify(&self.ep, fd, self.mask(interest), token)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_remove(&self.ep, fd)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let n = sys::epoll_wait_events(&self.ep, &mut self.scratch, timeout_ms(timeout))?;
        for raw in &self.scratch[..n] {
            // Copy out of the (packed on x86_64) kernel struct before use.
            let (mask, token) = (raw.events, raw.data);
            events.push(Event {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PollPoller {
    entries: Vec<PollEntry>,
    scratch: Vec<sys::PollFd>,
}

#[derive(Debug, Clone, Copy)]
struct PollEntry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

impl PollPoller {
    fn new() -> Self {
        Self { entries: Vec::new(), scratch: Vec::new() }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|e| e.fd == fd)
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} already registered"),
            ));
        }
        self.entries.push(PollEntry { fd, token, interest });
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let i = self.position(fd).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} not registered"))
        })?;
        self.entries[i] = PollEntry { fd, token, interest };
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self.position(fd).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} not registered"))
        })?;
        self.entries.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.scratch.clear();
        for entry in &self.entries {
            let mut mask = 0;
            if entry.interest.readable {
                mask |= sys::POLLIN;
            }
            if entry.interest.writable {
                mask |= sys::POLLOUT;
            }
            self.scratch.push(sys::PollFd { fd: entry.fd, events: mask, revents: 0 });
        }
        // With no registrations, poll(2) with nfds = 0 degrades to a pure
        // timed wait — still the kernel's clock, never a spin. In practice a
        // reactor always has at least its waker registered.
        sys::poll_fds(&mut self.scratch, timeout_ms(timeout))?;
        for (entry, pollfd) in self.entries.iter().zip(&self.scratch) {
            let revents = pollfd.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token: entry.token,
                readable: revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                writable: revents & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        let mut backends = vec![Backend::Poll];
        if cfg!(target_os = "linux") {
            backends.push(Backend::Epoll);
        }
        backends
    }

    #[test]
    fn both_backends_report_readability_with_tokens() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            let (reader, mut writer) = std::io::pipe().expect("os pipe");
            crate::sys::set_nonblocking(reader.as_raw_fd()).unwrap();
            poller.register(reader.as_raw_fd(), 42, Interest::READ).unwrap();

            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(events.is_empty(), "{backend:?}: empty pipe must not fire");

            writer.write_all(&[9]).unwrap();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);

            // Hang-up surfaces as readable (EOF on the next read).
            drop(writer);
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert!(events.iter().any(|e| e.readable), "{backend:?}: HUP must wake the reader");

            poller.deregister(reader.as_raw_fd()).unwrap();
            poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered fd must not fire");
        }
    }

    #[test]
    fn write_interest_follows_modify() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (_reader, writer) = std::io::pipe().expect("os pipe");
            crate::sys::set_nonblocking(writer.as_raw_fd()).unwrap();
            // Registered without write interest: an empty pipe is writable,
            // but nothing may fire.
            poller.register(writer.as_raw_fd(), 7, Interest::NONE).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(events.is_empty(), "{backend:?}: unarmed write interest fired");

            poller.modify(writer.as_raw_fd(), 7, Interest::WRITE).unwrap();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].writable);
        }
    }

    #[test]
    fn poll_backend_rejects_duplicate_and_unknown_fds() {
        let mut poller = Poller::with_backend(Backend::Poll).unwrap();
        let (reader, _writer) = std::io::pipe().expect("os pipe");
        poller.register(reader.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(poller.register(reader.as_raw_fd(), 2, Interest::READ).is_err());
        assert!(poller.modify(9999, 1, Interest::READ).is_err());
        assert!(poller.deregister(9999).is_err());
    }

    #[test]
    fn trigger_is_edge_only_on_epoll() {
        let poll = Poller::with_config(Some(Backend::Poll), Trigger::Edge).unwrap();
        assert_eq!(poll.trigger(), Trigger::Level, "poll(2) has no edge mode");
        #[cfg(target_os = "linux")]
        {
            let ep = Poller::with_config(Some(Backend::Epoll), Trigger::Edge).unwrap();
            assert_eq!(ep.trigger(), Trigger::Edge);
            let lt = Poller::with_config(Some(Backend::Epoll), Trigger::Level).unwrap();
            assert_eq!(lt.trigger(), Trigger::Level);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn edge_triggered_reports_transitions_once_level_repeats() {
        use std::io::Read as _;

        for (trigger, repeats) in [(Trigger::Level, true), (Trigger::Edge, false)] {
            let mut poller = Poller::with_config(Some(Backend::Epoll), trigger).unwrap();
            let (mut reader, mut writer) = std::io::pipe().expect("os pipe");
            crate::sys::set_nonblocking(reader.as_raw_fd()).unwrap();
            poller.register(reader.as_raw_fd(), 1, Interest::READ).unwrap();

            writer.write_all(&[1, 2, 3]).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1, "{trigger:?}: first wait sees the data");

            // Without consuming the data, wait again: level re-reports, edge
            // stays silent until the next transition.
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert_eq!(!events.is_empty(), repeats, "{trigger:?}: repeat semantics");

            // After draining to WouldBlock, new data is a fresh transition and
            // must fire under both modes.
            let mut buf = [0u8; 16];
            assert_eq!(reader.read(&mut buf).unwrap(), 3);
            writer.write_all(&[4]).unwrap();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1, "{trigger:?}: new data is a new edge");

            // EPOLL_CTL_MOD re-arms: data still unread + re-arm => redelivery
            // even under ET (this is what makes interest flips safe).
            poller.modify(reader.as_raw_fd(), 1, Interest::READ).unwrap();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1, "{trigger:?}: MOD redelivers pending readiness");
        }
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(10))), 10);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
    }
}
