//! The multi-reactor [`Server`]: accepted TCP connections fanned out across
//! worker [`Reactor`]s, with two accept topologies.
//!
//! **Sharded** ([`AcceptMode::Sharded`], the Linux default): every worker
//! binds its *own* `SO_REUSEPORT` listener on the shared port and accepts
//! directly inside its reactor loop — the kernel hashes incoming 4-tuples
//! across the listeners, there is no acceptor thread, no cross-thread stream
//! hand-off, and no intake lock on the hot path.
//!
//! ```text
//!        port P ── kernel SO_REUSEPORT hash ──┬──────────────┐
//!                                             ▼              ▼
//!                                      listener 0   …  listener N-1
//!                                             │              │
//!                                      worker reactor 0 … reactor N-1
//! ```
//!
//! **Balanced** ([`AcceptMode::Balanced`], the portable fallback): one central
//! non-blocking listener on its own acceptor thread pushes each stream to the
//! less loaded of two sampled workers ("power of two choices": max load within
//! `O(log log n)` of the mean — see Walzer's *"What if we tried Less Power?"*
//! in PAPERS.md) through a mutex-guarded intake plus a reactor
//! [`Waker`](crate::Waker).
//!
//! Each worker owns one single-threaded [`Reactor`], one [`TcpService`]
//! instance (built by the factory passed to [`Server::bind`]), and one
//! [`BufferPool`] recycling connection buffers so steady-state serving
//! allocates nothing per session. Sessions never cross threads after
//! registration, which is what lets the endpoint layer stay `!Send`.

use crate::poller::{Backend, Interest, Poller, Trigger};
use crate::reactor::{ConnId, Reactor, ReactorConfig};
use crate::sys;
use recon_base::rng::Xoshiro256;
use recon_base::{ReconError, RetryPolicy};
use recon_protocol::{BufferPool, Endpoint, StreamTransport, Transport as _};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// The transport a served TCP connection runs on.
pub type TcpTransport = StreamTransport<TcpStream, TcpStream>;
/// The endpoint a served TCP connection runs on.
pub type TcpEndpoint = Endpoint<TcpTransport>;

/// Per-worker protocol logic a [`Server`] runs. One instance per worker
/// thread, so implementations need `Send` but never `Sync`; shared read-only
/// state (the authoritative dataset) travels in an `Arc` inside the factory.
pub trait TcpService: Send + 'static {
    /// Install the local halves of this connection's sessions. Runs before the
    /// connection joins the reactor, so everything registered here is covered
    /// by the per-session deadlines.
    fn register(&mut self, peer: SocketAddr, endpoint: &mut TcpEndpoint) -> Result<(), ReconError>;

    /// The connection joined worker `conn`'s reactor.
    fn on_accepted(&mut self, _conn: ConnId, _peer: SocketAddr) {}

    /// The connection was pumped by a readiness event: harvest finished
    /// sessions (`take_outcome` / `close`) here. A connection retires once
    /// every session is closed and its output has drained. The default
    /// implementation is [`Endpoint::close_finished`] — retire everything
    /// finished, discarding outcomes and stats, allocation-free — right for
    /// fire-and-forget serving (an Alice side whose parties produce no
    /// output); override it to collect outcomes.
    fn on_progress(&mut self, _conn: ConnId, endpoint: &mut TcpEndpoint) {
        endpoint.close_finished();
    }

    /// The connection retired; `result` is `Ok` for a clean close.
    fn on_closed(
        &mut self,
        _conn: ConnId,
        _endpoint: &TcpEndpoint,
        _result: &Result<(), ReconError>,
    ) {
    }
}

/// How a [`Server`] distributes incoming connections to its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptMode {
    /// One `SO_REUSEPORT` listener per worker, accepted inside each worker's
    /// reactor loop (Linux). Falls back to [`AcceptMode::Balanced`] where the
    /// socket option is unavailable.
    Sharded,
    /// One central listener on an acceptor thread, two-choice least-loaded
    /// balancing to worker intakes. Portable.
    Balanced,
}

impl Default for AcceptMode {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            AcceptMode::Sharded
        } else {
            AcceptMode::Balanced
        }
    }
}

/// Tuning for a [`Server`].
///
/// Construct with [`ServerConfig::new`] and chain the builder methods, or use
/// struct-update syntax — every field stays public. The resource caps exist so
/// a hostile peer cannot grow a worker's memory without bound: an oversized
/// length prefix fails with [`ReconError::FrameTooLarge`] before the body is
/// buffered, a session-registration flood with [`ReconError::ResourceExhausted`],
/// and a peer that refuses to drain our output is cut off once
/// [`max_buffered_out`](ServerConfig::max_buffered_out) is reached.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker reactors (threads). At least 1.
    pub workers: usize,
    /// Per-session deadline applied by every worker reactor.
    pub session_deadline: Option<Duration>,
    /// Pin the poller backend for the acceptor and all workers.
    pub backend: Option<Backend>,
    /// Readiness delivery mode for the worker reactors (edge-triggered by
    /// default; see [`ReactorConfig::trigger`]).
    pub trigger: Trigger,
    /// Accept topology; defaults to sharded on Linux, balanced elsewhere.
    pub accept_mode: AcceptMode,
    /// Seed for the balancer's two random worker choices (balanced mode).
    pub accept_seed: u64,
    /// Largest frame a peer may send, enforced on the length prefix before
    /// any body bytes are buffered. Default 16 MiB — far above any frame the
    /// protocol families produce, far below what exhausts a worker.
    pub max_frame_bytes: usize,
    /// Most sessions a single connection may have registered at once
    /// (excess registrations fail, surfaced to the peer by services that
    /// answer control requests). Default 1024.
    pub max_sessions_per_conn: usize,
    /// Cap on bytes buffered for output per connection, covering peers that
    /// stop reading while sessions keep producing. Default 32 MiB (always at
    /// least one max-sized frame plus its prefix).
    pub max_buffered_out: usize,
    /// Recovery policy forwarded to every worker's [`ReactorConfig::retry`]:
    /// its `attempt_deadline`, when set, overrides `session_deadline` as the
    /// per-session time budget. Default [`RetryPolicy::none`].
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4),
            session_deadline: Some(Duration::from_secs(30)),
            backend: None,
            trigger: Trigger::Edge,
            accept_mode: AcceptMode::default(),
            accept_seed: 0x2C01CE5,
            max_frame_bytes: 16 << 20,
            max_sessions_per_conn: 1024,
            max_buffered_out: 32 << 20,
            retry: RetryPolicy::none(),
        }
    }
}

impl ServerConfig {
    /// [`ServerConfig::default`], as the root of a builder chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker reactors.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the per-session deadline (`None` disables deadlines).
    pub fn session_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.session_deadline = deadline;
        self
    }

    /// Pin the poller backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Set the readiness delivery mode.
    pub fn trigger(mut self, trigger: Trigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Set the accept topology.
    pub fn accept_mode(mut self, mode: AcceptMode) -> Self {
        self.accept_mode = mode;
        self
    }

    /// Seed the balanced-mode two-choice sampler.
    pub fn accept_seed(mut self, seed: u64) -> Self {
        self.accept_seed = seed;
        self
    }

    /// Cap the per-peer frame size.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Cap concurrent sessions per connection.
    pub fn max_sessions_per_conn(mut self, sessions: usize) -> Self {
        self.max_sessions_per_conn = sessions;
        self
    }

    /// Cap buffered output bytes per connection.
    pub fn max_buffered_out(mut self, bytes: usize) -> Self {
        self.max_buffered_out = bytes;
        self
    }

    /// Set the recovery policy forwarded to the workers.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The resource caps as one bundle, applied to each adopted connection.
    fn caps(&self) -> ConnCaps {
        ConnCaps {
            max_frame_bytes: self.max_frame_bytes,
            max_sessions_per_conn: self.max_sessions_per_conn,
            // A connection must always be able to buffer one full frame, or a
            // legitimate max-sized send would be rejected outright.
            max_buffered_out: self.max_buffered_out.max(self.max_frame_bytes + 16),
        }
    }
}

/// Per-connection resource caps, applied at adoption time.
#[derive(Debug, Clone, Copy)]
struct ConnCaps {
    max_frame_bytes: usize,
    max_sessions_per_conn: usize,
    max_buffered_out: usize,
}

impl ConnCaps {
    fn apply(&self, endpoint: &mut TcpEndpoint) {
        endpoint.transport_mut().set_max_frame(self.max_frame_bytes);
        endpoint.transport_mut().set_max_buffered_out(self.max_buffered_out);
        endpoint.set_max_sessions(self.max_sessions_per_conn);
    }
}

/// What a [`Server`] did over its lifetime, returned by [`Server::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections each worker retired cleanly, in worker order.
    pub served_per_worker: Vec<u64>,
    /// Connections each worker took in, in worker order: direct accepts in
    /// sharded mode, intake adoptions in balanced mode. Shows how evenly the
    /// kernel (or the balancer) spread the load.
    pub accepted_per_worker: Vec<u64>,
    /// Connections that retired with an error (including registration
    /// failures), across all workers.
    pub failed: u64,
}

impl ServerStats {
    /// Total connections retired cleanly.
    pub fn served(&self) -> u64 {
        self.served_per_worker.iter().sum()
    }
}

struct WorkerShared {
    intake: Mutex<Vec<(TcpStream, SocketAddr)>>,
    /// Live connections assigned to this worker (queued or in its reactor) —
    /// the balancer's load signal.
    load: AtomicU64,
    /// Cleared when the worker's loop returns *or unwinds* (panicking service
    /// callbacks included), so the balancer stops routing to a dead worker.
    alive: AtomicBool,
}

/// Marks the worker dead on every exit path, including panics.
struct AliveGuard<'a>(&'a AtomicBool);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

struct WorkerReport {
    served: u64,
    accepted: u64,
    failed: u64,
}

/// A listening multi-reactor server; see the module docs. Runs until
/// [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepting_done: Arc<AtomicBool>,
    accept_wake: std::io::PipeWriter,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<WorkerReport>>,
    worker_wakers: Vec<crate::reactor::Waker>,
    shared: Vec<Arc<WorkerShared>>,
}

fn io_err(context: &str, e: std::io::Error) -> ReconError {
    ReconError::Transport(format!("{context}: {e}"))
}

/// Tear down already-spawned worker threads on a failed `Server::bind`.
/// Without `accepting_done` the workers' exit condition could never hold and
/// they would spin (and leak their reactors) forever.
fn abort_workers<'a>(
    stop: &AtomicBool,
    accepting_done: &AtomicBool,
    wakers: impl IntoIterator<Item = &'a crate::reactor::Waker>,
    workers: Vec<std::thread::JoinHandle<WorkerReport>>,
) {
    stop.store(true, Ordering::SeqCst);
    accepting_done.store(true, Ordering::SeqCst);
    for waker in wakers {
        waker.wake();
    }
    for handle in workers {
        let _ = handle.join();
    }
}

impl Server {
    /// Bind `addr` and start serving: one acceptor thread plus
    /// `config.workers` reactor threads, each running the service returned by
    /// `factory(worker_index)`.
    pub fn bind<S: TcpService>(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        mut factory: impl FnMut(usize) -> S,
    ) -> Result<Server, ReconError> {
        let addrs: Vec<SocketAddr> =
            addr.to_socket_addrs().map_err(|e| io_err("resolve addr", e))?.collect();
        if addrs.is_empty() {
            return Err(ReconError::Transport("bind: address resolved to nothing".into()));
        }
        let workers_n = config.workers.max(1);

        // Sharded accept: one SO_REUSEPORT listener per worker; the central
        // listener and acceptor thread disappear entirely. Any setup failure
        // (non-Linux, exotic socket restrictions) falls back to balanced mode.
        let mut shard_listeners: Option<Vec<TcpListener>> = None;
        if config.accept_mode == AcceptMode::Sharded {
            for &candidate in &addrs {
                if let Ok(listeners) = sharded_listeners(candidate, workers_n) {
                    shard_listeners = Some(listeners);
                    break;
                }
            }
        }
        let (listener, local_addr) = match &shard_listeners {
            Some(listeners) => {
                (None, listeners[0].local_addr().map_err(|e| io_err("local addr", e))?)
            }
            None => {
                let listener = TcpListener::bind(&addrs[..]).map_err(|e| io_err("bind", e))?;
                listener.set_nonblocking(true).map_err(|e| io_err("listener nonblock", e))?;
                let local_addr = listener.local_addr().map_err(|e| io_err("local addr", e))?;
                (Some(listener), local_addr)
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accepting_done = Arc::new(AtomicBool::new(false));

        let mut shard_listeners = shard_listeners.map(Vec::into_iter);
        let mut shared = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        let (waker_tx, waker_rx) = mpsc::channel();
        for worker in 0..workers_n {
            let worker_shared = Arc::new(WorkerShared {
                intake: Mutex::new(Vec::new()),
                load: AtomicU64::new(0),
                alive: AtomicBool::new(true),
            });
            shared.push(Arc::clone(&worker_shared));
            let reactor_config = ReactorConfig {
                session_deadline: config.session_deadline,
                backend: config.backend,
                trigger: config.trigger,
                // Disjoint id ranges so connection ids are process-unique.
                first_conn_id: (worker as ConnId) << 48,
                retry: config.retry,
            };
            let caps = config.caps();
            let shard = shard_listeners.as_mut().and_then(Iterator::next);
            let service = factory(worker);
            let stop = Arc::clone(&stop);
            let accepting_done = Arc::clone(&accepting_done);
            let waker_tx = waker_tx.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    reactor_config,
                    caps,
                    shard,
                    worker_shared,
                    service,
                    stop,
                    accepting_done,
                    waker_tx,
                )
            }));
        }
        drop(waker_tx);
        // The reactors build their wakers on their own threads; collect them
        // before accepting the first connection.
        let mut worker_wakers: Vec<(usize, crate::reactor::Waker)> =
            waker_rx.iter().take(workers_n).collect();
        if worker_wakers.len() < workers_n {
            abort_workers(&stop, &accepting_done, worker_wakers.iter().map(|(_, w)| w), workers);
            return Err(ReconError::Transport("a worker reactor failed to start".into()));
        }
        worker_wakers.sort_by_key(|(worker, _)| *worker);
        let worker_wakers: Vec<_> = worker_wakers.into_iter().map(|(_, waker)| waker).collect();

        let (accept_wake_rx, accept_wake) = match std::io::pipe() {
            Ok(pipe) => pipe,
            Err(e) => {
                abort_workers(&stop, &accepting_done, &worker_wakers, workers);
                return Err(io_err("acceptor wake pipe", e));
            }
        };
        if let Err(e) = sys::set_nonblocking(accept_wake_rx.as_raw_fd()) {
            abort_workers(&stop, &accepting_done, &worker_wakers, workers);
            return Err(io_err("acceptor wake nonblock", e));
        }
        // Sharded mode has no acceptor thread — workers accept for themselves.
        let acceptor = listener.map(|listener| {
            let stop = Arc::clone(&stop);
            let shared = shared.clone();
            let wakers = worker_wakers.clone();
            let backend = config.backend;
            let seed = config.accept_seed;
            std::thread::spawn(move || {
                accept_loop(listener, accept_wake_rx, stop, shared, wakers, backend, seed)
            })
        });

        Ok(Server {
            local_addr,
            stop,
            accepting_done,
            accept_wake,
            acceptor,
            workers,
            worker_wakers,
            shared,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connections currently assigned to each worker.
    pub fn loads(&self) -> Vec<u64> {
        self.shared.iter().map(|s| s.load.load(Ordering::SeqCst)).collect()
    }

    /// Stop accepting, let in-flight connections finish (bounded by their
    /// session deadlines), and join every thread.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&self.accept_wake).write(&[1]);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Only after the acceptor has fully exited may workers treat an empty
        // intake as final — otherwise a connection accepted during shutdown
        // could land in the intake of a worker that already returned.
        self.accepting_done.store(true, Ordering::SeqCst);
        for waker in &self.worker_wakers {
            waker.wake();
        }
        let mut stats = ServerStats {
            served_per_worker: Vec::new(),
            accepted_per_worker: Vec::new(),
            failed: 0,
        };
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(report) => {
                    stats.served_per_worker.push(report.served);
                    stats.accepted_per_worker.push(report.accepted);
                    stats.failed += report.failed;
                }
                Err(_) => {
                    stats.served_per_worker.push(0);
                    stats.accepted_per_worker.push(0);
                    stats.failed += 1;
                }
            }
        }
        stats
    }
}

/// Per-worker SO_REUSEPORT listeners sharing one port: the first may bind
/// port 0; the rest bind the resolved concrete address.
fn sharded_listeners(addr: SocketAddr, workers: usize) -> std::io::Result<Vec<TcpListener>> {
    #[cfg(target_os = "linux")]
    {
        let first = sys::reuseport_listener(addr)?;
        let concrete = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..workers {
            listeners.push(sys::reuseport_listener(concrete)?);
        }
        Ok(listeners)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (addr, workers);
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "SO_REUSEPORT accept sharding requires Linux",
        ))
    }
}

/// One worker: a reactor, its service, its buffer pool, and either its own
/// sharded listener or the balanced intake handshake.
#[allow(clippy::too_many_arguments)]
fn worker_loop<S: TcpService>(
    config: ReactorConfig,
    caps: ConnCaps,
    mut listener: Option<TcpListener>,
    shared: Arc<WorkerShared>,
    mut service: S,
    stop: Arc<AtomicBool>,
    accepting_done: Arc<AtomicBool>,
    waker_tx: mpsc::Sender<(usize, crate::reactor::Waker)>,
) -> WorkerReport {
    // Dropped on every exit path (panics included): tells the balancer to
    // stop routing connections here.
    let _alive = AliveGuard(&shared.alive);
    let worker = (config.first_conn_id >> 48) as usize;
    let mut report = WorkerReport { served: 0, accepted: 0, failed: 0 };
    let Ok(mut reactor) = Reactor::<TcpTransport>::new(config) else {
        // Dropping the sender makes bind() fail loudly.
        return report;
    };
    if let Some(shard) = &listener {
        // Watched alongside the connections; readiness latches sticky, so a
        // backlog predating this registration is still drained.
        if reactor.watch_aux(shard.as_raw_fd()).is_err() {
            return report;
        }
    }
    if waker_tx.send((worker, reactor.waker())).is_err() {
        return report;
    }
    drop(waker_tx);
    let mut pool = BufferPool::new();

    loop {
        // Stop accepting the moment shutdown starts: deregister and close our
        // shard so new connections get a reset, then drain what's in flight.
        if stop.load(Ordering::SeqCst) && listener.is_some() {
            reactor.unwatch_aux();
            listener = None;
        }

        // Sharded mode: accept straight off our own listener. Must drain to
        // WouldBlock — under edge-triggered delivery no event repeats for a
        // backlog we leave behind.
        if let Some(shard) = &listener {
            if reactor.take_aux_ready() {
                loop {
                    match shard.accept() {
                        Ok((stream, peer)) => {
                            shared.load.fetch_add(1, Ordering::SeqCst);
                            report.accepted += 1;
                            match adopt(&mut reactor, caps, &mut service, &mut pool, stream, peer) {
                                Ok(conn) => service.on_accepted(conn, peer),
                                Err(_) => {
                                    shared.load.fetch_sub(1, Ordering::SeqCst);
                                    report.failed += 1;
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        // Transient accept failure (aborted handshake, EMFILE):
                        // re-latch so the next turn (≤200ms away) retries even
                        // without a fresh readiness edge.
                        Err(_) => {
                            reactor.mark_aux_ready();
                            break;
                        }
                    }
                }
            }
        }

        // Balanced mode: adopt whatever the acceptor queued.
        let streams: Vec<(TcpStream, SocketAddr)> =
            std::mem::take(&mut *shared.intake.lock().expect("intake lock"));
        for (stream, peer) in streams {
            report.accepted += 1;
            match adopt(&mut reactor, caps, &mut service, &mut pool, stream, peer) {
                Ok(conn) => service.on_accepted(conn, peer),
                Err(_) => {
                    shared.load.fetch_sub(1, Ordering::SeqCst);
                    report.failed += 1;
                }
            }
        }

        // Hand back retired connections, recycling their buffers.
        for mut finished in reactor.take_finished() {
            shared.load.fetch_sub(1, Ordering::SeqCst);
            service.on_closed(finished.conn, &finished.endpoint, &finished.result);
            pool.put_back(finished.endpoint.transport_mut().take_buffers());
            match finished.result {
                Ok(()) => report.served += 1,
                Err(_) => report.failed += 1,
            }
        }

        // Exit only once accepting is over for good: in balanced mode the
        // acceptor must be gone (a fresh connection could still land in our
        // intake until then); in sharded mode our listener is already closed.
        if stop.load(Ordering::SeqCst)
            && accepting_done.load(Ordering::SeqCst)
            && reactor.is_empty()
            && shared.intake.lock().expect("intake lock").is_empty()
        {
            return report;
        }

        // The waker interrupts this for intake and shutdown; the cap is a
        // safety tick so a missed wake can never park the worker for good.
        if reactor
            .turn(Some(Duration::from_millis(200)), |conn, endpoint| {
                service.on_progress(conn, endpoint)
            })
            .is_err()
        {
            // A poller-level failure is unrecoverable for this worker.
            report.failed += 1;
            return report;
        }
    }
}

fn adopt<S: TcpService>(
    reactor: &mut Reactor<TcpTransport>,
    caps: ConnCaps,
    service: &mut S,
    pool: &mut BufferPool,
    stream: TcpStream,
    peer: SocketAddr,
) -> Result<ConnId, ReconError> {
    stream.set_nonblocking(true).map_err(|e| io_err("conn nonblock", e))?;
    // Frames are small and latency-coupled (a session round-trips); letting
    // Nagle batch them against delayed ACKs costs tens of ms per exchange.
    stream.set_nodelay(true).map_err(|e| io_err("conn nodelay", e))?;
    let reader = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
    let mut endpoint =
        Endpoint::new(StreamTransport::with_buffers(reader, stream, pool.checkout()));
    caps.apply(&mut endpoint);
    if let Err(e) = service.register(peer, &mut endpoint) {
        pool.put_back(endpoint.transport_mut().take_buffers());
        return Err(e);
    }
    reactor.insert(endpoint)
}

/// Dial `addr` and wrap the stream as a non-blocking, no-delay
/// [`TcpEndpoint`] — the client-side counterpart of the server's adoption
/// path, ready for [`drive_endpoint`](crate::drive_endpoint).
pub fn connect_endpoint(addr: impl ToSocketAddrs) -> Result<TcpEndpoint, ReconError> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    stream.set_nonblocking(true).map_err(|e| io_err("conn nonblock", e))?;
    stream.set_nodelay(true).map_err(|e| io_err("conn nodelay", e))?;
    let reader = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
    Ok(Endpoint::new(StreamTransport::new(reader, stream)))
}

/// The acceptor: its own tiny event loop over the listener plus a wake pipe,
/// pushing each accepted stream to the less loaded of two sampled workers.
fn accept_loop(
    listener: TcpListener,
    wake_rx: std::io::PipeReader,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<WorkerShared>>,
    wakers: Vec<crate::reactor::Waker>,
    backend: Option<Backend>,
    seed: u64,
) {
    let mut wake_rx = wake_rx;
    let mut poller = match backend {
        Some(backend) => Poller::with_backend(backend),
        None => Poller::new(),
    }
    .expect("acceptor poller");
    poller.register(listener.as_raw_fd(), 0, Interest::READ).expect("register listener");
    poller.register(wake_rx.as_raw_fd(), 1, Interest::READ).expect("register acceptor waker");
    let mut rng = Xoshiro256::new(seed);
    let mut events = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        if poller.wait(&mut events, Some(Duration::from_millis(500))).is_err() {
            break;
        }
        let mut drain = [0u8; 64];
        while matches!(wake_rx.read(&mut drain), Ok(n) if n > 0) {}
        let mut transient_error = false;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let Some(worker) = pick_two_choices(&shared, &mut rng) else {
                        // Every worker is dead; dropping the stream resets the
                        // client rather than parking it in a dead intake.
                        drop(stream);
                        continue;
                    };
                    shared[worker].load.fetch_add(1, Ordering::SeqCst);
                    shared[worker].intake.lock().expect("intake lock").push((stream, peer));
                    wakers[worker].wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Aborted handshakes, fd exhaustion (EMFILE), and other
                // transient errors: keep serving, but back off below.
                Err(_) => {
                    transient_error = true;
                    break;
                }
            }
        }
        if transient_error {
            // The pending connection keeps the listener level-triggered
            // readable, so an un-accepted error (EMFILE until fds free up)
            // would otherwise hot-loop this thread. poll(2) with no
            // descriptors is a pure kernel-timed wait.
            let _ = sys::poll_fds(&mut [], 50);
        }
    }
}

/// Sample two distinct *live* workers uniformly and return the less loaded one
/// (ties go to the first sample) — the classic power-of-two-choices balancer.
/// `None` when no worker is alive.
fn pick_two_choices(shared: &[Arc<WorkerShared>], rng: &mut Xoshiro256) -> Option<usize> {
    let alive: Vec<usize> =
        (0..shared.len()).filter(|&w| shared[w].alive.load(Ordering::SeqCst)).collect();
    let n = alive.len();
    match n {
        0 => None,
        1 => Some(alive[0]),
        _ => {
            let i = rng.next_below(n as u64) as usize;
            let mut j = rng.next_below(n as u64 - 1) as usize;
            if j >= i {
                j += 1;
            }
            let (first, second) = (alive[i], alive[j]);
            if shared[second].load.load(Ordering::SeqCst)
                < shared[first].load.load(Ordering::SeqCst)
            {
                Some(second)
            } else {
                Some(first)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::drive_endpoint;
    use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
    use recon_protocol::{Envelope, Role};

    struct EchoNumbers;

    impl TcpService for EchoNumbers {
        fn register(
            &mut self,
            _peer: SocketAddr,
            endpoint: &mut TcpEndpoint,
        ) -> Result<(), ReconError> {
            // One Alice session per connection, payload fixed by protocol.
            let alice = AmplifiedSender::new(4, |attempt| {
                Ok(Envelope::round(1, "digest", &(1000 + attempt)))
            })
            .expect("sender");
            endpoint.register(0, Role::Alice, alice)
        }
        // on_progress: the default close-all-finished harvest is exactly right.
    }

    fn run_client(addr: SocketAddr, retries: u64) -> u64 {
        let mut endpoint = connect_endpoint(addr).expect("connect");
        let bob = AmplifiedReceiver::new(
            4,
            move |attempt, env: Envelope| {
                if attempt < retries {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            Exhaust::LastError,
        );
        endpoint.register(0, Role::Bob, bob).expect("register");
        let mut recovered = None;
        drive_endpoint(&mut endpoint, &crate::reactor::ReactorConfig::default(), |endpoint| {
            match endpoint.take_outcome::<u64>(0) {
                Some(outcome) => {
                    recovered = Some(outcome?.recovered);
                    Ok(true)
                }
                None => Ok(false),
            }
        })
        .expect("client drive");
        recovered.expect("recovered")
    }

    fn serve_eight_clients(mode: AcceptMode) -> ServerStats {
        let config = ServerConfig {
            workers: 2,
            session_deadline: Some(Duration::from_secs(15)),
            accept_mode: mode,
            accept_seed: 7,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, |_| EchoNumbers).expect("bind");
        let addr = server.local_addr();

        let clients: Vec<_> =
            (0..8).map(|i| std::thread::spawn(move || run_client(addr, i % 3))).collect();
        for (i, client) in clients.into_iter().enumerate() {
            let recovered = client.join().expect("client thread");
            assert_eq!(recovered, 1000 + (i as u64 % 3));
        }
        server.shutdown()
    }

    #[test]
    fn two_worker_server_serves_concurrent_clients() {
        let stats = serve_eight_clients(AcceptMode::Balanced);
        assert_eq!(stats.served(), 8, "{stats:?}");
        assert_eq!(stats.failed, 0, "{stats:?}");
        assert_eq!(stats.served_per_worker.len(), 2);
        assert_eq!(stats.accepted_per_worker.iter().sum::<u64>(), 8, "{stats:?}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sharded_accept_serves_the_same_traffic_without_an_acceptor() {
        let stats = serve_eight_clients(AcceptMode::Sharded);
        assert_eq!(stats.served(), 8, "{stats:?}");
        assert_eq!(stats.failed, 0, "{stats:?}");
        // The kernel spreads by 4-tuple hash; totals must add up regardless
        // of how even the split came out.
        assert_eq!(stats.accepted_per_worker.iter().sum::<u64>(), 8, "{stats:?}");
    }

    fn worker(load: u64, alive: bool) -> Arc<WorkerShared> {
        Arc::new(WorkerShared {
            intake: Mutex::new(Vec::new()),
            load: AtomicU64::new(load),
            alive: AtomicBool::new(alive),
        })
    }

    #[test]
    fn pick_two_choices_prefers_the_lighter_worker() {
        let shared: Vec<Arc<WorkerShared>> =
            (0..4).map(|i| worker(if i == 2 { 0 } else { 100 }, true)).collect();
        let mut rng = Xoshiro256::new(99);
        let mut hits = 0;
        for _ in 0..400 {
            if pick_two_choices(&shared, &mut rng) == Some(2) {
                hits += 1;
            }
        }
        // Worker 2 is in a sample pair with probability 1 - C(3,2)/C(4,2) = 1/2
        // and wins every pair it appears in.
        assert!((150..=250).contains(&hits), "two-choice skew off: {hits}/400");
    }

    #[test]
    fn pick_two_choices_never_routes_to_a_dead_worker() {
        let shared = vec![worker(50, true), worker(0, false), worker(60, true), worker(0, false)];
        let mut rng = Xoshiro256::new(5);
        for _ in 0..200 {
            let picked = pick_two_choices(&shared, &mut rng).expect("live workers exist");
            assert!(picked == 0 || picked == 2, "routed to dead worker {picked}");
        }
        // One survivor: always picked. None: refused.
        let one = vec![worker(9, false), worker(1, true)];
        assert_eq!(pick_two_choices(&one, &mut rng), Some(1));
        let none = vec![worker(0, false), worker(0, false)];
        assert_eq!(pick_two_choices(&none, &mut rng), None);
    }
}
